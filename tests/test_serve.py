"""Tests for the resilient serving layer (repro.serve)."""

from __future__ import annotations

import pytest

import repro.systems  # noqa: F401  (imported to populate the registry)
from repro.core.registry import create
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    NoopInjector,
    ResilientService,
    ServeResult,
    serve_workload,
)
from repro.serve.faults import CorruptedInterpretation


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# FaultPlan / FaultInjector
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse("execute:error:0.5,match:latency:0.2:0.05")
        assert len(plan.specs) == 2
        assert plan.specs[0].stage == "execute"
        assert plan.specs[1].param == 0.05
        assert FaultPlan.parse(plan.spec_text()) == plan

    def test_parse_seed_entry_and_wildcard(self):
        plan = FaultPlan.parse("*:corrupt:0.3,seed=99")
        assert plan.seed == 99
        assert plan.specs[0].matches("rank")
        assert plan.specs[0].matches("anything")

    @pytest.mark.parametrize(
        "text",
        [
            "bogus:error:0.5",  # unknown stage
            "execute:frobnicate:0.5",  # unknown kind
            "execute:error:1.5",  # rate out of range
            "execute:error",  # too few fields
        ],
    )
    def test_parse_rejects_bad_specs(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_empty_plan(self):
        assert FaultPlan.parse("").specs == ()


class TestFaultInjector:
    def test_error_injection_is_deterministic(self):
        def run():
            injector = FaultInjector(FaultPlan.parse("execute:error:0.5", seed=7))
            hits = []
            for i in range(20):
                try:
                    injector.on_stage("execute")
                    hits.append(False)
                except FaultInjected:
                    hits.append(True)
            return hits

        first, second = run(), run()
        assert first == second
        assert any(first) and not all(first)

    def test_latency_injection_sleeps_and_records(self):
        slept = []
        injector = FaultInjector(
            FaultPlan.parse("match:latency:1.0:0.25", seed=1), sleep=slept.append
        )
        injector.on_stage("match")
        assert slept == [0.25]
        assert injector.events[0].kind == "latency"

    def test_non_matching_stage_is_untouched(self):
        injector = FaultInjector(FaultPlan.parse("execute:error:1.0", seed=1))
        injector.on_stage("tokenize")  # must not raise
        assert injector.events == []

    def test_corrupt_poisons_top_interpretation(self):
        injector = FaultInjector(FaultPlan.parse("*:corrupt:1.0", seed=1))
        out = injector.maybe_corrupt(["real-a", "real-b"])
        assert isinstance(out[0], CorruptedInterpretation)
        assert out[1] == "real-b"
        with pytest.raises(FaultInjected):
            out[0].to_sql(None, None)

    def test_noop_injector_never_changes_anything(self):
        noop = NoopInjector()
        noop.on_stage("execute")
        assert noop.maybe_corrupt(["x"]) == ["x"]
        assert noop.drain_events() == []


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_s=10.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()

    def test_half_open_probe_and_recovery(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 11.0
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, recovery_s=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed: re-trip immediately
        assert breaker.state == OPEN and not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_s=5.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED


# ---------------------------------------------------------------------------
# ResilientService
# ---------------------------------------------------------------------------

QUESTION = "salary of Ada"


def make_service(emp_ctx, **kwargs):
    kwargs.setdefault("backoff_s", 0.0)
    kwargs.setdefault("sleep", lambda s: None)
    return ResilientService(emp_ctx, **kwargs)


class TestResilientService:
    def test_clean_serve_matches_direct_call(self, emp_ctx):
        """Injection-disabled serving is byte-identical to the system."""
        service = make_service(emp_ctx)
        direct = create("athena").answer(QUESTION, emp_ctx)
        result = service.ask(QUESTION)
        assert result.ok and not result.degraded and result.retries == 0
        assert result.system == "athena"
        assert result.fault_trace == []
        assert direct is not None and result.answer is not None
        assert result.answer.columns == direct.columns
        assert result.answer.rows == direct.rows

    def test_never_raises_under_full_injection(self, emp_ctx):
        injector = FaultInjector(FaultPlan.parse("*:error:1.0", seed=3))
        service = make_service(emp_ctx, retries=1, injector=injector)
        result = service.ask(QUESTION)
        assert isinstance(result, ServeResult)
        assert not result.ok and result.answer is None
        # every chain system was tried and recorded with its reason
        assert [name for name, _ in result.degraded_from] == [
            "athena",
            "sqak",
            "soda",
        ]
        assert all("injected" in reason for _, reason in result.degraded_from)

    def test_degraded_answer_records_failed_primary(self, emp_ctx):
        """A failing primary is served by a fallback, with the fall
        recorded in degraded_from."""

        class FailFirstN:
            """Inject an error on the first N execute boundaries only."""

            def __init__(self, n):
                self.remaining = n
                self.events = []

            def on_stage(self, stage):
                if stage == "execute" and self.remaining > 0:
                    self.remaining -= 1
                    raise FaultInjected(stage)

            def maybe_corrupt(self, interps):
                return list(interps)

            def drain_events(self):
                return []

        injector = FailFirstN(3)  # athena: initial try + 2 retries
        service = make_service(emp_ctx, retries=2, injector=injector)
        result = service.ask(QUESTION)
        assert result.ok and result.degraded
        assert result.system in ("sqak", "soda")
        assert result.degraded_from[0][0] == "athena"
        assert result.retries == 2

    def test_retries_then_succeeds(self, emp_ctx):
        class FailOnce:
            def __init__(self):
                self.fired = False
                self.events = []

            def on_stage(self, stage):
                if stage == "execute" and not self.fired:
                    self.fired = True
                    raise FaultInjected(stage)

            def maybe_corrupt(self, interps):
                return list(interps)

            def drain_events(self):
                return []

        service = make_service(emp_ctx, retries=2, injector=FailOnce())
        result = service.ask(QUESTION)
        assert result.ok and result.system == "athena"
        assert result.retries == 1
        assert not result.degraded

    def test_backoff_is_exponential(self, emp_ctx):
        sleeps = []
        injector = FaultInjector(FaultPlan.parse("*:error:1.0", seed=1))
        service = ResilientService(
            emp_ctx,
            fallback_chain=("athena",),
            retries=3,
            backoff_s=0.1,
            backoff_factor=2.0,
            injector=injector,
            sleep=sleeps.append,
        )
        result = service.ask(QUESTION)
        assert not result.ok
        assert sleeps == [0.1, 0.2, 0.4]

    def test_timeout_trips_at_stage_boundary(self, emp_ctx):
        clock = FakeClock()
        injector = FaultInjector(
            FaultPlan.parse("*:latency:1.0:5.0", seed=1), sleep=clock.sleep
        )
        service = ResilientService(
            emp_ctx,
            retries=0,
            backoff_s=0.0,
            timeout_s=1.0,
            injector=injector,
            sleep=clock.sleep,
            clock=clock,
        )
        result = service.ask(QUESTION)
        assert not result.ok
        assert all("deadline" in reason for _, reason in result.degraded_from)

    def test_breaker_opens_and_skips_system(self, emp_ctx):
        clock = FakeClock()
        injector = FaultInjector(FaultPlan.parse("*:error:1.0", seed=2))
        service = ResilientService(
            emp_ctx,
            retries=0,
            backoff_s=0.0,
            failure_threshold=2,
            recovery_s=100.0,
            injector=injector,
            sleep=lambda s: None,
            clock=clock,
        )
        service.ask(QUESTION)
        service.ask(QUESTION)
        assert service.breaker("athena").state == OPEN
        third = service.ask(QUESTION)
        assert ("athena", "circuit breaker open") in third.degraded_from
        # after the recovery window the probe goes through again
        clock.now = 200.0
        assert service.breaker("athena").allow()

    def test_unknown_question_degrades_not_raises(self, emp_ctx):
        service = make_service(emp_ctx)
        result = service.ask("flibbertigibbet quux zorp")
        assert isinstance(result, ServeResult)
        assert not result.ok
        assert len(result.degraded_from) == 3

    def test_corruption_is_survived(self, emp_ctx):
        # Corrupt every interpretation list: the poisoned top candidate
        # fails compilation, and retries re-poison, so the chain exhausts
        # — but it must never raise.
        injector = FaultInjector(FaultPlan.parse("*:corrupt:1.0", seed=4))
        service = make_service(emp_ctx, retries=1, injector=injector)
        result = service.ask(QUESTION)
        assert isinstance(result, ServeResult)
        assert not result.ok
        assert any(e.kind == "corrupt" for e in result.fault_trace)

    def test_requested_system_heads_the_chain(self, emp_ctx):
        service = make_service(emp_ctx)
        result = service.ask(QUESTION, system="soda")
        assert result.requested_system == "soda"
        assert result.ok and result.system == "soda"

    def test_sql_recorded_on_success(self, emp_ctx):
        service = make_service(emp_ctx)
        result = service.ask(QUESTION)
        assert result.sql and "SELECT" in result.sql.upper()

    def test_as_dict_is_json_ready(self, emp_ctx):
        import json

        injector = FaultInjector(FaultPlan.parse("*:error:0.5", seed=5))
        service = make_service(emp_ctx, retries=1, injector=injector)
        payload = service.ask(QUESTION).as_dict()
        json.dumps(payload)  # must not raise
        assert payload["question"] == QUESTION
        assert "degraded_from" in payload and "fault_trace" in payload

    def test_empty_fallback_chain_rejected(self, emp_ctx):
        with pytest.raises(ValueError):
            ResilientService(emp_ctx, fallback_chain=())


class TestServeWorkload:
    def test_summary_aggregates(self, emp_ctx):
        service = make_service(emp_ctx)
        questions = [QUESTION, "flibbertigibbet quux zorp"]
        results, summary = serve_workload(service, questions)
        assert summary.total == 2
        assert summary.ok == 1 and summary.failed == 1
        assert summary.availability == 0.5
        assert len(results) == 2

    def test_full_injection_never_raises_and_counts_faults(self, emp_ctx):
        injector = FaultInjector(FaultPlan.parse("*:error:1.0", seed=6))
        service = make_service(
            emp_ctx, retries=1, injector=injector, failure_threshold=1000
        )
        results, summary = serve_workload(service, [QUESTION] * 5)
        assert summary.availability == 0.0
        assert summary.faults > 0
        assert all(isinstance(r, ServeResult) for r in results)

    def test_deterministic_under_seed(self, emp_ctx):
        def run():
            injector = FaultInjector(FaultPlan.parse("*:error:0.3", seed=11))
            service = make_service(
                emp_ctx, retries=1, injector=injector, failure_threshold=1000
            )
            _, summary = serve_workload(service, [QUESTION] * 8)
            return summary.as_dict()

        first, second = run(), run()
        first.pop("elapsed_s"), second.pop("elapsed_s")
        assert first == second
