"""Unit tests for NL pattern detection and embeddings."""

import numpy as np
import pytest

from repro.nlp import (
    CooccurrenceEmbeddings,
    HashedEmbeddings,
    aggregation_of,
    cosine,
    detect_text,
    has_group_by,
)


def kinds(text):
    return {(m.kind, m.value) for m in detect_text(text)}


class TestAggregationCues:
    def test_total_is_sum(self):
        assert ("aggregation", "sum") in kinds("total revenue")

    def test_average(self):
        assert ("aggregation", "avg") in kinds("average salary of employees")

    def test_highest_max(self):
        assert ("aggregation", "max") in kinds("the highest price")

    def test_how_many_count(self):
        assert ("count", "count") in kinds("how many orders were placed")

    def test_number_of_count(self):
        assert ("count", "count") in kinds("the number of customers")

    def test_count_beats_aggregation(self):
        matches = detect_text("how many orders")
        assert aggregation_of(matches) == "count"

    def test_plain_question_no_agg(self):
        assert aggregation_of(detect_text("show the customers in Berlin")) is None


class TestGroupByCues:
    def test_by(self):
        assert has_group_by(detect_text("revenue by region"))

    def test_per(self):
        assert has_group_by(detect_text("orders per customer"))

    def test_for_each(self):
        assert has_group_by(detect_text("count of employees for each department"))

    def test_by_number_not_groupby(self):
        assert not has_group_by(detect_text("increased by 5"))


class TestComparisons:
    @pytest.mark.parametrize(
        "text,op",
        [
            ("more than 10", ">"),
            ("greater than 5", ">"),
            ("over 100", ">"),
            ("at least 3", ">="),
            ("less than 7", "<"),
            ("under 50", "<"),
            ("at most 2", "<="),
            ("other than Berlin", "!="),
        ],
    )
    def test_operator_detection(self, text, op):
        assert ("comparison", op) in kinds(text)

    def test_between(self):
        assert ("comparison", "between") in kinds("between 10 and 20")

    def test_negation(self):
        assert ("negation", "not") in kinds("customers not from Berlin")


class TestLimits:
    def test_top_n(self):
        matches = [m for m in detect_text("top 5 products") if m.kind == "limit"]
        assert matches[0].value == "5:desc"

    def test_top_word_number(self):
        matches = [m for m in detect_text("top five products") if m.kind == "limit"]
        assert matches[0].value == "5:desc"

    def test_bare_top(self):
        matches = [m for m in detect_text("the top product") if m.kind == "limit"]
        assert matches[0].value == "1:desc"

    def test_bottom_asc(self):
        matches = [m for m in detect_text("bottom 3 sellers") if m.kind == "limit"]
        assert matches[0].value == "3:asc"


class TestOrderCues:
    def test_desc(self):
        assert ("order", "desc") in kinds("sorted by price descending")

    def test_asc(self):
        assert ("order", "asc") in kinds("in increasing order of age")


class TestHashedEmbeddings:
    def test_deterministic(self):
        a = HashedEmbeddings().vector("salary")
        b = HashedEmbeddings().vector("salary")
        assert np.allclose(a, b)

    def test_unit_norm(self):
        vec = HashedEmbeddings().vector("anything")
        assert np.linalg.norm(vec) == pytest.approx(1.0, abs=1e-6)

    def test_synonyms_close_strangers_far(self):
        emb = HashedEmbeddings()
        assert emb.similarity("salary", "pay") > 0.5
        assert emb.similarity("salary", "zebra") < 0.5

    def test_sentence_vector_empty(self):
        assert np.allclose(HashedEmbeddings(dim=16).sentence_vector([]), 0)


class TestCooccurrenceEmbeddings:
    CORPUS = [
        ["the", "cat", "chased", "the", "mouse"],
        ["the", "dog", "chased", "the", "cat"],
        ["a", "mouse", "ran", "from", "the", "cat"],
        ["the", "dog", "ran", "home"],
    ]

    def test_fit_and_query(self):
        emb = CooccurrenceEmbeddings(dim=8).fit(self.CORPUS)
        assert emb.vector("cat").shape == (8,)

    def test_shared_context_similarity(self):
        emb = CooccurrenceEmbeddings(dim=8).fit(self.CORPUS)
        assert emb.similarity("cat", "dog") > emb.similarity("cat", "home")

    def test_oov_is_zero_vector(self):
        emb = CooccurrenceEmbeddings(dim=8).fit(self.CORPUS)
        assert np.allclose(emb.vector("unknown"), 0)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            CooccurrenceEmbeddings().vector("cat")

    def test_empty_corpus(self):
        emb = CooccurrenceEmbeddings(dim=4).fit([])
        assert np.allclose(emb.sentence_vector(["x"]), 0)


class TestCosine:
    def test_zero_vector_safe(self):
        assert cosine(np.zeros(3), np.ones(3)) == 0.0

    def test_identical(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine(v, v) == pytest.approx(1.0)
