"""Additional coverage for the OQL intermediate language and compiler."""

import pytest

from repro.core import (
    CompilationError,
    NLIDBContext,
    OQLCondition,
    OQLHasCondition,
    OQLItem,
    OQLOrder,
    OQLQuery,
    PropertyRef,
    compile_oql,
)
from repro.bench.domains import build_domain


@pytest.fixture(scope="module")
def retail_ctx():
    return NLIDBContext(build_domain("retail"))


class TestDescribe:
    def test_item_descriptions(self):
        assert OQLItem(count_all=True).describe() == "count(*)"
        assert OQLItem(count_all=True, concept="order").describe() == "count(order)"
        assert (
            OQLItem(ref=PropertyRef("a", "b"), aggregate="sum", distinct=True).describe()
            == "sum(distinct a.b)"
        )

    def test_condition_descriptions(self):
        cond = OQLCondition(PropertyRef("a", "b"), "between", 1, 2)
        assert "between 1 and 2" in cond.describe()
        sub = OQLQuery(select=(OQLItem(ref=PropertyRef("a", "b"), aggregate="avg"),))
        nested = OQLCondition(PropertyRef("a", "b"), ">", subquery=sub)
        assert "<subquery>" in nested.describe()

    def test_has_condition_description(self):
        has = OQLHasCondition("order", negated=True)
        assert has.describe() == "has no order"
        with_conds = OQLHasCondition(
            "order", conditions=(OQLCondition(PropertyRef("order", "total"), ">", 5),)
        )
        assert "has order with" in with_conds.describe()

    def test_query_description_sections(self):
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("a", "b")),),
            conditions=(OQLCondition(PropertyRef("a", "c"), "=", "x"),),
            group_by=(PropertyRef("a", "b"),),
            order_by=(OQLOrder(OQLItem(ref=PropertyRef("a", "b")), "desc"),),
            limit=2,
        )
        text = query.describe()
        for fragment in ("select", "where", "group by", "order by", "limit 2"):
            assert fragment in text


class TestCompilerErrors:
    def test_unmapped_property(self, retail_ctx):
        query = OQLQuery(select=(OQLItem(ref=PropertyRef("customer", "ghost")),))
        with pytest.raises(Exception):
            compile_oql(query, retail_ctx.ontology, retail_ctx.mapping)

    def test_missing_projection_ref(self, retail_ctx):
        query = OQLQuery(
            select=(OQLItem(),),
            conditions=(OQLCondition(PropertyRef("customer", "city"), "=", "Berlin"),),
        )
        with pytest.raises(CompilationError):
            compile_oql(query, retail_ctx.ontology, retail_ctx.mapping)

    def test_exists_requires_subquery(self, retail_ctx):
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name")),),
            conditions=(OQLCondition(None, "exists"),),
        )
        with pytest.raises(CompilationError):
            compile_oql(query, retail_ctx.ontology, retail_ctx.mapping)

    def test_has_condition_on_unrelated_concepts(self, retail_ctx):
        # geo concepts are not in the retail ontology
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name")),),
            conditions=(OQLHasCondition("river"),),
        )
        with pytest.raises(Exception):
            compile_oql(query, retail_ctx.ontology, retail_ctx.mapping)


class TestCompilerFeatures:
    def test_in_list_lowering(self, retail_ctx):
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name")),),
            conditions=(
                OQLCondition(PropertyRef("customer", "city"), "in", ["Berlin", "Paris"]),
            ),
        )
        stmt = compile_oql(query, retail_ctx.ontology, retail_ctx.mapping)
        assert "IN ('Berlin', 'Paris')" in stmt.to_sql()
        retail_ctx.executor.execute(stmt)

    def test_not_in_list(self, retail_ctx):
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name")),),
            conditions=(
                OQLCondition(
                    PropertyRef("customer", "city"), "not_in", ["Berlin"]
                ),
            ),
        )
        stmt = compile_oql(query, retail_ctx.ontology, retail_ctx.mapping)
        assert "NOT IN" in stmt.to_sql()

    def test_like_lowering(self, retail_ctx):
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name")),),
            conditions=(OQLCondition(PropertyRef("customer", "name"), "like", "A%"),),
        )
        stmt = compile_oql(query, retail_ctx.ontology, retail_ctx.mapping)
        assert "LIKE 'A%'" in stmt.to_sql()

    def test_negated_equality_becomes_neq(self, retail_ctx):
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name")),),
            conditions=(
                OQLCondition(PropertyRef("customer", "city"), "=", "Berlin", negated=True),
            ),
        )
        stmt = compile_oql(query, retail_ctx.ontology, retail_ctx.mapping)
        assert "!=" in stmt.to_sql()

    def test_exists_subquery_lowering(self, retail_ctx):
        inner = OQLQuery(
            select=(OQLItem(ref=PropertyRef("order", "id")),),
            conditions=(OQLCondition(PropertyRef("order", "total"), ">", 100.0),),
        )
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("order", "id")),),
            conditions=(OQLCondition(None, "exists", subquery=inner),),
        )
        stmt = compile_oql(query, retail_ctx.ontology, retail_ctx.mapping)
        assert "EXISTS (SELECT" in stmt.to_sql()
        retail_ctx.executor.execute(stmt)

    def test_order_by_aggregate_alias(self, retail_ctx):
        query = OQLQuery(
            select=(
                OQLItem(ref=PropertyRef("customer", "city")),
                OQLItem(ref=PropertyRef("customer", "id"), aggregate="count", alias="n"),
            ),
            group_by=(PropertyRef("customer", "city"),),
            order_by=(
                OQLOrder(OQLItem(ref=PropertyRef("customer", "id"), aggregate="count"), "desc"),
            ),
        )
        stmt = compile_oql(query, retail_ctx.ontology, retail_ctx.mapping)
        result = retail_ctx.executor.execute(stmt)
        counts = [row[1] for row in result.rows]
        assert counts == sorted(counts, reverse=True)
