"""Tests for the dialogue layer: state, follow-ups, intents, managers,
clarification, bootstrap and the assembled conversational system."""

import pytest

from repro.bench.domains import build_domain
from repro.core import NLIDBContext, ScriptedUser, SimulatedOracle
from repro.core.intermediate import (
    OQLCondition,
    OQLItem,
    OQLQuery,
    PropertyRef,
    compile_oql,
)
from repro.dialogue import (
    AgentManager,
    ClarifyingSystem,
    ConversationalNLIDB,
    DialogueAction,
    DialogueState,
    FiniteStateManager,
    FollowupResolver,
    FrameManager,
    FrameSlot,
    Intent,
    IntentClassifier,
    Turn,
    bootstrap_artifacts,
)
from repro.systems import AthenaSystem


@pytest.fixture(scope="module")
def retail_ctx():
    return NLIDBContext(build_domain("retail"))


@pytest.fixture
def base_query():
    return OQLQuery(
        select=(OQLItem(ref=PropertyRef("customer", "name")),),
        conditions=(OQLCondition(PropertyRef("customer", "city"), "=", "Berlin"),),
    )


class TestDialogueState:
    def test_record_updates_focus(self, base_query):
        state = DialogueState()
        state.record(Turn("q", query=base_query))
        assert state.focus_concept == "customer"
        assert state.last_query() is base_query

    def test_reset(self, base_query):
        state = DialogueState()
        state.record(Turn("q", query=base_query))
        state.reset()
        assert state.turn_count == 0 and state.last_query() is None

    def test_remember_entity_replaces(self):
        state = DialogueState()
        ref = PropertyRef("customer", "city")
        state.remember_entity(ref, "Berlin")
        state.remember_entity(ref, "Paris")
        assert state.focus_entities == [(ref, "Paris")]


class TestFollowupResolver:
    @pytest.fixture
    def resolver(self):
        return FollowupResolver()

    def test_fresh_question_detected(self, resolver, retail_ctx, base_query):
        edited, move = resolver.resolve(
            "show all products", base_query, retail_ctx
        )
        assert edited is None and move == "new_query"

    def test_change_value(self, resolver, retail_ctx, base_query):
        edited, move = resolver.resolve("what about Paris", base_query, retail_ctx)
        assert move == "change_value"
        conds = [c for c in edited.conditions if isinstance(c, OQLCondition)]
        assert conds[0].value == "Paris"

    def test_add_numeric_filter(self, resolver, retail_ctx):
        previous = OQLQuery(
            select=(OQLItem(ref=PropertyRef("product", "name")),),
        )
        edited, move = resolver.resolve(
            "only those with price over 50", previous, retail_ctx
        )
        assert move == "add_filter"
        conds = [c for c in edited.conditions if isinstance(c, OQLCondition)]
        assert conds and conds[0].op == ">" and conds[0].value == 50.0

    def test_group_swap_adds_count(self, resolver, retail_ctx, base_query):
        edited, move = resolver.resolve(
            "break that down by segment", base_query, retail_ctx
        )
        assert move == "group_swap"
        assert edited.group_by and edited.group_by[0].prop == "segment"
        assert any(i.count_all for i in edited.select)

    def test_agg_change(self, resolver, retail_ctx):
        previous = OQLQuery(
            select=(OQLItem(ref=PropertyRef("order", "total"), aggregate="sum"),),
        )
        edited, move = resolver.resolve("make that the average", previous, retail_ctx)
        assert move == "agg_change"
        assert edited.select[0].aggregate == "avg"

    def test_top_k(self, resolver, retail_ctx):
        previous = OQLQuery(
            select=(
                OQLItem(ref=PropertyRef("customer", "name")),
                OQLItem(ref=PropertyRef("order", "total"), aggregate="sum"),
            ),
            group_by=(PropertyRef("customer", "name"),),
        )
        edited, move = resolver.resolve("just the top 3", previous, retail_ctx)
        assert move == "top_k" and edited.limit == 3 and edited.order_by

    def test_context_disambiguates_property(self, resolver, retail_ctx):
        previous = OQLQuery(
            select=(OQLItem(count_all=True, concept="product"),),
        )
        edited, move = resolver.resolve("group it by name", previous, retail_ctx)
        assert move == "group_swap"
        assert edited.group_by[0].concept == "product"

    def test_compiled_edits_execute(self, resolver, retail_ctx, base_query):
        edited, _ = resolver.resolve("what about Paris", base_query, retail_ctx)
        stmt = compile_oql(edited, retail_ctx.ontology, retail_ctx.mapping)
        retail_ctx.executor.execute(stmt)  # must not raise

    def test_no_previous_means_new_query(self, resolver, retail_ctx):
        edited, move = resolver.resolve("what about Paris", None, retail_ctx)
        assert edited is None and move == "new_query"


class TestIntentClassifier:
    def make_intents(self):
        greet = Intent("greet", ["hello there", "hi bot", "good morning"])
        count = Intent("count", ["how many rows", "count the items", "number of things"])
        return [greet, count]

    def test_classifies_training_examples(self):
        clf = IntentClassifier(seed=0).fit(self.make_intents())
        assert clf.classify("hello there")[0] == "greet"
        assert clf.classify("count the items")[0] == "count"

    def test_threshold_rejects_garbage(self):
        clf = IntentClassifier(seed=0, threshold=0.9).fit(self.make_intents())
        name, _ = clf.classify("quantum flux capacitor telemetry")
        assert name is None

    def test_accuracy_helper(self):
        clf = IntentClassifier(seed=0).fit(self.make_intents())
        labeled = [("hi bot", "greet"), ("how many rows", "count")]
        assert clf.accuracy(labeled) == 1.0

    def test_fit_requires_examples(self):
        with pytest.raises(ValueError):
            IntentClassifier().fit([Intent("empty")])


class TestManagers:
    def test_fsm_follows_keywords(self):
        fsm = FiniteStateManager(start="start")
        fsm.add_transition("start", "picked", ["sales"], DialogueAction("answer"))
        state = DialogueState()
        assert fsm.decide(state, "show me sales please").kind == "answer"
        assert fsm.state_name == "picked"

    def test_fsm_rejects_offscript(self):
        fsm = FiniteStateManager(start="start")
        fsm.add_transition("start", "picked", ["sales"], DialogueAction("answer"))
        assert fsm.decide(DialogueState(), "tell me a joke").kind == "reject"

    def test_frame_over_answering(self):
        def extract_city(text):
            return "Berlin" if "berlin" in text.lower() else None

        def extract_year(text):
            for word in text.split():
                if word.isdigit():
                    return word
            return None

        frame = FrameManager(
            [
                FrameSlot("city", "Which city?", extract_city),
                FrameSlot("year", "Which year?", extract_year),
            ]
        )
        # one utterance fills BOTH slots (over-answering)
        action = frame.decide(DialogueState(), "Berlin in 2022")
        assert action.kind == "answer"
        assert frame.values() == {"city": "Berlin", "year": "2022"}

    def test_frame_asks_for_missing_slot(self):
        frame = FrameManager(
            [FrameSlot("city", "Which city?", lambda t: None)]
        )
        action = frame.decide(DialogueState(), "anything")
        assert action.kind == "ask_slot" and action.payload == "city"

    def test_agent_learns_policy(self):
        manager = AgentManager(seed=0)
        corpus = []
        state = DialogueState()
        for _ in range(30):
            corpus.append((AgentManager.featurize(state, "start over please"), "reset"))
            corpus.append((AgentManager.featurize(state, "show me the revenue by region"), "answer"))
        manager.fit(corpus)
        assert manager.decide(state, "start over please").kind == "reset"
        assert manager.decide(state, "show me the revenue by region").kind == "answer"


class TestClarifyingSystem:
    def test_requires_entity_pipeline(self):
        class NotEntity:
            name = "x"

            def interpret(self, q, c):
                return []

        with pytest.raises(TypeError):
            ClarifyingSystem(NotEntity())

    def test_oracle_fixes_ambiguity(self):
        # 'budget' is on departments and projects; the user means projects
        context = NLIDBContext(build_domain("hr"))
        def judge(payload):
            return 1.0 if "project" in (getattr(payload, "target", "") or "") else 0.0
        system = ClarifyingSystem(
            AthenaSystem(), user=SimulatedOracle(judge), max_rounds=2
        )
        interps = system.interpret("what is the average budget", context)
        sql = max(interps, key=lambda i: i.confidence).to_sql(
            context.ontology, context.mapping
        ).to_sql()
        assert "projects.budget" in sql
        assert system.questions_asked >= 1

    def test_round_budget_respected(self, retail_ctx):
        system = ClarifyingSystem(
            AthenaSystem(), user=ScriptedUser([0] * 10), max_rounds=1
        )
        system.interpret("how many have city Berlin", retail_ctx)
        assert system.questions_asked <= 1


class TestBootstrap:
    def test_generates_expected_intent_families(self, retail_ctx):
        artifacts = bootstrap_artifacts(retail_ctx)
        names = {i.name for i in artifacts.intents}
        assert "lookup_customer" in names
        assert "count_order" in names
        assert any(n.startswith("aggregate_") for n in names)
        assert any(n.startswith("relate_") for n in names)

    def test_entities_hold_data_values(self, retail_ctx):
        artifacts = bootstrap_artifacts(retail_ctx)
        assert "customer" in artifacts.entities
        assert artifacts.entities["customer"]

    def test_synonym_ablation_reduces_examples(self, retail_ctx):
        full = bootstrap_artifacts(retail_ctx, use_synonyms=True)
        bare = bootstrap_artifacts(retail_ctx, use_synonyms=False)
        assert full.training_examples > bare.training_examples


class TestConversationalNLIDB:
    @pytest.fixture(scope="class")
    def bot(self):
        context = NLIDBContext(build_domain("retail"))
        return ConversationalNLIDB(context)

    def test_fresh_question(self, bot):
        bot.reset()
        turn = bot.ask("show the customers with city Berlin")
        assert turn.sql and "Berlin" in turn.sql
        assert turn.result_rows >= 0

    def test_followup_edits_previous(self, bot):
        bot.reset()
        bot.ask("show the customers with city Berlin")
        turn = bot.ask("what about Paris")
        assert "Paris" in turn.sql and "Berlin" not in turn.sql
        assert turn.intent == "change_value"

    def test_topk_followup(self, bot):
        bot.reset()
        bot.ask("total total of orders by customer name")
        turn = bot.ask("just the top 3")
        assert "LIMIT 3" in turn.sql and turn.result_rows == 3

    def test_unparseable_input_apologizes(self, bot):
        bot.reset()
        turn = bot.ask("flibber jabber wocky")
        assert "rephrase" in turn.response

    def test_state_accumulates_turns(self, bot):
        bot.reset()
        bot.ask("how many orders are there")
        bot.ask("break that down by region")
        assert bot.state.turn_count == 2

    def test_clarifying_conversation(self):
        context = NLIDBContext(build_domain("hr"))
        def judge(payload):
            return 1.0 if "project" in (getattr(payload, "target", "") or "") else 0.0
        bot = ConversationalNLIDB(
            context, use_intents=False, clarify_user=SimulatedOracle(judge)
        )
        turn = bot.ask("what is the average budget")
        assert "projects.budget" in turn.sql
