"""Differential NULL-semantics tests: repro.sqldb vs the sqlite3 oracle.

SQL three-valued logic is exactly the kind of semantics that silently
rots: every operator must propagate *unknown*, and WHERE/HAVING must
keep only definitely-true rows.  Rather than hand-assert each case, the
corpus here executes the same statements on our engine and on stdlib
sqlite3 and demands identical row multisets — including the three
historical regressions (NOT over NULL comparisons, NOT IN with a NULL
in the list, != resurrecting NULL rows).
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.sqldb import Column, Database, DataType, TableSchema
from repro.sqldb.executor import Executor

ROWS = [
    (1, 1, 10, "x"),
    (2, 2, None, "y"),
    (3, 3, 5, None),
    (4, None, 7, "z"),
    (5, 2, 10, "x"),
]


@pytest.fixture
def engines():
    """The same t(id, a, b, s) table in repro.sqldb and in sqlite3."""
    db = Database("nulls")
    db.create_table(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                Column("a", DataType.INTEGER),
                Column("b", DataType.INTEGER),
                Column("s", DataType.TEXT),
            ],
        )
    )
    db.insert_many("t", [list(row) for row in ROWS])
    oracle = sqlite3.connect(":memory:")
    oracle.execute("CREATE TABLE t (id INTEGER, a INTEGER, b INTEGER, s TEXT)")
    oracle.executemany("INSERT INTO t VALUES (?, ?, ?, ?)", ROWS)
    yield Executor(db), oracle
    oracle.close()


def _norm(value):
    """Comparison key that ignores int/float representation drift."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, float(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    return (2, str(value))


def _run_both(engines, sql, ordered=False):
    executor, oracle = engines
    ours = [tuple(row) for row in executor.execute_sql(sql).rows]
    theirs = [tuple(row) for row in oracle.execute(sql).fetchall()]
    key = lambda row: tuple(_norm(v) for v in row)
    if ordered:
        return [key(r) for r in ours], [key(r) for r in theirs]
    return sorted(key(r) for r in ours), sorted(key(r) for r in theirs)


#: every statement runs on both engines and must agree exactly
CORPUS = [
    # -- the three headline regressions --------------------------------------
    "SELECT id FROM t WHERE NOT (b = 10)",
    "SELECT id FROM t WHERE b != 10",
    "SELECT id FROM t WHERE b NOT IN (10, NULL)",
    # -- NOT / != / <> over unknown ------------------------------------------
    "SELECT id FROM t WHERE NOT (b != 10)",
    "SELECT id FROM t WHERE NOT (a = b)",
    "SELECT id FROM t WHERE a <> b",
    "SELECT id FROM t WHERE NOT (s = 'x')",
    # -- IN / NOT IN with literal NULLs --------------------------------------
    "SELECT id FROM t WHERE b IN (10, NULL)",
    "SELECT id FROM t WHERE b IN (10, 5)",
    "SELECT id FROM t WHERE b NOT IN (10, 5)",
    "SELECT id FROM t WHERE b NOT IN (10, 5, 7)",
    # -- IN / NOT IN over subqueries containing NULLs ------------------------
    "SELECT id FROM t WHERE a IN (SELECT b FROM t)",
    "SELECT id FROM t WHERE a NOT IN (SELECT b FROM t)",
    "SELECT id FROM t WHERE a NOT IN (SELECT b FROM t WHERE b IS NOT NULL)",
    # -- BETWEEN / NOT BETWEEN -----------------------------------------------
    "SELECT id FROM t WHERE b BETWEEN 5 AND 10",
    "SELECT id FROM t WHERE b NOT BETWEEN 5 AND 10",
    "SELECT id FROM t WHERE b NOT BETWEEN 6 AND 8",
    # -- Kleene AND / OR ------------------------------------------------------
    "SELECT id FROM t WHERE b > 5 OR s = 'x'",
    "SELECT id FROM t WHERE b > 5 AND s = 'x'",
    "SELECT id FROM t WHERE NOT (b > 5 AND s = 'y')",
    "SELECT id FROM t WHERE NOT (b > 5 OR s = 'y')",
    "SELECT id FROM t WHERE b = NULL",
    "SELECT id FROM t WHERE NOT (b IS NULL)",
    "SELECT id FROM t WHERE b IS NULL OR a IS NULL",
    # -- ordering comparisons over NULL --------------------------------------
    "SELECT id FROM t WHERE b > 5",
    "SELECT id FROM t WHERE NOT (b > 5)",
    "SELECT id FROM t WHERE b <= 10",
    # -- aggregates ignore NULLs ----------------------------------------------
    "SELECT COUNT(*), COUNT(b), COUNT(a) FROM t",
    "SELECT SUM(b), MIN(b), MAX(b) FROM t",
    "SELECT AVG(b) FROM t",
    "SELECT COUNT(s) FROM t WHERE b NOT IN (5, NULL)",
    # -- grouping + HAVING over 3VL -------------------------------------------
    "SELECT a, COUNT(*) FROM t GROUP BY a HAVING NOT (COUNT(*) = 1)",
    "SELECT a, SUM(b) FROM t GROUP BY a HAVING SUM(b) > 9",
]


@pytest.mark.parametrize("sql", CORPUS)
def test_differential_null_semantics(engines, sql):
    ours, theirs = _run_both(engines, sql)
    assert ours == theirs, f"divergence from sqlite3 on: {sql}"


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT id, b FROM t ORDER BY id LIMIT 2 OFFSET 1",
        "SELECT id FROM t ORDER BY id LIMIT 10 OFFSET 3",
        "SELECT id FROM t ORDER BY id LIMIT 2 OFFSET 0",
        "SELECT id FROM t ORDER BY id DESC LIMIT 3 OFFSET 2",
    ],
)
def test_differential_limit_offset(engines, sql):
    ours, theirs = _run_both(engines, sql, ordered=True)
    assert ours == theirs, f"divergence from sqlite3 on: {sql}"


class TestHeadlineRegressions:
    """The three repros from the issue, asserted directly (not just
    differentially) so a failure names the exact broken operator."""

    def test_not_propagates_null(self, engines):
        executor, _ = engines
        # b is NULL on row 2: NOT (NULL = 10) is unknown, row excluded.
        rows = executor.execute_sql("SELECT id FROM t WHERE NOT (b = 10)").rows
        assert [r[0] for r in rows] == [3, 4]

    def test_not_in_with_null_matches_nothing(self, engines):
        executor, _ = engines
        rows = executor.execute_sql(
            "SELECT id FROM t WHERE b NOT IN (1, NULL)"
        ).rows
        assert rows == []

    def test_inequality_does_not_resurrect_null(self, engines):
        executor, _ = engines
        rows = executor.execute_sql("SELECT id FROM t WHERE b != 10").rows
        assert [r[0] for r in rows] == [3, 4]
        rows = executor.execute_sql(
            "SELECT id FROM t WHERE b NOT BETWEEN 0 AND 6"
        ).rows
        assert [r[0] for r in rows] == [1, 4, 5]
