"""Unit tests for schema, table storage and the database catalog."""

import pytest

from repro.sqldb import (
    Column,
    Database,
    DataType,
    SchemaError,
    TableSchema,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
    parse_create_table,
)


def make_schema():
    return TableSchema(
        "t",
        [
            Column("id", DataType.INTEGER, primary_key=True, nullable=False),
            Column("name", DataType.TEXT),
            Column("score", DataType.FLOAT),
        ],
    )


class TestTableSchema:
    def test_column_lookup_case_insensitive(self):
        schema = make_schema()
        assert schema.column("NAME").name == "name"
        assert schema.column_index("Score") == 2

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            make_schema().column("missing")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.TEXT), Column("A", DataType.TEXT)])

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_primary_key_listing(self):
        assert [c.name for c in make_schema().primary_key] == ["id"]

    def test_numeric_and_text_columns(self):
        schema = make_schema()
        assert [c.name for c in schema.numeric_columns()] == ["id", "score"]
        assert [c.name for c in schema.text_columns()] == ["name"]

    def test_ddl_render(self):
        ddl = make_schema().to_ddl()
        assert "CREATE TABLE t" in ddl
        assert "id INTEGER PRIMARY KEY NOT NULL" in ddl


class TestTable:
    def test_insert_and_len(self):
        db = Database()
        table = db.create_table(make_schema())
        table.insert([1, "a", 2.5])
        assert len(table) == 1

    def test_insert_coerces(self):
        db = Database()
        table = db.create_table(make_schema())
        table.insert(["7", "a", 3])
        assert table.rows[0] == (7, "a", 3.0)

    def test_arity_mismatch(self):
        db = Database()
        table = db.create_table(make_schema())
        with pytest.raises(TypeMismatchError):
            table.insert([1, "a"])

    def test_not_null_enforced(self):
        db = Database()
        table = db.create_table(make_schema())
        with pytest.raises(TypeMismatchError):
            table.insert([None, "a", 1.0])

    def test_insert_dict_defaults_null(self):
        db = Database()
        table = db.create_table(make_schema())
        table.insert_dict({"id": 1, "name": "x"})
        assert table.rows[0] == (1, "x", None)

    def test_insert_dict_unknown_key(self):
        db = Database()
        table = db.create_table(make_schema())
        with pytest.raises(SchemaError):
            table.insert_dict({"id": 1, "bogus": 2})

    def test_distinct_values_order_and_null_skip(self):
        db = Database()
        table = db.create_table(make_schema())
        table.insert_many([[1, "b", None], [2, "a", None], [3, "b", None]])
        assert table.distinct_values("name") == ["b", "a"]


class TestDatabase:
    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table(make_schema())
        with pytest.raises(SchemaError):
            db.create_table(make_schema())

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            Database().table("nope")

    def test_fk_validation(self, emp_db):
        with pytest.raises(UnknownColumnError):
            emp_db.add_foreign_key("emp", "missing", "dept", "id")

    def test_join_path_direct(self, emp_db):
        path = emp_db.join_path("emp", "dept")
        assert len(path) == 1
        assert (path[0].src_table, path[0].dst_table) == ("emp", "dept")

    def test_join_path_oriented_from_start(self, shop_db):
        path = shop_db.join_path("customers", "products")
        assert [fk.src_table for fk in path] == ["customers", "orders", "order_items"]

    def test_join_path_same_table(self, emp_db):
        assert emp_db.join_path("emp", "emp") == []

    def test_join_path_disconnected(self):
        db = Database()
        db.create_table(TableSchema("a", [Column("x", DataType.INTEGER)]))
        db.create_table(TableSchema("b", [Column("y", DataType.INTEGER)]))
        assert db.join_path("a", "b") is None

    def test_find_column_across_tables(self, emp_db):
        hits = emp_db.find_column("id")
        assert {t for t, _ in hits} == {"emp", "dept"}

    def test_stats(self, shop_db):
        stats = shop_db.stats()
        assert stats["tables"] == 4
        assert stats["foreign_keys"] == 3
        assert stats["rows"] == 3 + 3 + 3 + 4


class TestDdlRoundTrip:
    def test_not_null_round_trips_end_to_end(self):
        # schema -> DDL text -> parsed schema -> database: the NOT NULL
        # constraint must survive every hop and still be enforced.
        original = make_schema()
        reparsed = parse_create_table(original.to_ddl())
        assert [
            (c.name, c.dtype, c.nullable, c.primary_key) for c in original
        ] == [(c.name, c.dtype, c.nullable, c.primary_key) for c in reparsed]
        db = Database("roundtrip")
        db.create_table_sql(original.to_ddl())
        db.insert("t", [1, "Ada", 1.5])
        with pytest.raises(TypeMismatchError):
            db.insert("t", [None, "Bob", 2.0])

    def test_create_table_sql_rejects_duplicates(self):
        db = Database("dup")
        db.create_table_sql("CREATE TABLE t (a INT)")
        with pytest.raises(SchemaError):
            db.create_table_sql("CREATE TABLE t (a INT)")

    def test_not_null_feeds_static_inference(self):
        # The planner proves IS NOT NULL tautological only because the
        # parsed DDL carried nullable=False through to the catalog.
        from repro.sqldb import parse_select

        db = Database("inference-ddl")
        db.create_table_sql("CREATE TABLE t (id INT PRIMARY KEY NOT NULL, v INT)")
        db.insert("t", [1, None])
        db.insert("t", [2, 5])
        plan = db.executor._plan_for(parse_select("SELECT id FROM t WHERE id IS NOT NULL"))
        assert plan.static_rewrites >= 1
        assert plan.effective_where is None
