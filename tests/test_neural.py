"""Tests for the neural substrate: sketches, nn, features, models, DBPal."""

import numpy as np
import pytest

from repro.bench.domains import build_domain
from repro.bench.wikisql import WikiSQLGenerator, execution_accuracy
from repro.core import NLIDBContext
from repro.sqldb import parse_select
from repro.systems.neural import (
    BinaryScorer,
    Condition,
    DBPalModel,
    Featurizer,
    MLPClassifier,
    NeuralSketchSystem,
    QuerySketch,
    Seq2SQLModel,
    SQLNetModel,
    TypeSQLModel,
    generate_training_set,
)


class TestQuerySketch:
    def make(self):
        return QuerySketch(
            "emp", "name", "count", (Condition("salary", ">", 100.0),)
        )

    def test_to_sql(self):
        sql = self.make().to_sql()
        assert sql == "SELECT COUNT(name) FROM emp WHERE salary > 100.0"

    def test_roundtrip_via_ast(self):
        sketch = self.make()
        recovered = QuerySketch.from_select(sketch.to_select())
        assert recovered.matches(sketch)

    def test_from_select_rejects_joins(self):
        stmt = parse_select("SELECT a FROM t JOIN u ON t.x = u.y")
        with pytest.raises(ValueError):
            QuerySketch.from_select(stmt)

    def test_from_select_rejects_nested(self):
        stmt = parse_select("SELECT a FROM t WHERE a > (SELECT AVG(a) FROM t)")
        with pytest.raises(ValueError):
            QuerySketch.from_select(stmt)

    def test_matches_order_insensitive(self):
        a = QuerySketch("t", "x", "", (Condition("a", "=", "p"), Condition("b", ">", 1.0)))
        b = QuerySketch("t", "x", "", (Condition("b", ">", 1.0), Condition("a", "=", "p")))
        assert a.matches(b)

    def test_matches_value_normalization(self):
        a = QuerySketch("t", "x", "", (Condition("a", "=", 5.0),))
        b = QuerySketch("t", "x", "", (Condition("a", "=", 5),))
        assert a.matches(b)

    def test_mismatch_on_aggregate(self):
        a = QuerySketch("t", "x", "sum")
        b = QuerySketch("t", "x", "avg")
        assert not a.matches(b)


class TestNN:
    def test_mlp_learns_separable_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        clf = MLPClassifier(4, 2, hidden=16, seed=0)
        clf.fit(x, y, epochs=60)
        accuracy = (clf.predict(x) == y).mean()
        assert accuracy > 0.95

    def test_mlp_learns_xor(self):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        clf = MLPClassifier(2, 2, hidden=16, seed=1, lr=2e-2)
        clf.fit(np.tile(x, (50, 1)), np.tile(y, 50), epochs=120)
        assert (clf.predict(x) == y).all()

    def test_binary_scorer_probability_range(self):
        scorer = BinaryScorer(3, seed=0)
        scores = scorer.score(np.zeros((5, 3)))
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_loss_decreases(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(100, 6))
        y = (x[:, 0] > 0).astype(int)
        clf = MLPClassifier(6, 2, seed=0)
        history = clf.fit(x, y, epochs=25)
        assert history[-1] < history[0]

    def test_deterministic_training(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(50, 4))
        y = (x[:, 1] > 0).astype(int)
        a = MLPClassifier(4, 2, seed=7)
        b = MLPClassifier(4, 2, seed=7)
        a.fit(x, y, epochs=5, seed=1)
        b.fit(x, y, epochs=5, seed=1)
        assert np.allclose(a.w1, b.w1)


class TestFeaturizer:
    @pytest.fixture(scope="class")
    def setup(self):
        database = build_domain("hr")
        return Featurizer(dim=16), database.table("employees")

    def test_question_features_shape(self, setup):
        featurizer, _ = setup
        tokens = featurizer.question_tokens("average salary of employees")
        assert featurizer.question_features(tokens).shape == (32,)

    def test_column_features_shape(self, setup):
        featurizer, table = setup
        from repro.systems.neural.features import COLUMN_FEATURES

        tokens = featurizer.question_tokens("average salary")
        feats = featurizer.column_features(tokens, table.schema.column("salary"), table.schema)
        assert feats.shape == (COLUMN_FEATURES,)

    def test_mentioned_column_scores_higher(self, setup):
        featurizer, table = setup
        tokens = featurizer.question_tokens("what is the salary of Ada")
        salary = featurizer.column_features(tokens, table.schema.column("salary"), table.schema)
        title = featurizer.column_features(tokens, table.schema.column("title"), table.schema)
        assert salary[0] > title[0]  # max token similarity

    def test_numeric_candidates_with_operator(self, setup):
        featurizer, table = setup
        tokens = featurizer.question_tokens("employees with salary over 100000")
        candidates = featurizer.condition_candidates(tokens, table)
        assert any(
            c.column == "salary" and c.op == ">" and c.value == 100000.0
            for c in candidates
        )

    def test_text_candidates_from_values(self, setup):
        featurizer, table = setup
        tokens = featurizer.question_tokens("employees with title engineer")
        candidates = featurizer.condition_candidates(tokens, table)
        assert any(
            c.column == "title" and c.op == "=" and c.value == "engineer"
            for c in candidates
        )

    def test_candidate_gold_matching(self, setup):
        featurizer, table = setup
        tokens = featurizer.question_tokens("employees with title engineer")
        candidates = featurizer.condition_candidates(tokens, table)
        gold = [Condition("title", "=", "engineer")]
        assert any(c.matches_gold(gold) for c in candidates)


class TestModels:
    @pytest.fixture(scope="class")
    def dataset(self):
        return WikiSQLGenerator(seed=5).generate(150, 40)

    @pytest.mark.parametrize("model_cls", [Seq2SQLModel, SQLNetModel, TypeSQLModel])
    def test_model_learns_something(self, dataset, model_cls):
        model = model_cls(seed=0, epochs=20)
        report = model.fit(dataset.train, dataset.database)
        assert report.examples == len(dataset.train)
        correct = sum(
            execution_accuracy(
                dataset.database,
                model.predict(e.question, dataset.database.table(e.table)),
                e.sketch,
            )
            for e in dataset.test
        )
        assert correct / len(dataset.test) > 0.4

    def test_predict_before_fit_raises(self, dataset):
        model = SQLNetModel()
        with pytest.raises(RuntimeError):
            model.predict("anything", dataset.database.tables[0])

    def test_numeric_aggregate_masks_select(self, dataset):
        model = SQLNetModel(seed=0, epochs=10)
        model.fit(dataset.train, dataset.database)
        table = dataset.database.table("products")
        sketch = model.predict("what is the total price of products", table)
        if sketch and sketch.aggregate in ("sum", "avg", "min", "max"):
            column = table.schema.column(sketch.select_column)
            assert column.dtype.is_numeric


class TestDBPal:
    def test_training_set_size_and_validity(self):
        database = build_domain("movies")
        examples = generate_training_set(database, 120, seed=0)
        assert len(examples) == 120
        for example in examples[:30]:
            # every synthetic pair is executable on its database
            from repro.sqldb.executor import Executor

            Executor(database).execute(example.sketch.to_select())

    def test_augmentation_changes_surface_not_sketch(self):
        database = build_domain("movies")
        plain = generate_training_set(database, 60, seed=0, augment=False)
        augmented = generate_training_set(database, 60, seed=0, augment=True)
        plain_questions = {e.question for e in plain}
        assert any(e.question not in plain_questions for e in augmented)

    def test_fit_from_schema(self):
        database = build_domain("hr")
        model = DBPalModel(seed=0, epochs=10)
        report = model.fit_from_schema(database, size=120, seed=0)
        assert report.examples == 120
        assert model.trained


class TestAdapter:
    @pytest.fixture(scope="class")
    def system(self):
        database = build_domain("hr")
        context = NLIDBContext(database)
        model = DBPalModel(seed=0, epochs=15)
        model.fit_from_schema(database, size=200, seed=0)
        return NeuralSketchSystem(model, "neural"), context

    def test_family_is_ml(self, system):
        adapter, _ = system
        assert adapter.family == "ml"

    def test_chooses_right_table(self, system):
        adapter, context = system
        table = adapter._choose_table("average salary of employees", context)
        assert table.name == "employees"

    def test_interpret_returns_sql_interpretation(self, system):
        adapter, context = system
        interps = adapter.interpret("how many employees are there", context)
        assert interps and interps[0].sql is not None

    def test_single_table_even_for_join_questions(self, system):
        adapter, context = system
        interps = adapter.interpret(
            "average salary of employees per department name", context
        )
        if interps:
            sql = interps[0].to_sql().to_sql()
            assert "JOIN" not in sql
