"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.sqldb import (
    DataType,
    ParseError,
    parse_create_table,
    parse_expression,
    parse_select,
)
from repro.sqldb.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Literal,
    Star,
    SubqueryExpr,
    UnaryOp,
)
from repro.sqldb.lexer import tokenize


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt FrOm")
        assert [t.value for t in tokens[:-1]] == ["select", "from"]

    def test_string_escaping(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 10")
        assert [t.value for t in tokens[:-1]] == [1, 2.5, 10]

    def test_operators_greedy(self):
        tokens = tokenize("a<=b<>c")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["<=", "!="]

    def test_unexpected_char(self):
        with pytest.raises(ParseError):
            tokenize("a # b")


class TestParseExpression:
    def test_precedence_and_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "AND"

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_parenthesized(self):
        expr = parse_expression("(1 + 2) * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "*"

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expr, Between) and not expr.negated

    def test_not_between(self):
        expr = parse_expression("x NOT BETWEEN 1 AND 5")
        assert isinstance(expr, Between) and expr.negated

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, InList) and len(expr.items) == 3

    def test_not_in_list(self):
        expr = parse_expression("x NOT IN ('a')")
        assert isinstance(expr, InList) and expr.negated

    def test_is_null_forms(self):
        assert isinstance(parse_expression("x IS NULL"), IsNull)
        expr = parse_expression("x IS NOT NULL")
        assert isinstance(expr, IsNull) and expr.negated

    def test_like(self):
        expr = parse_expression("name LIKE 'A%'")
        assert isinstance(expr, BinaryOp) and expr.op == "LIKE"

    def test_qualified_column(self):
        expr = parse_expression("t.col")
        assert expr == ColumnRef("col", table="t")

    def test_function_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr, FuncCall) and isinstance(expr.args[0], Star)

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT city)")
        assert isinstance(expr, FuncCall) and expr.distinct

    def test_unary_minus_folds_into_literal(self):
        assert parse_expression("-5") == Literal(-5)

    def test_unary_minus_on_column_stays_unary(self):
        expr = parse_expression("-salary")
        assert isinstance(expr, UnaryOp) and expr.op == "-"

    def test_boolean_literals(self):
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("NULL") == Literal(None)


class TestParseSelect:
    def test_minimal(self):
        stmt = parse_select("SELECT 1")
        assert stmt.from_table is None
        assert stmt.select_items[0].expr == Literal(1)

    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert isinstance(stmt.select_items[0].expr, Star)

    def test_alias_with_and_without_as(self):
        stmt = parse_select("SELECT a AS x, b y FROM t")
        assert stmt.select_items[0].alias == "x"
        assert stmt.select_items[1].alias == "y"

    def test_table_alias(self):
        stmt = parse_select("SELECT e.name FROM emp e")
        assert stmt.from_table.alias == "e"

    def test_join_on(self):
        stmt = parse_select("SELECT 1 FROM a JOIN b ON a.x = b.y")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].table.table == "b"

    def test_inner_join_keyword(self):
        stmt = parse_select("SELECT 1 FROM a INNER JOIN b ON a.x = b.y")
        assert len(stmt.joins) == 1

    def test_group_by_having(self):
        stmt = parse_select(
            "SELECT city, COUNT(*) FROM t GROUP BY city HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a DESC, b")
        assert stmt.order_by[0].direction == "desc"
        assert stmt.order_by[1].direction == "asc"

    def test_limit(self):
        assert parse_select("SELECT a FROM t LIMIT 5").limit == 5

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t LIMIT 2.5")

    def test_limit_offset(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 10")
        assert stmt.limit == 5
        assert stmt.offset == 10

    def test_offset_defaults_to_none(self):
        assert parse_select("SELECT a FROM t LIMIT 5").offset is None

    def test_offset_requires_integer(self):
        with pytest.raises(ParseError, match="OFFSET expects an integer"):
            parse_select("SELECT a FROM t LIMIT 5 OFFSET 1.5")

    def test_negative_limit_and_offset_rejected_with_position(self):
        with pytest.raises(ParseError, match="LIMIT must not be negative") as exc:
            parse_select("SELECT a FROM t LIMIT -3")
        assert exc.value.line == 1 and exc.value.column > 0
        with pytest.raises(ParseError, match="OFFSET must not be negative"):
            parse_select("SELECT a FROM t LIMIT 3 OFFSET -1")

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_scalar_subquery(self):
        stmt = parse_select("SELECT a FROM t WHERE a > (SELECT AVG(a) FROM t)")
        subs = stmt.subqueries()
        assert len(subs) == 1

    def test_in_subquery(self):
        stmt = parse_select("SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        expr = stmt.where
        assert isinstance(expr, SubqueryExpr) and expr.kind == "in"

    def test_exists_subquery(self):
        stmt = parse_select("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert isinstance(stmt.where, SubqueryExpr)
        assert stmt.where.kind == "exists"

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t garbage !")

    def test_missing_from_item(self):
        with pytest.raises(ParseError):
            parse_select("SELECT FROM t")


class TestRoundTrip:
    CASES = [
        "SELECT a FROM t",
        "SELECT DISTINCT a, b AS x FROM t WHERE a > 1 AND b = 'z'",
        "SELECT COUNT(*) FROM t WHERE name LIKE 'A%'",
        "SELECT city, SUM(pop) FROM t GROUP BY city HAVING SUM(pop) > 10 ORDER BY city ASC LIMIT 3",
        "SELECT a FROM t JOIN u ON t.id = u.tid WHERE u.v BETWEEN 1 AND 2",
        "SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE b IS NOT NULL)",
        "SELECT a FROM t WHERE NOT (a = 1) OR b NOT IN (1, 2)",
        "SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 10",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_to_sql_reparses_identically(self, sql):
        first = parse_select(sql)
        second = parse_select(first.to_sql())
        assert first == second


class TestParseCreateTable:
    def test_basic_columns_and_types(self):
        schema = parse_create_table(
            "CREATE TABLE emp (id INTEGER, name TEXT, pay FLOAT, ok BOOLEAN, day DATE)"
        )
        assert schema.name == "emp"
        assert [c.dtype for c in schema] == [
            DataType.INTEGER,
            DataType.TEXT,
            DataType.FLOAT,
            DataType.BOOLEAN,
            DataType.DATE,
        ]
        assert all(c.nullable for c in schema)

    def test_not_null_and_primary_key_survive(self):
        schema = parse_create_table(
            "CREATE TABLE t (id INT PRIMARY KEY NOT NULL, v INT NOT NULL, w INT NULL)"
        )
        assert schema.column("id").primary_key
        assert not schema.column("id").nullable
        assert not schema.column("v").nullable
        assert schema.column("w").nullable

    def test_constraint_order_is_free(self):
        schema = parse_create_table("CREATE TABLE t (id INT NOT NULL PRIMARY KEY)")
        assert schema.column("id").primary_key
        assert not schema.column("id").nullable

    def test_type_aliases(self):
        schema = parse_create_table(
            "CREATE TABLE t (a int, b varchar, c string, d real, e double, f bool)"
        )
        assert [c.dtype for c in schema] == [
            DataType.INTEGER,
            DataType.TEXT,
            DataType.TEXT,
            DataType.FLOAT,
            DataType.FLOAT,
            DataType.BOOLEAN,
        ]

    def test_keywords_are_case_insensitive_idents(self):
        # CREATE/TABLE/PRIMARY/KEY are not reserved words in the dialect;
        # they must still match case-insensitively.
        schema = parse_create_table("create table T (K integer primary key)")
        assert schema.name == "T"
        assert schema.column("k").primary_key

    def test_trailing_semicolon_and_whitespace(self):
        schema = parse_create_table("CREATE TABLE t (a INT) ;  \n")
        assert schema.name == "t"

    @pytest.mark.parametrize(
        "bad",
        [
            "CREATE TABLE ()",
            "CREATE TABLE t ()",
            "CREATE TABLE t (a BLOB)",
            "CREATE TABLE t (a INT,)",
            "CREATE TABLE t (a INT",
            "CREATE TABLE t (a INT NOT)",
            "SELECT 1",
            "CREATE TABLE t (a INT) junk",
        ],
    )
    def test_malformed_raises_parse_error(self, bad):
        with pytest.raises(ParseError):
            parse_create_table(bad)

    def test_round_trips_with_to_ddl(self):
        ddl = (
            "CREATE TABLE emp (id INTEGER PRIMARY KEY NOT NULL, "
            "name TEXT NOT NULL, pay FLOAT)"
        )
        schema = parse_create_table(ddl)
        again = parse_create_table(schema.to_ddl())
        assert [
            (c.name, c.dtype, c.nullable, c.primary_key) for c in schema
        ] == [(c.name, c.dtype, c.nullable, c.primary_key) for c in again]
