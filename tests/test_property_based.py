"""Property-based tests (hypothesis) on core data structures and
invariants: SQL round-trips, executor laws, NLP function properties."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.complexity import ComplexityTier, classify
from repro.nlp import (
    lemmatize,
    levenshtein,
    parse_number,
    string_similarity,
    tokenize,
)
from repro.sqldb import (
    Column,
    Database,
    DataType,
    TableSchema,
    execute_sql,
    parse_select,
)
from repro.sqldb.ast import (
    BinaryOp,
    ColumnRef,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from repro.systems.neural.sketch import Condition, QuerySketch

# -- strategies ---------------------------------------------------------------

_COLUMNS = ["id", "name", "dept_id", "salary"]
_NUMERIC = ["id", "dept_id", "salary"]

column_ref = st.sampled_from(_COLUMNS).map(ColumnRef)
numeric_ref = st.sampled_from(_NUMERIC).map(ColumnRef)
number_literal = st.integers(min_value=-1000, max_value=1000).map(Literal)
text_literal = st.sampled_from(["Ada", "Bob", "Cyd", "zzz"]).map(Literal)
comparison_op = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def predicates(draw):
    op = draw(comparison_op)
    left = draw(numeric_ref)
    right = draw(number_literal)
    expr = BinaryOp(op, left, right)
    if draw(st.booleans()):
        other = BinaryOp(draw(comparison_op), draw(numeric_ref), draw(number_literal))
        expr = BinaryOp(draw(st.sampled_from(["AND", "OR"])), expr, other)
    return expr


@st.composite
def select_statements(draw):
    n_items = draw(st.integers(min_value=1, max_value=3))
    items = tuple(
        SelectItem(draw(column_ref)) for _ in range(n_items)
    )
    where = draw(st.one_of(st.none(), predicates()))
    order = ()
    if draw(st.booleans()):
        order = (OrderItem(draw(column_ref), draw(st.sampled_from(["asc", "desc"]))),)
    limit = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=10)))
    return SelectStatement(
        select_items=items,
        from_table=TableRef("emp"),
        where=where,
        order_by=order,
        limit=limit,
        distinct=draw(st.booleans()),
    )


def _emp_db() -> Database:
    db = Database("prop")
    db.create_table(
        TableSchema(
            "emp",
            [
                Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                Column("name", DataType.TEXT),
                Column("dept_id", DataType.INTEGER),
                Column("salary", DataType.FLOAT),
            ],
        )
    )
    db.insert_many(
        "emp",
        [
            [1, "Ada", 1, 120.0],
            [2, "Bob", 1, 90.0],
            [3, "Cyd", 2, 150.0],
            [4, "Ada", 2, None],
            [5, "Eli", None, 60.0],
        ],
    )
    return db


_DB = _emp_db()


# -- SQL round-trips -------------------------------------------------------------


class TestSqlRoundTrip:
    @given(select_statements())
    @settings(max_examples=120, deadline=None)
    def test_to_sql_reparses_to_same_ast(self, stmt):
        assert parse_select(stmt.to_sql()) == stmt

    @given(select_statements())
    @settings(max_examples=80, deadline=None)
    def test_rendered_sql_executes_identically(self, stmt):
        direct = execute_sql(_DB, stmt.to_sql())
        from repro.sqldb.executor import Executor

        via_ast = Executor(_DB).execute(stmt)
        assert direct.equals_ordered(via_ast)


class TestExecutorLaws:
    @given(select_statements())
    @settings(max_examples=80, deadline=None)
    def test_limit_bounds_rows(self, stmt):
        result = execute_sql(_DB, stmt.to_sql())
        if stmt.limit is not None:
            assert len(result) <= stmt.limit

    @given(select_statements())
    @settings(max_examples=80, deadline=None)
    def test_distinct_rows_unique(self, stmt):
        if not stmt.distinct:
            return
        result = execute_sql(_DB, stmt.to_sql())
        assert len(result.rows) == len(set(result.rows))

    @given(predicates())
    @settings(max_examples=80, deadline=None)
    def test_where_filters_subset(self, predicate):
        base = execute_sql(_DB, "SELECT id FROM emp")
        filtered = execute_sql(
            _DB, f"SELECT id FROM emp WHERE {predicate.to_sql()}"
        )
        assert set(filtered.first_column()) <= set(base.first_column())

    @given(st.sampled_from(_NUMERIC), st.sampled_from(["asc", "desc"]))
    @settings(max_examples=30, deadline=None)
    def test_order_by_sorts(self, column, direction):
        result = execute_sql(
            _DB, f"SELECT {column} FROM emp ORDER BY {column} {direction.upper()}"
        )
        values = [v for v in result.first_column() if v is not None]
        ordered = sorted(values, reverse=(direction == "desc"))
        assert values == ordered

    @given(predicates())
    @settings(max_examples=50, deadline=None)
    def test_count_consistent_with_rows(self, predicate):
        rows = execute_sql(
            _DB, f"SELECT id FROM emp WHERE {predicate.to_sql()}"
        )
        count = execute_sql(
            _DB, f"SELECT COUNT(*) FROM emp WHERE {predicate.to_sql()}"
        ).scalar()
        assert count == len(rows)


class TestComplexityProperties:
    @given(select_statements())
    @settings(max_examples=60, deadline=None)
    def test_generated_single_table_never_join_or_nested(self, stmt):
        tier = classify(stmt)
        assert tier in (ComplexityTier.SELECTION, ComplexityTier.AGGREGATION)


# -- NLP properties ------------------------------------------------------------------

word_strategy = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=12,
)


class TestNlpProperties:
    @given(word_strategy)
    @settings(max_examples=200, deadline=None)
    def test_lemmatize_near_idempotent(self, word):
        # Exact idempotence does not hold for rule cascades (a stripped
        # "-ed" can expose a plural "-s": "aaased" -> "aaas" -> "aaa"),
        # so the property is: a second pass only ever applies one more
        # suffix rule, never invents characters.
        once = lemmatize(word)
        twice = lemmatize(once)
        assert twice == once or (len(twice) < len(once) and once.startswith(twice[:2]))

    @given(word_strategy)
    @settings(max_examples=200, deadline=None)
    def test_lemmatize_lowercase_nonempty(self, word):
        lemma = lemmatize(word)
        assert lemma and lemma == lemma.lower()

    @given(word_strategy, word_strategy)
    @settings(max_examples=200, deadline=None)
    def test_similarity_symmetric_and_bounded(self, a, b):
        s1, s2 = string_similarity(a, b), string_similarity(b, a)
        assert s1 == pytest.approx(s2)
        assert 0.0 <= s1 <= 1.0

    @given(word_strategy)
    @settings(max_examples=100, deadline=None)
    def test_similarity_identity(self, word):
        assert string_similarity(word, word) == 1.0

    @given(word_strategy, word_strategy, word_strategy)
    @settings(max_examples=100, deadline=None)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_parse_number_digits_roundtrip(self, n):
        assert parse_number(str(n)) == float(n)

    @given(
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Ll", "Lu", "Nd", "Zs"),
                max_codepoint=0x7F,
            ),
            max_size=60,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_tokenize_spans_monotone(self, text):
        tokens = tokenize(text)
        for previous, current in zip(tokens, tokens[1:]):
            assert previous.end <= current.start
        for token in tokens:
            assert 0 <= token.start < token.end <= len(text)


# -- sketch properties --------------------------------------------------------------

condition_strategy = st.builds(
    Condition,
    column=st.sampled_from(_COLUMNS),
    op=st.sampled_from(["=", ">", "<"]),
    value=st.one_of(
        st.integers(min_value=-99, max_value=99).map(float),
        st.sampled_from(["Ada", "Bob"]),
    ),
)

sketch_strategy = st.builds(
    QuerySketch,
    table=st.just("emp"),
    select_column=st.sampled_from(_COLUMNS),
    aggregate=st.sampled_from(["", "count", "sum", "avg", "min", "max"]),
    conditions=st.lists(condition_strategy, max_size=3).map(tuple),
)


class TestSketchProperties:
    @given(sketch_strategy)
    @settings(max_examples=150, deadline=None)
    def test_sketch_ast_roundtrip(self, sketch):
        recovered = QuerySketch.from_select(sketch.to_select())
        assert recovered.matches(sketch)

    @given(sketch_strategy)
    @settings(max_examples=100, deadline=None)
    def test_sketch_sql_reparses(self, sketch):
        stmt = parse_select(sketch.to_sql())
        assert QuerySketch.from_select(stmt).matches(sketch)

    @given(sketch_strategy)
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    def test_matches_is_condition_order_invariant(self, sketch):
        reordered = QuerySketch(
            sketch.table,
            sketch.select_column,
            sketch.aggregate,
            tuple(reversed(sketch.conditions)),
        )
        assert sketch.matches(reordered)
