"""Golden-JSON integration tests for the HTTP facade (repro.serve.http).

Every test talks to a *live* localhost server (ephemeral port) over real
sockets: success and degraded answers, analyzer-style rejection with
per-system reasons, 429-on-backpressure with ``Retry-After``, deadline
blowups as 504, ``/healthz`` breaker snapshots, and the 400/404/413
input-validation surface.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from contextlib import contextmanager

import pytest

import repro.systems  # noqa: F401  (imported to populate the registry)
from repro.bench.workloads import WorkloadGenerator
from repro.perf.parallel import ContextSpec
from repro.perf.profiler import profile_stage
from repro.serve import (
    OPEN,
    VERDICT_ANSWERED,
    VERDICT_DEGRADED,
    VERDICT_FAILED,
    CircuitBreaker,
    ConcurrentFront,
    ResilientService,
    ServeResult,
    serve_http,
)
from repro.serve.http import MAX_BODY_BYTES, result_payload, status_for
from repro.sqldb.relation import Relation

SPEC = ContextSpec("university", seed=3)
BIG = 10**9


def _request(endpoint, method, path, body=None, headers=None):
    """One HTTP exchange; returns (status, parsed json, headers dict)."""
    conn = http.client.HTTPConnection(*endpoint, timeout=30)
    try:
        if body is None or isinstance(body, bytes):
            raw = body
        else:
            raw = json.dumps(body).encode("utf-8")
        send_headers = {"Content-Type": "application/json"}
        send_headers.update(headers or {})
        conn.request(method, path, body=raw, headers=send_headers)
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload, dict(response.getheaders())
    finally:
        conn.close()


def _post(endpoint, body, path="/query"):
    return _request(endpoint, "POST", path, body)


def _get(endpoint, path):
    return _request(endpoint, "GET", path)


@contextmanager
def _server(front, **server_kwargs):
    server = serve_http(front, port=0, quiet=True, **server_kwargs)
    server.serve_in_background()
    try:
        yield server
    finally:
        server.shutdown()
        front.stop()


# ---------------------------------------------------------------------------
# Scripted services: deterministic bodies for golden comparisons
# ---------------------------------------------------------------------------


class ScriptedService:
    """Fixed answers keyed on the question text."""

    def __init__(self, breakers):
        pass

    def ask(self, question, system=None, *, injector=None, request_id=None):
        requested = system or "athena"
        if question == "unanswerable":
            return ServeResult(
                question=question,
                requested_system=requested,
                ok=False,
                degraded_from=[
                    ("athena", "no statically valid interpretation"),
                    ("sqak", "no pattern matched"),
                    ("soda", "no keywords matched"),
                ],
                verdict=VERDICT_FAILED,
            )
        if question == "degrade me":
            return ServeResult(
                question=question,
                requested_system=requested,
                ok=True,
                system="soda",
                answer=Relation(["name"], [("Ada",)]),
                sql="SELECT name FROM emp WHERE name = 'Ada'",
                explanation="rows mentioning Ada",
                degraded_from=[("athena", "circuit breaker open")],
                verdict=VERDICT_DEGRADED,
            )
        return ServeResult(
            question=question,
            requested_system=requested,
            ok=True,
            system="athena",
            answer=Relation(["name", "salary"], [("Ada", 120.0), ("Bob", None)]),
            sql="SELECT name, salary FROM emp",
            explanation="the name and salary of every employee",
            verdict=VERDICT_ANSWERED,
        )


class BlockingService:
    def __init__(self, breakers):
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)

    def ask(self, question, system=None, *, injector=None, request_id=None):
        self.entered.release()
        self.release.wait(timeout=30)
        return ServeResult(
            question=question,
            requested_system=system or "blocking",
            ok=True,
            verdict=VERDICT_ANSWERED,
        )


class StagedSlowService:
    def __init__(self, breakers):
        pass

    def ask(self, question, system=None, *, injector=None, request_id=None):
        for _ in range(200):
            with profile_stage("execute"):
                time.sleep(0.005)
        return ServeResult(
            question=question,
            requested_system=system or "slow",
            ok=True,
            verdict=VERDICT_ANSWERED,
        )


def _scripted_front(**kwargs):
    kwargs.setdefault("pool_size", 1)
    kwargs.setdefault("cache_answers", False)
    return ConcurrentFront(service_factory=ScriptedService, **kwargs)


# ---------------------------------------------------------------------------
# Live server over the real pipeline
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def real_server():
    front = ConcurrentFront(
        SPEC.build, pool_size=2, failure_threshold=BIG, backoff_s=0.0
    )
    server = serve_http(front, port=0, quiet=True)
    server.serve_in_background()
    yield server
    server.shutdown()
    front.stop()


@pytest.fixture(scope="module")
def real_question():
    ctx = SPEC.build()
    return WorkloadGenerator(ctx.database, seed=3).generate_mixed(1)[0].question


class TestQueryEndToEnd:
    def test_success_payload_matches_direct_service_call(
        self, real_server, real_question
    ):
        status, payload, _ = _post(
            real_server.endpoint, {"question": real_question, "system": "athena"}
        )
        assert status == 200
        service = ResilientService(
            SPEC.build(), failure_threshold=BIG, backoff_s=0.0
        )
        expected = result_payload(service.ask(real_question, "athena"))
        for volatile in ("timings", "request_id", "cached"):
            payload.pop(volatile), expected.pop(volatile)
        assert payload == expected
        assert payload["ok"] and payload["row_count"] == len(payload["rows"])

    def test_second_identical_question_is_served_from_cache(
        self, real_server, real_question
    ):
        first = _post(real_server.endpoint, {"question": real_question})[1]
        second = _post(real_server.endpoint, {"question": real_question})[1]
        assert second["cached"] is True
        for volatile in ("timings", "request_id", "cached", "retries"):
            first.pop(volatile), second.pop(volatile)
        assert first == second

    def test_timings_are_present_and_numeric(self, real_server, real_question):
        _, payload, _ = _post(real_server.endpoint, {"question": real_question})
        assert set(payload["timings"]) == {"queued_s", "elapsed_s"}
        assert all(
            isinstance(v, (int, float)) and v >= 0
            for v in payload["timings"].values()
        )


class TestGoldenBodies:
    def test_answered_golden_json(self):
        with _server(_scripted_front()) as server:
            status, payload, _ = _post(
                server.endpoint, {"question": "salaries", "system": "athena"}
            )
        assert status == 200
        for volatile in ("timings", "request_id"):
            payload.pop(volatile)
        assert payload == {
            "ok": True,
            "verdict": "answered",
            "question": "salaries",
            "requested_system": "athena",
            "system": "athena",
            "sql": "SELECT name, salary FROM emp",
            "columns": ["name", "salary"],
            "rows": [["Ada", 120.0], ["Bob", None]],
            "row_count": 2,
            "explanation": "the name and salary of every employee",
            "degraded_from": [],
            "fault_trace": [],
            "retries": 0,
            "cached": False,
        }

    def test_degraded_fallback_golden_json(self):
        with _server(_scripted_front()) as server:
            status, payload, _ = _post(server.endpoint, {"question": "degrade me"})
        assert status == 200  # degraded is still an answer
        assert payload["ok"] is True
        assert payload["verdict"] == "degraded"
        assert payload["system"] == "soda"
        assert payload["degraded_from"] == [
            {"system": "athena", "reason": "circuit breaker open"}
        ]
        assert payload["rows"] == [["Ada"]]

    def test_rejected_interpretation_golden_json(self):
        with _server(_scripted_front()) as server:
            status, payload, _ = _post(server.endpoint, {"question": "unanswerable"})
        assert status == 200  # the service answered: "nothing could interpret it"
        assert payload["ok"] is False
        assert payload["verdict"] == "failed"
        assert payload["sql"] is None and payload["rows"] is None
        assert payload["degraded_from"] == [
            {"system": "athena", "reason": "no statically valid interpretation"},
            {"system": "sqak", "reason": "no pattern matched"},
            {"system": "soda", "reason": "no keywords matched"},
        ]


class TestAdmissionOverHTTP:
    def test_429_with_retry_after_on_backpressure(self):
        holder = {}

        def factory(breakers):
            return holder.setdefault("service", BlockingService(breakers))

        front = ConcurrentFront(
            service_factory=factory, pool_size=1, queue_depth=1, cache_answers=False
        )
        with _server(front) as server:
            held = front.submit("held")
            assert holder["service"].entered.acquire(timeout=5)
            queued = front.submit("queued")  # fills the one queue slot
            status, payload, headers = _post(server.endpoint, {"question": "over"})
            assert status == 429
            assert payload["verdict"] == "rejected_overload"
            assert payload["ok"] is False
            assert headers.get("Retry-After") == "1"
            holder["service"].release.set()
            assert held.wait(timeout=30).ok and queued.wait(timeout=30).ok

    def test_504_when_deadline_blows_mid_request(self):
        front = ConcurrentFront(
            service_factory=StagedSlowService,
            pool_size=1,
            deadline_s=0.05,
            cache_answers=False,
        )
        with _server(front) as server:
            status, payload, _ = _post(server.endpoint, {"question": "slow"})
        assert status == 504
        assert payload["verdict"] == "cancelled"
        assert payload["ok"] is False

    def test_status_for_mapping(self):
        assert status_for(ServeResult(question="q", requested_system="x")) == 200
        for verdict, code in (
            ("rejected_overload", 429),
            ("rejected_deadline", 504),
            ("cancelled", 504),
        ):
            result = ServeResult(question="q", requested_system="x", verdict=verdict)
            assert status_for(result) == code


class TestHealthz:
    def test_healthz_reports_breaker_snapshot(self):
        front = _scripted_front()
        breaker = CircuitBreaker(failure_threshold=2, recovery_s=1e9)
        breaker.record_failure()
        breaker.record_failure()
        front.breakers["athena"] = breaker
        with _server(front) as server:
            status, payload, _ = _get(server.endpoint, "/healthz")
        assert status == 200
        assert payload["status"] == "degraded"
        assert payload["breakers"]["athena"] == {
            "state": OPEN,
            "failures": 2,
            "failure_threshold": 2,
            "recovery_s": 1e9,
        }

    def test_healthz_ok_and_counters(self):
        with _server(_scripted_front()) as server:
            _post(server.endpoint, {"question": "salaries"})
            status, payload, _ = _get(server.endpoint, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["pool_size"] == 1
        assert payload["counters"]["completed"] == 1
        assert payload["counters"]["submitted"] == 1


class TestInputValidation:
    @pytest.fixture(scope="class")
    def server(self):
        front = _scripted_front(pool_size=2)
        with _server(front, max_body_bytes=1024) as live:
            yield live

    def test_malformed_json_body_is_400(self, server):
        status, payload, _ = _request(
            server.endpoint, "POST", "/query", body=b"{not json"
        )
        assert status == 400 and payload["ok"] is False

    def test_missing_question_is_400(self, server):
        assert _post(server.endpoint, {"system": "athena"})[0] == 400

    def test_non_string_question_is_400(self, server):
        assert _post(server.endpoint, {"question": 42})[0] == 400

    def test_blank_question_is_400(self, server):
        assert _post(server.endpoint, {"question": "   "})[0] == 400

    def test_non_string_system_is_400(self, server):
        status, payload, _ = _post(
            server.endpoint, {"question": "salaries", "system": 7}
        )
        assert status == 400 and "system" in payload["error"]

    def test_non_dict_body_is_400(self, server):
        assert _post(server.endpoint, ["question"])[0] == 400

    def test_oversized_body_is_413(self, server):
        huge = {"question": "x" * 4096}
        status, payload, _ = _post(server.endpoint, huge)
        assert status == 413 and "exceeds" in payload["error"]

    def test_bad_content_length_is_400(self, server):
        conn = http.client.HTTPConnection(*server.endpoint, timeout=30)
        try:
            conn.putrequest("POST", "/query")
            conn.putheader("Content-Length", "not-a-number")
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()
        assert response.status == 400
        assert "Content-Length" in payload["error"]

    def test_unknown_paths_are_404(self, server):
        assert _get(server.endpoint, "/nope")[0] == 404
        assert _post(server.endpoint, {"question": "q"}, path="/ask")[0] == 404

    def test_default_body_limit_constant(self):
        assert MAX_BODY_BYTES == 64 * 1024


class TestServeHttpWiring:
    def test_serve_http_starts_an_unstarted_front(self):
        front = _scripted_front()
        assert not front.started
        server = serve_http(front, port=0, quiet=True)
        try:
            assert front.started and front.running
        finally:
            server.server_close()
            front.stop()
