"""Tests for the perf layer: caches, stats, invalidation, profiling,
and the copy-on-write thesaurus regression."""

from __future__ import annotations

import pytest

from repro.core import NLIDBContext
from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBSystem
from repro.nlp.thesaurus import DEFAULT_THESAURUS
from repro.perf import (
    CacheStats,
    EvaluationCache,
    InterpretationCache,
    LRUCache,
    StageProfiler,
    active_profiler,
    memoize,
    normalize_question,
    profile_stage,
    stats_for,
)
from repro.perf.cache import MISSING
from repro.sqldb import Column, Database, DataType, TableSchema, parse_select


class TestLRUCache:
    def test_get_put_and_stats(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("a", MISSING) is MISSING
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_none_is_a_legal_value(self):
        cache = LRUCache()
        cache.put("k", None)
        assert cache.get("k", MISSING) is None

    def test_stats_merge_and_delta(self):
        a = CacheStats(hits=2, misses=1)
        before = a.snapshot()
        a.hits += 3
        delta = a.delta(before)
        assert delta.hits == 3 and delta.misses == 0
        b = CacheStats()
        b.merge(a)
        assert b.hits == a.hits
        assert a.hit_rate == pytest.approx(5 / 6)


class TestMemoize:
    def test_hits_and_clear(self):
        calls = []

        @memoize("test.memo", maxsize=8)
        def double(x):
            calls.append(x)
            return 2 * x

        assert double(3) == 6
        assert double(3) == 6
        assert calls == [3]
        assert double.cache_stats.hits >= 1
        double.cache_clear()
        assert double(3) == 6
        assert calls == [3, 3]

    def test_registry_aggregates_by_name(self):
        stats = stats_for("test.registry")
        assert stats_for("test.registry") is stats

    def test_nlp_primitives_record_stats(self):
        from repro.nlp.lemmatizer import lemmatize
        from repro.nlp.similarity import string_similarity

        before = stats_for("nlp.lemmatize").snapshot()
        lemmatize("salaries")
        lemmatize("salaries")
        assert stats_for("nlp.lemmatize").delta(before).hits >= 1

        before = stats_for("nlp.similarity").snapshot()
        string_similarity("salry", "salary")
        string_similarity("salry", "salary")
        assert stats_for("nlp.similarity").delta(before).hits >= 1


class TestNormalizeQuestion:
    def test_whitespace_collapsed(self):
        assert normalize_question("  show   all\temployees ") == "show all employees"

    def test_case_preserved(self):
        # Quoted values can be case-sensitive; two casings must not merge.
        assert normalize_question("find 'Bob'") != normalize_question("find 'bob'")


def _one_table_db() -> Database:
    db = Database("perfdb")
    db.create_table(
        TableSchema(
            "emp",
            [
                Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                Column("name", DataType.TEXT),
            ],
        )
    )
    db.insert_many("emp", [(1, "ann"), (2, "bob")])
    return db


class _CountingSystem(NLIDBSystem):
    """Always answers SELECT COUNT(*) FROM emp; counts interpret calls."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def interpret(self, question, context):
        self.calls += 1
        return [
            Interpretation(
                system=self.name,
                confidence=1.0,
                sql=parse_select("SELECT COUNT(*) FROM emp"),
            )
        ]


class TestInterpretationCache:
    def test_deepcopy_on_get_isolates_callers(self):
        cache = InterpretationCache()
        interp = Interpretation(system="s", confidence=0.5, sql=parse_select("SELECT id FROM emp"))
        cache.put("s", "q", 1, [interp])
        first = cache.get("s", "q", 1)
        first[0].confidence = 0.0
        second = cache.get("s", "q", 1)
        assert second[0].confidence == 0.5
        # and the original object put in was snapshotted, not referenced
        interp.confidence = 0.9
        assert cache.get("s", "q", 1)[0].confidence == 0.5

    def test_empty_list_is_cached(self):
        cache = InterpretationCache()
        cache.put("s", "q", 1, [])
        assert cache.get("s", "q", 1) == []
        assert cache.stats.hits == 1

    def test_version_miss_on_mutation(self):
        cache = InterpretationCache()
        cache.put("s", "q", 1, [])
        assert cache.get("s", "q", 2) is None

    def test_cached_answer_not_served_after_insert(self):
        """Satellite: an INSERT must invalidate the interpretation cache
        (and the executor's verdict caches) — the next answer reflects
        the new data."""
        db = _one_table_db()
        context = NLIDBContext(db, interpretation_cache=InterpretationCache())
        system = _CountingSystem()

        first = system.answer("how many employees", context)
        assert first.rows[0][0] == 2
        again = system.answer("how many employees", context)
        assert again.rows[0][0] == 2
        assert system.calls == 1  # second answer served from the cache

        db.insert("emp", (3, "cho"))
        after = system.answer("how many employees", context)
        assert after.rows[0][0] == 3
        assert system.calls == 2  # data_version moved: cache not served

    def test_executor_analysis_cache_invalidates_on_insert(self):
        db = _one_table_db()
        executor = db.executor
        stmt_a = parse_select("SELECT id FROM emp")
        stmt_b = parse_select("SELECT name FROM emp")
        executor.analysis_for(stmt_a)
        executor.analysis_for(stmt_b)
        assert len(executor._analysis_cache) == 2
        db.insert("emp", (4, "dia"))
        executor.analysis_for(stmt_a)
        # the INSERT bumped data_version: old verdicts were dropped
        assert len(executor._analysis_cache) == 1


class TestThesaurusCopyOnWrite:
    def test_two_contexts_do_not_share_synonyms(self):
        """Satellite regression: schema synonyms registered by one
        context must not leak into another context or the default."""
        db_a = Database("a")
        db_a.create_table(
            TableSchema(
                "gizmo",
                [Column("id", DataType.INTEGER)],
                synonyms=("widgetron",),
            )
        )
        db_b = Database("b")
        db_b.create_table(
            TableSchema(
                "doohickey",
                [Column("id", DataType.INTEGER)],
                synonyms=("thingamajig",),
            )
        )
        ctx_a = NLIDBContext(db_a)
        ctx_b = NLIDBContext(db_b)

        assert ctx_a.thesaurus.are_synonyms("gizmo", "widgetron")
        assert ctx_b.thesaurus.are_synonyms("doohickey", "thingamajig")
        # no cross-context leakage
        assert not ctx_a.thesaurus.are_synonyms("doohickey", "thingamajig")
        assert not ctx_b.thesaurus.are_synonyms("gizmo", "widgetron")
        # and the shared default was never mutated
        assert not DEFAULT_THESAURUS.are_synonyms("gizmo", "widgetron")
        assert not DEFAULT_THESAURUS.are_synonyms("doohickey", "thingamajig")

    def test_copy_is_independent(self):
        clone = DEFAULT_THESAURUS.copy()
        clone.add_synonyms(["zorp", "blarf"])
        assert clone.are_synonyms("zorp", "blarf")
        assert not DEFAULT_THESAURUS.are_synonyms("zorp", "blarf")

    def test_memo_cleared_on_mutation(self):
        thesaurus = DEFAULT_THESAURUS.copy()
        assert not thesaurus.are_synonyms("frobnicate", "grok")
        thesaurus.add_synonyms(["frobnicate", "grok"])
        # a stale memoized False must not survive the mutation
        assert thesaurus.are_synonyms("frobnicate", "grok")


class TestStageProfiler:
    def test_inactive_profile_stage_is_noop(self):
        assert active_profiler() is None
        with profile_stage("tokenize"):
            pass  # records nowhere, raises nothing

    def test_spans_record_under_activation(self):
        profiler = StageProfiler()
        with profiler.activate():
            assert active_profiler() is profiler
            with profile_stage("parse"):
                pass
            with profile_stage("parse"):
                pass
        assert active_profiler() is None
        assert profiler.stages["parse"].calls == 2
        assert profiler.seconds("parse") >= 0.0

    def test_span_records_on_exception(self):
        profiler = StageProfiler()
        with profiler.activate():
            with pytest.raises(ValueError):
                with profile_stage("match"):
                    raise ValueError("boom")
        assert profiler.stages["match"].calls == 1

    def test_delta_and_merge(self):
        profiler = StageProfiler()
        with profiler.activate():
            with profile_stage("rank"):
                pass
        before = profiler.snapshot()
        with profiler.activate():
            with profile_stage("rank"):
                pass
        delta = profiler.delta(before)
        assert delta.stages["rank"].calls == 1
        other = StageProfiler()
        other.merge(profiler)
        other.merge(delta)
        assert other.stages["rank"].calls == 3

    def test_as_dict_and_report(self):
        profiler = StageProfiler()
        with profiler.activate():
            with profile_stage("execute"):
                pass
        as_dict = profiler.as_dict()
        assert as_dict["execute"]["calls"] == 1
        assert "execute" in profiler.report()


class TestEvaluationCache:
    def test_snapshot_delta_merge_roundtrip(self):
        cache = EvaluationCache()
        before = cache.snapshot()
        cache.gold_results.put(("sql", 1), "result")
        cache.gold_results.get(("sql", 1))
        delta = cache.delta(before)
        assert delta["gold_results"].hits == 1
        assert delta["interpretations"].lookups == 0
        other = EvaluationCache()
        other.merge(delta)
        assert other.gold_results.stats.hits == 1

    def test_clear(self):
        cache = EvaluationCache()
        cache.match_verdicts.put("k", True)
        cache.clear()
        assert cache.match_verdicts.get("k", MISSING) is MISSING
