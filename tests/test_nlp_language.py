"""Unit tests for lemmatizer, POS tagger, parser, similarity, thesaurus."""

import pytest

from repro.nlp import (
    Thesaurus,
    are_synonyms,
    edit_similarity,
    jaccard,
    lemmatize,
    levenshtein,
    parse,
    phrase_similarity,
    string_similarity,
    synonyms,
    tag_text,
    term_similarity,
    trigram_similarity,
    wup_similarity,
)


class TestLemmatizer:
    @pytest.mark.parametrize(
        "word,lemma",
        [
            ("employees", "employee"),
            ("salaries", "salary"),
            ("branches", "branch"),
            ("cities", "city"),
            ("boxes", "box"),
            ("earning", "earn"),
            ("running", "run"),
            ("making", "make"),
            ("earned", "earn"),
            ("planned", "plan"),
            ("people", "person"),
            ("was", "be"),
            ("has", "have"),
            ("status", "status"),
            ("business", "business"),
            ("cat", "cat"),
        ],
    )
    def test_lemmas(self, word, lemma):
        assert lemmatize(word) == lemma

    def test_short_words_unchanged(self):
        assert lemmatize("as") == "as"


class TestPOS:
    def test_wh_question(self):
        tokens = tag_text("what is the salary")
        assert tokens[0].pos == "WP"

    def test_how_tagged_wrb(self):
        assert tag_text("how many orders")[0].pos == "WRB"

    def test_numbers_cd(self):
        tokens = tag_text("more than 50 items")
        assert any(t.pos == "CD" for t in tokens)

    def test_superlative(self):
        tokens = tag_text("highest salary")
        assert tokens[0].pos == "JJS"

    def test_determiner_noun_repair(self):
        tokens = tag_text("show the order")
        assert tokens[-1].pos == "NN"

    def test_quoted_proper_noun(self):
        tokens = tag_text('customers from "new york"')
        assert tokens[-1].pos == "NNP"


class TestParser:
    def test_focus_after_wh(self):
        tree = parse("what is the average salary of employees")
        assert "salary" in tree.focus().text

    def test_imperative_focus(self):
        tree = parse("show the customers from Berlin")
        assert "customers" in tree.focus().text

    def test_attachments_chain(self):
        tree = parse("salary of employees in the sales department")
        triples = [(p, d.head.norm) for _, p, d in tree.attachments()]
        assert ("of", "employees") in triples
        assert ("in", "department") in triples

    def test_noun_phrases_in_order(self):
        tree = parse("customers with orders over 100")
        nps = [np.head.norm for np in tree.noun_phrases() if np.head]
        assert nps[0] == "customers"

    def test_walk_yields_all(self):
        tree = parse("what are the names of products")
        labels = [n.label for n in tree.root.walk()]
        assert "WH" in labels and "NP" in labels

    def test_pretty_renders(self):
        assert "ROOT" in parse("show items").pretty()


class TestStringSimilarity:
    def test_levenshtein_basics(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("", "abc") == 3
        assert levenshtein("same", "same") == 0

    def test_edit_similarity_bounds(self):
        assert edit_similarity("a", "a") == 1.0
        assert 0 <= edit_similarity("abc", "xyz") <= 1

    def test_trigram_similarity(self):
        assert trigram_similarity("salary", "salary") == 1.0
        assert trigram_similarity("salary", "salaries") > 0.4

    def test_jaccard(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
        assert jaccard([], []) == 1.0

    def test_string_similarity_exact_tops(self):
        assert string_similarity("Name", "name") == 1.0
        assert string_similarity("employe", "employee") > 0.7
        assert string_similarity("salary", "zebra") < 0.5

    def test_typo_still_close(self):
        # transposition typo stays well above unrelated-word scores
        assert string_similarity("depratment", "department") > 0.55
        assert string_similarity("depratment", "department") > string_similarity(
            "depratment", "salary"
        )


class TestThesaurus:
    def test_synonyms_ring(self):
        assert "pay" in synonyms("salary")
        assert are_synonyms("doctor", "physician")

    def test_lemma_aware(self):
        assert are_synonyms("salaries", "pay")

    def test_wup_synonym_is_one(self):
        assert wup_similarity("salary", "pay") == 1.0

    def test_wup_taxonomy_relatives(self):
        sim = wup_similarity("doctor", "patient")  # siblings under person
        assert 0.5 < sim < 1.0

    def test_wup_unrelated_low(self):
        assert wup_similarity("doctor", "price") < 0.5

    def test_unknown_words_zero(self):
        assert wup_similarity("flibber", "jabber") == 0.0

    def test_runtime_extension(self):
        th = Thesaurus()
        th.add_synonyms(["sku", "product code"])
        assert th.are_synonyms("sku", "product code")

    def test_rings_stay_one_hop(self):
        th = Thesaurus()
        th.add_synonyms(["salary", "remuneration"])
        # remuneration~salary holds, but it does NOT transitively become
        # a synonym of every other member of salary's original ring
        assert th.are_synonyms("remuneration", "salary")
        assert not th.are_synonyms("remuneration", "pay")

    def test_no_transitive_megaring(self):
        th = Thesaurus()
        th.add_synonyms(["amount", "sum"])  # schema-declared synonym
        # built-in: total~sum; new: sum~amount; but NOT total~amount
        assert th.are_synonyms("sum", "amount")
        assert th.are_synonyms("total", "sum")
        assert not th.are_synonyms("total", "amount")


class TestTermSimilarity:
    def test_exact_and_lemma(self):
        assert term_similarity("employees", "employee") == 1.0

    def test_synonym_plateau(self):
        assert term_similarity("pay", "salary") == 0.95

    def test_synonym_beats_fuzzy(self):
        assert term_similarity("pay", "salary") > term_similarity("salry", "salary")

    def test_phrase_similarity_full_cover(self):
        assert phrase_similarity(["order", "date"], "order_date") == 1.0

    def test_phrase_similarity_partial(self):
        full = phrase_similarity(["order", "date"], "order_date")
        partial = phrase_similarity(["date"], "order_date")
        assert partial < full
