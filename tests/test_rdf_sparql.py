"""Tests for the RDF substrate, SPARQL engine, BELA and TR Discover."""

import pytest

from repro.bench.domains import build_domain
from repro.core import NLIDBContext
from repro.core.intermediate import compile_oql
from repro.rdf import (
    RDF_TYPE,
    RDFS_LABEL,
    Filter,
    SparqlQuery,
    TriplePattern,
    TripleStore,
    Var,
    class_uri,
    evaluate,
    export_rdf,
    parse_sparql,
    property_uri,
    relation_uri,
)
from repro.sqldb import execute_sql
from repro.systems.sparql_bela import BelaSystem
from repro.systems.trdiscover import TRDiscoverCompleter


@pytest.fixture(scope="module")
def movie_ctx():
    return NLIDBContext(build_domain("movies"))


@pytest.fixture(scope="module")
def movie_store(movie_ctx):
    return export_rdf(movie_ctx)


class TestTripleStore:
    def make(self):
        store = TripleStore()
        store.add("e:1", RDF_TYPE, "class:person")
        store.add("e:1", RDFS_LABEL, "Ada")
        store.add("e:1", "prop:age", 30)
        store.add("e:2", RDF_TYPE, "class:person")
        store.add("e:2", RDFS_LABEL, "Bob")
        return store

    def test_dedup(self):
        store = self.make()
        before = len(store)
        store.add("e:1", RDFS_LABEL, "Ada")
        assert len(store) == before

    def test_match_by_subject(self):
        store = self.make()
        assert len(store.match("e:1")) == 3

    def test_match_by_predicate_object(self):
        store = self.make()
        triples = store.match(None, RDF_TYPE, "class:person")
        assert {t.subject for t in triples} == {"e:1", "e:2"}

    def test_match_object_only(self):
        store = self.make()
        assert store.match(None, None, 30, obj_given=True)[0].subject == "e:1"

    def test_full_wildcard(self):
        store = self.make()
        assert len(store.match()) == len(store)

    def test_bool_int_distinct(self):
        store = TripleStore()
        store.add("e:1", "p", True)
        store.add("e:2", "p", 1)
        assert len(store.match(None, "p", True)) == 1

    def test_subjects_of_type(self):
        assert set(self.make().subjects_of_type("class:person")) == {"e:1", "e:2"}

    def test_label_index(self):
        index = self.make().label_index()
        assert index["ada"] == ["e:1"]


class TestExport:
    def test_every_row_typed(self, movie_ctx, movie_store):
        movies = movie_store.subjects_of_type(class_uri("movie"))
        assert len(movies) == len(movie_ctx.database.table("movies"))

    def test_properties_exported(self, movie_ctx, movie_store):
        triples = movie_store.match(None, property_uri("movie", "year"))
        assert len(triples) == len(movie_ctx.database.table("movies"))

    def test_relations_exported(self, movie_store):
        assert movie_store.match(None, relation_uri("director"))

    def test_labels_exported(self, movie_ctx, movie_store):
        title = movie_ctx.database.table("movies").rows[0][1]
        assert movie_store.match(None, RDFS_LABEL, title)


class TestSparqlEngine:
    def test_type_listing_matches_sql(self, movie_ctx, movie_store):
        query = SparqlQuery(
            select=(Var("label"),),
            patterns=(
                TriplePattern(Var("m"), RDF_TYPE, class_uri("movie")),
                TriplePattern(Var("m"), RDFS_LABEL, Var("label")),
            ),
        )
        result = evaluate(movie_store, query)
        sql = execute_sql(movie_ctx.database, "SELECT title FROM movies")
        assert result.equals_unordered(sql)

    def test_filter_matches_sql(self, movie_ctx, movie_store):
        query = SparqlQuery(
            select=(Var("label"),),
            patterns=(
                TriplePattern(Var("m"), RDF_TYPE, class_uri("movie")),
                TriplePattern(Var("m"), RDFS_LABEL, Var("label")),
                TriplePattern(Var("m"), property_uri("movie", "year"), Var("y")),
            ),
            filters=(Filter(Var("y"), ">", 2015),),
        )
        result = evaluate(movie_store, query)
        sql = execute_sql(movie_ctx.database, "SELECT title FROM movies WHERE year > 2015")
        assert result.equals_unordered(sql)

    def test_join_traversal_matches_sql(self, movie_ctx, movie_store):
        director = movie_ctx.database.table("directors").rows[0][1]
        query = SparqlQuery(
            select=(Var("label"),),
            patterns=(
                TriplePattern(Var("m"), RDF_TYPE, class_uri("movie")),
                TriplePattern(Var("m"), RDFS_LABEL, Var("label")),
                TriplePattern(Var("m"), relation_uri("director"), Var("d")),
                TriplePattern(Var("d"), RDFS_LABEL, director),
            ),
        )
        result = evaluate(movie_store, query)
        sql = execute_sql(
            movie_ctx.database,
            "SELECT title FROM movies JOIN directors ON movies.director_id = directors.id "
            f"WHERE directors.name = '{director}'",
        )
        assert result.equals_unordered(sql)

    def test_count(self, movie_ctx, movie_store):
        query = SparqlQuery(
            select=(),
            patterns=(TriplePattern(Var("m"), RDF_TYPE, class_uri("movie")),),
            count=Var("m"),
        )
        assert evaluate(movie_store, query).scalar() == len(
            movie_ctx.database.table("movies")
        )

    def test_limit_and_distinct(self, movie_store):
        query = SparqlQuery(
            select=(Var("g"),),
            patterns=(TriplePattern(Var("m"), property_uri("movie", "genre"), Var("g")),),
            distinct=True,
            limit=3,
        )
        result = evaluate(movie_store, query)
        assert len(result) <= 3
        assert len(set(result.rows)) == len(result.rows)

    def test_unsatisfiable_pattern_empty(self, movie_store):
        query = SparqlQuery(
            select=(Var("x"),),
            patterns=(TriplePattern(Var("x"), RDF_TYPE, "class:unicorn"),),
        )
        assert len(evaluate(movie_store, query)) == 0


class TestSparqlRoundTrip:
    CASES = [
        SparqlQuery(
            select=(Var("x"),),
            patterns=(TriplePattern(Var("x"), RDF_TYPE, class_uri("movie")),),
        ),
        SparqlQuery(
            select=(Var("x"), Var("y")),
            patterns=(
                TriplePattern(Var("x"), property_uri("movie", "year"), Var("y")),
            ),
            filters=(Filter(Var("y"), ">=", 2000),),
            distinct=True,
            limit=5,
        ),
        SparqlQuery(
            select=(),
            patterns=(TriplePattern(Var("m"), RDFS_LABEL, "It's \"quoted\""),),
            count=Var("m"),
        ),
    ]

    @pytest.mark.parametrize("query", CASES)
    def test_roundtrip(self, query):
        assert parse_sparql(query.to_sparql()) == query


class TestBela:
    @pytest.fixture(scope="class")
    def bela(self, movie_ctx):
        return BelaSystem(movie_ctx)

    def test_count_template(self, movie_ctx, bela):
        result = bela.answer("how many movies are there")
        assert result.scalar() == len(movie_ctx.database.table("movies"))

    def test_count_with_condition(self, movie_ctx, bela):
        result = bela.answer("how many movies with genre drama")
        gold = execute_sql(
            movie_ctx.database, "SELECT COUNT(*) FROM movies WHERE genre = 'drama'"
        )
        assert result.scalar() == gold.scalar()

    def test_property_of_entity(self, movie_ctx, bela):
        title = movie_ctx.database.table("movies").rows[0][1]
        result = bela.answer(f"what is the year of {title}")
        gold = execute_sql(
            movie_ctx.database, f"SELECT year FROM movies WHERE title = '{title}'"
        )
        assert result.equals_unordered(gold)

    def test_relation_traversal(self, movie_ctx, bela):
        director = movie_ctx.database.table("directors").rows[0][1]
        result = bela.answer(f"movies whose director is {director}")
        gold = execute_sql(
            movie_ctx.database,
            "SELECT title FROM movies JOIN directors ON movies.director_id = directors.id "
            f"WHERE directors.name = '{director}'",
        )
        assert result.equals_unordered(gold)

    def test_layer1_for_exact_phrasing(self, bela):
        readings = bela.interpret_sparql("how many movies with genre drama")
        assert readings[0].layer == 1

    def test_layer2_for_synonyms(self, movie_ctx):
        # schema synonyms ('category') are layer-1 vocabulary; a
        # thesaurus-only synonym ('class' ~ 'genre') needs layer 2
        bela = BelaSystem(movie_ctx)
        readings = bela.interpret_sparql("how many movies with class drama")
        assert readings and readings[0].layer == 2
        assert any(f.value == "drama" for f in readings[0].query.filters)

    def test_layer_cap_blocks_deeper_layers(self, movie_ctx):
        shallow = BelaSystem(movie_ctx, max_layer=1)
        readings = shallow.interpret_sparql("how many movies with class drama")
        # layer 1 cannot resolve 'class' -> genre: no drama filter appears
        assert all(
            not any(f.value == "drama" for f in r.query.filters) for r in readings
        )

    def test_no_reading_for_garbage(self, bela):
        assert bela.interpret_sparql("flibber the wug") == []


class TestTRDiscover:
    @pytest.fixture(scope="class")
    def completer(self, movie_ctx):
        return TRDiscoverCompleter(movie_ctx)

    def test_start_suggests_classes(self, completer):
        texts = {s.text for s in completer.complete("")}
        assert "movies" in texts

    def test_after_class_suggests_connectives(self, completer):
        texts = [s.text for s in completer.complete("movies")]
        assert texts == ["with", "whose"]

    def test_property_suggestions(self, completer):
        texts = {s.text for s in completer.complete("movies with")}
        assert "genre" in texts and "id" not in texts

    def test_value_suggestions_for_text_property(self, completer):
        texts = {s.text for s in completer.complete("movies with genre")}
        assert "drama" in texts

    def test_numeric_property_suggests_comparators(self, completer):
        texts = [s.text for s in completer.complete("movies with rating")]
        assert texts == ["over", "under"]

    def test_relation_then_labels(self, completer, movie_ctx):
        assert "is" in [s.text for s in completer.complete("movies whose director")]
        labels = {s.text for s in completer.complete("movies whose director is")}
        assert movie_ctx.database.table("directors").rows[0][1] in labels or labels

    def test_centrality_ranking_is_sorted(self, completer):
        suggestions = completer.complete("movies whose director is")
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_completed_sentences_always_interpretable(self, completer, movie_ctx):
        for sentence in (
            "movies with genre drama",
            "movies with rating over 8",
            "movies whose director is sam chen",
        ):
            query = completer.parse_completed(sentence)
            assert query is not None
            stmt = compile_oql(query, movie_ctx.ontology, movie_ctx.mapping)
            movie_ctx.executor.execute(stmt)

    def test_off_grammar_returns_none(self, completer):
        assert completer.parse_completed("bananas frobnicate wildly") is None


class TestExportAllDomains:
    @pytest.mark.parametrize("domain", ["hr", "retail", "finance", "geo", "university", "healthcare"])
    def test_every_domain_exports_consistently(self, domain):
        context = NLIDBContext(build_domain(domain))
        store = export_rdf(context)
        assert len(store) > 0
        # every concept's entity count equals its table's row count
        for concept in context.ontology.concepts.values():
            table = context.mapping.table_of(concept.name)
            entities = store.subjects_of_type(class_uri(concept.name))
            assert len(entities) == len(context.database.table(table))
