"""Differential tests: the parallel evaluation path must be
byte-identical to the serial one — same outcomes, same rows — for every
registered system, including the exception-swallowing paths."""

from __future__ import annotations

import pytest

from repro.bench.domains import build_domain
from repro.bench.harness import compare_systems, evaluate_system
from repro.bench.workloads import WorkloadGenerator
from repro.core import NLIDBContext, available, create
from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBSystem
from repro.perf import EvaluationCache
from repro.perf.parallel import (
    ContextSpec,
    parallel_compare_systems,
    parallel_evaluate_system,
    partition_examples,
)
from repro.sqldb import parse_select
from repro.systems import AthenaSystem  # noqa: F401  (populate the registry)

DOMAINS = ["university", "retail"]


@pytest.fixture(scope="module")
def workloads():
    """Per-domain (spec, context, examples) triples, built once."""
    out = {}
    for domain in DOMAINS:
        spec = ContextSpec(domain, seed=3)
        context = spec.build()
        examples = WorkloadGenerator(context.database, seed=3).generate_mixed(1)
        out[domain] = (spec, context, examples)
    return out


class TestPartition:
    def test_covers_all_indices_exactly_once(self):
        spec = ContextSpec("university")
        examples = WorkloadGenerator(spec.build().database, seed=1).generate_mixed(2)
        buckets = partition_examples(examples, 3)
        flat = sorted(i for bucket in buckets for i in bucket)
        assert flat == list(range(len(examples)))

    def test_repeats_land_in_one_bucket(self):
        spec = ContextSpec("university")
        examples = WorkloadGenerator(spec.build().database, seed=1).generate_mixed(1)
        repeated = examples * 3
        buckets = partition_examples(repeated, 4)
        for example in examples:
            owners = {
                b
                for b, bucket in enumerate(buckets)
                if any(
                    repeated[i].question == example.question
                    and repeated[i].sql == example.sql
                    for i in bucket
                )
            }
            assert len(owners) == 1

    def test_deterministic(self):
        spec = ContextSpec("retail")
        examples = WorkloadGenerator(spec.build().database, seed=2).generate_mixed(2)
        assert partition_examples(examples, 4) == partition_examples(examples, 4)


@pytest.mark.parametrize("domain", DOMAINS)
class TestParallelMatchesSerial:
    def test_outcomes_identical_for_every_registered_system(
        self, workloads, domain
    ):
        spec, context, examples = workloads[domain]
        for name in available():
            serial = evaluate_system(create(name), context, examples)
            parallel = parallel_evaluate_system(
                name, spec, examples, jobs=2, context=context
            )
            assert parallel == serial, f"{name} diverged on {domain}"

    def test_rows_identical_to_compare_systems(self, workloads, domain):
        spec, context, examples = workloads[domain]
        names = available()
        serial_rows = compare_systems(
            [create(n) for n in names], context, examples
        )
        report = parallel_compare_systems(
            names, spec, examples, jobs=2, context=context
        )
        assert report.rows == serial_rows


class _RaisingSystem(NLIDBSystem):
    """interpret() always raises — exercises the except→abstain path."""

    name = "raising"

    def interpret(self, question, context):
        raise RuntimeError("interpretation exploded")


class _AbstainSystem(NLIDBSystem):
    """Always returns [] — exercises empty-list caching."""

    name = "abstain"

    def interpret(self, question, context):
        return []


class _BrokenSQLSystem(NLIDBSystem):
    """Predicts SQL over a phantom table — static rejection + execution
    failure paths."""

    name = "broken-sql"

    def interpret(self, question, context):
        return [
            Interpretation(
                system=self.name,
                confidence=1.0,
                sql=parse_select("SELECT nothing FROM phantom"),
            )
        ]


class TestExceptionPaths:
    def test_exception_swallowing_identical(self, workloads):
        spec, context, examples = workloads["university"]
        systems = [_RaisingSystem(), _AbstainSystem(), _BrokenSQLSystem()]
        serial_rows = compare_systems(systems, context, examples)
        report = parallel_compare_systems(
            systems, spec, examples, jobs=2, context=context
        )
        assert report.rows == serial_rows
        for system in systems:
            serial = evaluate_system(type(system)(), context, examples)
            assert report.outcomes[system.name] == serial

    def test_broken_sql_is_statically_rejected(self, workloads):
        spec, context, examples = workloads["university"]
        outcomes = parallel_evaluate_system(
            _BrokenSQLSystem(), spec, examples, jobs=2, context=context
        )
        assert all(o.answered and not o.correct for o in outcomes)
        assert all(o.static_rejected for o in outcomes)


class TestCachingBehaviour:
    def test_repeated_workload_hits_interpretation_cache(self, workloads):
        spec, context, examples = workloads["university"]
        repeated = examples * 3
        report = parallel_compare_systems(
            ["soda"], spec, repeated, jobs=2, context=context
        )
        layer = report.cache_stats["interpretations"]
        assert layer.hit_rate > 0
        assert report.rows[-1].cache_hit_rate == pytest.approx(layer.hit_rate)

    def test_cached_sweep_identical_to_uncached(self, workloads):
        spec, context, examples = workloads["retail"]
        repeated = examples * 2
        system = create("quest")
        uncached = evaluate_system(system, context, repeated)
        cached = evaluate_system(
            system, context, repeated, cache=EvaluationCache()
        )
        assert cached == uncached

    def test_jobs_one_falls_back_to_serial(self, workloads):
        spec, context, examples = workloads["university"]
        report = parallel_compare_systems(
            ["soda"], spec, examples, jobs=1, context=context
        )
        assert report.mode == "serial"
        assert report.rows == compare_systems([create("soda")], context, examples)

    def test_unpicklable_system_falls_back(self, workloads):
        spec, context, examples = workloads["university"]

        class LocalSystem(NLIDBSystem):
            name = "local"

            def interpret(self, question, context):
                return []

        report = parallel_compare_systems(
            [LocalSystem()], spec, examples, jobs=2, context=context
        )
        assert report.mode == "serial"
        assert report.outcomes["local"] == evaluate_system(
            LocalSystem(), context, examples
        )

    def test_profile_spans_recorded(self, workloads):
        spec, context, examples = workloads["university"]
        report = parallel_compare_systems(
            ["soda"], spec, examples, jobs=2, context=context
        )
        assert report.profile.stages.get("interpret") is not None
        assert report.profile.stages["interpret"].calls == len(examples)
