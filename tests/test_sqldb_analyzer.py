"""Tests for the static semantic analyzer.

The heart of the suite is the *differential contract* with the executor:

- analyzer-accept ⇒ executing the statement (analysis disabled) never
  raises a static error — name resolution, aggregate placement, or an
  operand-type failure.  Value-dependent errors (division by a data
  zero, multi-row scalar subquery) are still allowed.
- analyzer-reject ⇒ executing the statement raises exactly the exception
  class mapped to the first error diagnostic (``ERROR_CLASS_BY_CODE``),
  on both the planner and the naive interpreter paths.

The contract is enforced over the planner suite's SQL corpus plus
generated gold workloads for every benchmark domain.
"""

from __future__ import annotations

import pytest

from repro.bench import WorkloadGenerator, build_domain, domain_names
from repro.cli import main as cli_main
from repro.sqldb import (
    ERROR_CLASS_BY_CODE,
    AggregateError,
    CatalogError,
    Executor,
    SqlError,
    UnknownFunctionError,
    parse_select,
)
from repro.sqldb.analyzer import Diagnostic
from repro.sqldb.errors import (
    AmbiguousColumnError,
    ArithmeticTypeError,
    DivisionByZeroError,
    LikeTypeError,
    UnknownColumnError,
)
from tests.test_sqldb_planner import EMP_CORPUS, ERROR_CORPUS, SHOP_CORPUS

# Exception families the executor can only raise for statically decidable
# reasons on a typed catalog: accepted statements must never hit these.
# (DivisionByZeroError / SubqueryError / MIN-MAX-mixed remain possible at
# runtime because they depend on row *values* the analyzer cannot see.)
STATIC_FAILURES = (
    CatalogError,
    AggregateError,
    UnknownFunctionError,
    ArithmeticTypeError,
    LikeTypeError,
)


def assert_contract(db, sql: str) -> None:
    """Enforce the accept/reject contract for one statement on ``db``."""
    result = db.analyze_sql(sql)
    naive = Executor(db, use_planner=False, analyze=False)
    planned = Executor(db, use_planner=True, analyze=False)
    if result.ok:
        for executor in (naive, planned):
            try:
                executor.execute_sql(sql)
            except STATIC_FAILURES as exc:
                pytest.fail(f"accepted but raised {type(exc).__name__}: {sql}")
            except SqlError:
                pass  # value-dependent failure: allowed under the contract
    else:
        expected = result.errors[0].error_class
        for executor in (naive, planned):
            with pytest.raises(expected):
                executor.execute_sql(sql)


class TestDifferentialContract:
    @pytest.mark.parametrize("sql", EMP_CORPUS + ERROR_CORPUS)
    def test_emp_corpus(self, emp_db, sql):
        assert_contract(emp_db, sql)

    @pytest.mark.parametrize("sql", SHOP_CORPUS)
    def test_shop_corpus(self, shop_db, sql):
        assert_contract(shop_db, sql)

    @pytest.mark.parametrize("domain", domain_names())
    def test_generated_gold_is_accepted(self, domain):
        db = build_domain(domain)
        for example in WorkloadGenerator(db, seed=11).generate_mixed(15):
            result = db.analyze_sql(example.sql)
            assert result.ok, (
                example.sql,
                [d.format() for d in result.diagnostics],
            )
            assert_contract(db, example.sql)


# Statements the analyzer must reject, with the expected leading code.
REJECTS = [
    ("SELECT name FROM nope", "SQL210"),
    ("SELECT bogus FROM emp", "SQL211"),
    ("SELECT emp.bogus FROM emp", "SQL211"),
    ("SELECT id FROM emp JOIN dept ON emp.dept_id = dept.id", "SQL212"),
    ("SELECT FOO(1) FROM emp", "SQL214"),
    ("SELECT name + 1 FROM emp", "SQL302"),
    ("SELECT -name FROM emp", "SQL302"),
    ("SELECT name FROM emp WHERE salary LIKE 'x%'", "SQL303"),
    ("SELECT ABS(name) FROM emp", "SQL307"),
    ("SELECT SUM(name) FROM emp", "SQL307"),
    ("SELECT 1 / 0", "SQL401"),
    ("SELECT name FROM emp WHERE SUM(salary) > 10", "SQL411"),
    ("SELECT SUM(SUM(salary)) FROM emp", "SQL412"),
    ("SELECT * FROM emp GROUP BY dept_id", "SQL414"),
    ("SELECT SUM(salary, id) FROM emp", "SQL415"),
    ("SELECT SUM(*) FROM emp", "SQL415"),
    ("SELECT UPPER(*) FROM emp", "SQL417"),
    ("SELECT LOWER(name, name) FROM emp", "SQL417"),
    ("SELECT name FROM emp WHERE salary > (SELECT id, salary FROM emp)", "SQL421"),
]

# Statements that execute fine but deserve a warning, with expected code.
WARNINGS = [
    ("SELECT name FROM emp WHERE name = 3", "SQL301"),
    ("SELECT name FROM emp WHERE salary IN (1, 'x')", "SQL304"),
    ("SELECT name FROM emp WHERE salary BETWEEN 1 AND 'x'", "SQL305"),
    ("SELECT name FROM emp WHERE salary IN (1, NULL)", "SQL306"),
    ("SELECT name FROM emp WHERE salary NOT IN (1, NULL)", "SQL306"),
    ("SELECT dept_id, name FROM emp GROUP BY dept_id", "SQL413"),
    ("SELECT name FROM emp HAVING salary > 1", "SQL416"),
    ("SELECT a.name FROM emp a JOIN dept a ON a.dept_id = a.id", "SQL213"),
]


class TestDiagnostics:
    @pytest.mark.parametrize("sql,code", REJECTS)
    def test_rejects_with_code(self, emp_db, sql, code):
        result = emp_db.analyze_sql(sql)
        assert not result.ok, sql
        assert result.errors[0].code == code, [d.format() for d in result.diagnostics]
        # 1:1 code ↔ exception class mapping, and contract holds
        assert result.errors[0].error_class is ERROR_CLASS_BY_CODE[code]
        assert_contract(emp_db, sql)

    @pytest.mark.parametrize("sql,code", WARNINGS)
    def test_warns_but_executes(self, emp_db, sql, code):
        result = emp_db.analyze_sql(sql)
        assert result.ok, [d.format() for d in result.diagnostics]
        assert code in [d.code for d in result.warnings], sql
        # warnings never reject: the default (analyzing) executor runs it
        Executor(emp_db).execute_sql(sql)

    def test_at_least_ten_distinct_codes(self, emp_db):
        codes = set()
        for sql, _ in REJECTS + WARNINGS:
            codes.update(emp_db.analyze_sql(sql).codes())
        assert len(codes) >= 10, sorted(codes)

    def test_diagnostics_carry_spans(self, emp_db):
        for sql, _ in REJECTS + WARNINGS:
            for diag in emp_db.analyze_sql(sql).diagnostics:
                assert diag.span is not None, (sql, diag.format())
                assert diag.span.line >= 1 and diag.span.col >= 1
                assert 0 <= diag.span.start <= diag.span.end <= len(sql)

    def test_span_excerpt_locates_offender(self, emp_db):
        sql = "SELECT name FROM emp WHERE salary LIKE 'x%'"
        diag = emp_db.analyze_sql(sql).errors[0]
        assert "salary LIKE 'x%'" in diag.span.excerpt(sql)

    def test_parse_error_becomes_sql101(self, emp_db):
        result = emp_db.analyze_sql("SELECT FROM WHERE")
        assert not result.ok
        assert result.errors[0].code == "SQL101"
        assert "line 1" in result.errors[0].message

    def test_format_shows_position_severity_code(self, emp_db):
        line = emp_db.analyze_sql("SELECT bogus FROM emp").errors[0].format()
        assert line.startswith("1:8 [error SQL211]")


class TestExecutorPreflight:
    def test_rejection_raises_mapped_class_before_any_row(self, emp_db):
        executor = Executor(emp_db)
        with pytest.raises(UnknownColumnError):
            executor.execute_sql("SELECT bogus FROM emp")
        assert executor.total_stats.static_rejections == 1

    def test_escape_hatch_defers_to_runtime(self, emp_db):
        executor = Executor(emp_db, analyze=False)
        with pytest.raises(UnknownColumnError):
            executor.execute_sql("SELECT bogus FROM emp")
        assert executor.total_stats.static_rejections == 0
        assert executor.total_stats.preflight_checks == 0

    def test_preflight_cache_hits_on_repeated_statements(self, emp_db):
        executor = Executor(emp_db)
        executor.execute_sql("SELECT name FROM emp")
        executor.execute_sql("SELECT name FROM emp")
        assert executor.total_stats.preflight_checks == 2
        assert executor.total_stats.preflight_cache_hits >= 1

    def test_ambiguous_join_column_rejected(self, emp_db):
        with pytest.raises(AmbiguousColumnError):
            Executor(emp_db).execute_sql(
                "SELECT id FROM emp JOIN dept ON emp.dept_id = dept.id"
            )

    def test_literal_division_by_zero_rejected_statically(self, emp_db):
        with pytest.raises(DivisionByZeroError):
            Executor(emp_db).execute_sql("SELECT 1 / 0")


class TestSpans:
    def test_statement_and_expression_nodes_have_spans(self):
        stmt = parse_select("SELECT name, salary\nFROM emp\nWHERE salary > 1")
        assert stmt.span is not None and stmt.span.line == 1
        assert stmt.where.span.line == 3
        assert stmt.where.span.excerpt(
            "SELECT name, salary\nFROM emp\nWHERE salary > 1"
        ) == "salary > 1"

    def test_spans_do_not_affect_ast_equality(self):
        a = parse_select("SELECT name FROM emp WHERE salary > 1")
        b = parse_select("select  name\nfrom emp  where salary > 1")
        assert a == b  # exact-match metrics stay format-insensitive

    def test_parse_error_reports_line_and_column(self):
        from repro.sqldb.errors import ParseError

        with pytest.raises(ParseError) as err:
            parse_select("SELECT name\nFROM emp\nWHERE salary >")
        assert "line 3" in str(err.value)
        assert err.value.line == 3


class TestRankingIntegration:
    class _Fake:
        def __init__(self, confidence):
            self.confidence = confidence

    def test_apply_static_analysis_prunes_and_penalizes(self):
        from repro.core.ranking import apply_static_analysis
        from repro.sqldb.analyzer import AnalysisResult

        bad = self._Fake(0.9)
        warned = self._Fake(0.8)
        clean = self._Fake(0.75)
        uncompiled = self._Fake(0.1)
        verdicts = {
            id(bad): AnalysisResult((Diagnostic("SQL211", "error", "x"),)),
            id(warned): AnalysisResult((Diagnostic("SQL301", "warning", "x"),)),
            id(clean): AnalysisResult(()),
            id(uncompiled): None,
        }
        ranked = apply_static_analysis(
            [bad, warned, clean, uncompiled], lambda i: verdicts[id(i)]
        )
        assert bad not in ranked
        assert ranked[0] is clean  # warned sank below clean despite higher prior
        assert warned.confidence == pytest.approx(0.8 * 0.9)
        assert ranked[-1] is uncompiled  # kept: nothing to analyze

    def test_summary_counts_static_rejections(self):
        from repro.bench.metrics import ExampleOutcome, summarize

        outcomes = [
            ExampleOutcome("q1", "g", "p", True, False, False, static_rejected=True),
            ExampleOutcome("q2", "g", "p", True, True, True),
        ]
        assert summarize(outcomes).static_rejections == 1


class TestCliLint:
    def test_lint_reports_error_with_span(self, capsys):
        code = cli_main(["sql", "SELECT name FROM nowhere", "--domain", "retail", "--lint"])
        out = capsys.readouterr().out
        assert code == 1
        assert "SQL210" in out and "[error" in out
        assert "1 error(s)" in out

    def test_lint_clean_statement(self, capsys):
        code = cli_main(["sql", "SELECT 1", "--domain", "retail", "--lint"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no diagnostics" in out
