"""Shared fixtures: small, hand-checked databases used across the suite."""

from __future__ import annotations

import pytest

from repro.core import NLIDBContext
from repro.sqldb import Column, Database, DataType, TableSchema


@pytest.fixture
def emp_db() -> Database:
    """Two-table employees/departments database with known contents."""
    db = Database("empdb")
    db.create_table(
        TableSchema(
            "emp",
            [
                Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                Column("name", DataType.TEXT),
                Column("dept_id", DataType.INTEGER),
                Column("salary", DataType.FLOAT, synonyms=("pay", "wage")),
                Column("hired", DataType.DATE),
            ],
            synonyms=("employee", "worker"),
        )
    )
    db.create_table(
        TableSchema(
            "dept",
            [
                Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                Column("dname", DataType.TEXT, synonyms=("department",)),
                Column("budget", DataType.FLOAT),
            ],
            synonyms=("department",),
        )
    )
    db.add_foreign_key("emp", "dept_id", "dept", "id")
    db.insert_many(
        "emp",
        [
            [1, "Ada", 1, 120.0, "2019-01-02"],
            [2, "Bob", 1, 90.0, "2020-05-10"],
            [3, "Cyd", 2, 150.0, "2018-03-04"],
            [4, "Dee", 2, None, "2021-07-21"],
            [5, "Eli", None, 60.0, "2022-02-14"],
        ],
    )
    db.insert_many("dept", [[1, "Engineering", 1000.0], [2, "Sales", 500.0]])
    return db


@pytest.fixture
def shop_db() -> Database:
    """Three-entity shop database with a junction table."""
    db = Database("shop")
    db.create_table(
        TableSchema(
            "customers",
            [
                Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                Column("name", DataType.TEXT),
                Column("city", DataType.TEXT),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "orders",
            [
                Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                Column("customer_id", DataType.INTEGER),
                Column("order_date", DataType.DATE),
                Column("total", DataType.FLOAT, synonyms=("amount",)),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "products",
            [
                Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                Column("pname", DataType.TEXT),
                Column("price", DataType.FLOAT),
            ],
        )
    )
    db.create_table(
        TableSchema(
            "order_items",
            [
                Column("order_id", DataType.INTEGER),
                Column("product_id", DataType.INTEGER),
                Column("qty", DataType.INTEGER),
            ],
        )
    )
    db.add_foreign_key("orders", "customer_id", "customers", "id")
    db.add_foreign_key("order_items", "order_id", "orders", "id")
    db.add_foreign_key("order_items", "product_id", "products", "id")
    db.insert_many(
        "customers",
        [[1, "Ada", "Berlin"], [2, "Bob", "Paris"], [3, "Cyd", "Berlin"]],
    )
    db.insert_many(
        "orders",
        [
            [1, 1, "2023-01-05", 50.0],
            [2, 1, "2023-02-11", 70.0],
            [3, 2, "2023-03-20", 20.0],
        ],
    )
    db.insert_many(
        "products", [[1, "Widget", 10.0], [2, "Gadget", 25.0], [3, "Gizmo", 5.0]]
    )
    db.insert_many("order_items", [[1, 1, 2], [1, 2, 1], [2, 3, 4], [3, 1, 1]])
    return db


@pytest.fixture
def emp_ctx(emp_db) -> NLIDBContext:
    """Interpretation context over the employees database."""
    return NLIDBContext(emp_db)


@pytest.fixture
def shop_ctx(shop_db) -> NLIDBContext:
    """Interpretation context over the shop database."""
    return NLIDBContext(shop_db)
