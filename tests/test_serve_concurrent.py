"""Concurrency battery for the serving front (repro.serve.concurrent).

Proves the PR-8 contract:

- the :class:`CircuitBreaker` is thread-safe — hammered from 16 threads
  its failure count never exceeds the threshold and at most one
  half-open probe is ever admitted;
- fault injection is replayable under concurrency — per-request child
  seeds make the fault sequence a function of the request id alone;
- the concurrent front is **byte-identical** to the serial
  :class:`ResilientService` baseline at pool sizes 1/4/16, with and
  without a fault plan;
- admission control is conservative — the queue bound is never
  exceeded, rejections carry typed verdicts, and no request is ever
  silently dropped (hypothesis-driven interleavings);
- preemptive stage guards cancel a blown deadline mid-request;
- the serve-layer answer cache returns exactly what recomputation
  would, and is bypassed whenever faults are active.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.systems  # noqa: F401  (imported to populate the registry)
from repro.bench.workloads import WorkloadGenerator
from repro.perf.parallel import ContextSpec
from repro.perf.profiler import profile_stage
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    VERDICT_ANSWERED,
    VERDICT_CANCELLED,
    VERDICT_DEADLINE,
    VERDICT_FAILED,
    VERDICT_OVERLOAD,
    AnswerCache,
    CircuitBreaker,
    ConcurrentFront,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    NoopInjector,
    RequestCancelled,
    ResilientService,
    ServeResult,
    StageGuard,
    child_seed,
    latency_percentiles,
    replay_serial,
)
from repro.sqldb.relation import Relation

SPEC = ContextSpec("university", seed=3)
FAULT_PLAN = FaultPlan.parse(
    "*:error:0.15,*:latency:0.15:0.0005,*:corrupt:0.1", seed=11
)
PLANS = {"clean": None, "faults": FAULT_PLAN}
BIG = 10**9  # failure threshold that never trips (identity runs)


def _no_sleep(seconds: float) -> None:
    return None


def project(result: ServeResult):
    """Canonical comparison form: everything except wall-clock noise and
    cache provenance (a cached answer must *equal* a computed one)."""
    return (
        result.question,
        result.ok,
        result.verdict,
        result.system,
        result.sql,
        tuple(result.answer.columns) if result.answer is not None else None,
        tuple(map(tuple, result.answer.rows)) if result.answer is not None else None,
        tuple(result.degraded_from),
        result.retries,
        tuple((e.stage, e.kind, e.detail) for e in result.fault_trace),
    )


def make_front(pool_size: int, plan: FaultPlan | None, **kwargs) -> ConcurrentFront:
    kwargs.setdefault("failure_threshold", BIG)
    kwargs.setdefault("backoff_s", 0.0)
    kwargs.setdefault("sleep", _no_sleep)
    return ConcurrentFront(
        SPEC.build,
        pool_size=pool_size,
        fault_plan=plan,
        fault_sleep=_no_sleep,
        **kwargs,
    )


@pytest.fixture(scope="module")
def uni_questions():
    ctx = SPEC.build()
    questions = [
        e.question
        for e in WorkloadGenerator(ctx.database, seed=3).generate_mixed(2)
    ]
    return questions * 2  # duplicates exercise the answer cache


@pytest.fixture(scope="module")
def serial_baselines(uni_questions):
    """Per-plan serial reference projections (the identity ground truth)."""
    out = {}
    for key, plan in PLANS.items():
        service = ResilientService(
            SPEC.build(), failure_threshold=BIG, backoff_s=0.0, sleep=_no_sleep
        )
        results = replay_serial(
            service, uni_questions, "athena", plan, fault_sleep=_no_sleep
        )
        out[key] = [project(r) for r in results]
    return out


# ---------------------------------------------------------------------------
# Scripted services (no interpretation pipeline — admission tests must be fast)
# ---------------------------------------------------------------------------


class EchoService:
    """Instant deterministic answers; counts concurrent callers."""

    def __init__(self, breakers, delay_s: float = 0.0):
        self.breakers = breakers
        self.delay_s = delay_s
        self._lock = threading.Lock()
        self.inflight = 0
        self.max_inflight = 0

    def ask(self, question, system=None, *, injector=None, request_id=None):
        with self._lock:
            self.inflight += 1
            self.max_inflight = max(self.max_inflight, self.inflight)
        try:
            if self.delay_s:
                time.sleep(self.delay_s)
            return ServeResult(
                question=question,
                requested_system=system or "echo",
                ok=True,
                system="echo",
                answer=Relation(["echo"], [(question,)]),
                verdict=VERDICT_ANSWERED,
            )
        finally:
            with self._lock:
                self.inflight -= 1


class BlockingService:
    """Holds every request until released (fills the pool on demand)."""

    def __init__(self, breakers):
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)

    def ask(self, question, system=None, *, injector=None, request_id=None):
        self.entered.release()
        self.release.wait(timeout=30)
        return ServeResult(
            question=question,
            requested_system=system or "blocking",
            ok=True,
            verdict=VERDICT_ANSWERED,
        )


class StagedSlowService:
    """Sleeps through many instrumented stage boundaries — cancellable."""

    def __init__(self, breakers, step_s: float = 0.005, steps: int = 100):
        self.step_s = step_s
        self.steps = steps

    def ask(self, question, system=None, *, injector=None, request_id=None):
        for _ in range(self.steps):
            with profile_stage("execute"):
                time.sleep(self.step_s)
        return ServeResult(
            question=question,
            requested_system=system or "slow",
            ok=True,
            verdict=VERDICT_ANSWERED,
        )


class FaultyService:
    """Raises on every call (worker containment test)."""

    def __init__(self, breakers):
        self.calls = 0

    def ask(self, question, system=None, *, injector=None, request_id=None):
        self.calls += 1
        raise RuntimeError("scripted service bug")


# ---------------------------------------------------------------------------
# CircuitBreaker thread-safety
# ---------------------------------------------------------------------------


def _hammer(breaker: CircuitBreaker, threads: int, iterations: int) -> None:
    barrier = threading.Barrier(threads)

    def worker():
        barrier.wait()
        for _ in range(iterations):
            if breaker.allow():
                breaker.record_failure()

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()


class TestCircuitBreakerThreadSafety:
    def test_hammered_failure_count_never_exceeds_threshold(self):
        breaker = CircuitBreaker(failure_threshold=5, recovery_s=1e9)
        _hammer(breaker, threads=16, iterations=200)
        assert breaker.state == OPEN
        # the increment and the trip are one locked step, so admitted
        # stragglers land while open and are not counted: zero overshoot
        assert breaker.failures <= 5

    def test_hammered_repeatedly_stays_within_bound(self):
        for round_ in range(5):
            breaker = CircuitBreaker(failure_threshold=3, recovery_s=1e9)
            _hammer(breaker, threads=16, iterations=50)
            assert breaker.failures <= 3, f"overshoot in round {round_}"

    def test_half_open_admits_exactly_one_probe_under_contention(self):
        clock_now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_s=5.0, clock=lambda: clock_now[0]
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock_now[0] = 6.0
        admitted = []
        barrier = threading.Barrier(16)

        def probe():
            barrier.wait()
            if breaker.allow():
                admitted.append(threading.get_ident())

        pool = [threading.Thread(target=probe) for _ in range(16)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len(admitted) == 1
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes_probe_failure_reopens(self):
        clock_now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_s=5.0, clock=lambda: clock_now[0]
        )
        breaker.record_failure()
        clock_now[0] = 6.0
        assert breaker.allow() and not breaker.allow()  # single probe
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.record_failure()  # trips again (threshold 1)
        clock_now[0] = 12.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == OPEN and not breaker.allow()

    def test_straggler_failures_while_open_are_not_counted(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_s=1e9)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN and breaker.failures == 3
        for _ in range(10):  # admitted-before-trip stragglers reporting in
            breaker.record_failure()
        assert breaker.failures == 3

    def test_mixed_concurrent_traffic_state_always_valid(self):
        breaker = CircuitBreaker(failure_threshold=4, recovery_s=0.0)
        barrier = threading.Barrier(12)

        def worker(succeeds: bool):
            barrier.wait()
            for _ in range(100):
                if breaker.allow():
                    if succeeds:
                        breaker.record_success()
                    else:
                        breaker.record_failure()
                snap = breaker.snapshot()
                assert snap["state"] in (CLOSED, OPEN, HALF_OPEN)
                assert 0 <= snap["failures"] <= 4

        pool = [threading.Thread(target=worker, args=(i % 2 == 0,)) for i in range(12)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

    def test_snapshot_reports_tuning_and_state(self):
        breaker = CircuitBreaker(failure_threshold=7, recovery_s=2.5)
        snap = breaker.snapshot()
        assert snap == {
            "state": CLOSED,
            "failures": 0,
            "failure_threshold": 7,
            "recovery_s": 2.5,
        }


# ---------------------------------------------------------------------------
# Per-request fault seeding
# ---------------------------------------------------------------------------


class TestChildSeeding:
    def test_child_seed_is_deterministic(self):
        assert child_seed(11, 42) == child_seed(11, 42)

    def test_child_seed_varies_with_request_id_and_seed(self):
        seeds = {child_seed(11, rid) for rid in range(100)}
        assert len(seeds) == 100
        assert child_seed(11, 0) != child_seed(12, 0)

    def _fault_trace(self, injector: FaultInjector, draws: int = 30):
        outcomes = []
        for _ in range(draws):
            try:
                injector.on_stage("execute")
                outcomes.append("pass")
            except FaultInjected:
                outcomes.append("fault")
        return outcomes

    def test_for_request_replays_identically(self):
        plan = FaultPlan.parse("execute:error:0.4", seed=9)
        first = self._fault_trace(FaultInjector(plan).for_request(5))
        second = self._fault_trace(FaultInjector(plan).for_request(5))
        assert first == second
        assert "fault" in first and "pass" in first

    def test_for_request_is_independent_of_sibling_execution_order(self):
        plan = FaultPlan.parse("execute:error:0.4", seed=9)
        serial = {
            rid: self._fault_trace(FaultInjector(plan).for_request(rid))
            for rid in range(8)
        }
        template = FaultInjector(plan)
        shuffled_order = [3, 7, 0, 5, 1, 6, 2, 4]
        for rid in shuffled_order:
            assert self._fault_trace(template.for_request(rid)) == serial[rid]

    def test_for_request_children_differ_from_each_other(self):
        plan = FaultPlan.parse("execute:error:0.5", seed=9)
        traces = {
            tuple(self._fault_trace(FaultInjector(plan).for_request(rid)))
            for rid in range(10)
        }
        assert len(traces) > 1

    def test_noop_children_are_noops(self):
        child = NoopInjector().for_request(3)
        assert isinstance(child, NoopInjector)
        child.on_stage("execute")  # must not raise
        assert child.drain_events() == []

    def test_concurrent_fault_run_is_replayable(self, uni_questions):
        def run():
            with make_front(4, FAULT_PLAN, cache_answers=False) as front:
                results, _ = front.serve_many(uni_questions, "athena")
            return [project(r) for r in results]

        assert run() == run()


# ---------------------------------------------------------------------------
# Concurrent-vs-serial byte identity
# ---------------------------------------------------------------------------


class TestConcurrentByteIdentity:
    @pytest.mark.parametrize("pool_size", [1, 4, 16])
    @pytest.mark.parametrize("plan_key", ["clean", "faults"])
    def test_pool_matches_serial_baseline(
        self, pool_size, plan_key, uni_questions, serial_baselines
    ):
        with make_front(pool_size, PLANS[plan_key]) as front:
            results, summary = front.serve_many(uni_questions, "athena")
        assert [project(r) for r in results] == serial_baselines[plan_key]
        assert summary.total == len(uni_questions)
        assert summary.rejected == 0  # blocking submits: backpressure, not drops

    def test_identity_with_shared_interpretation_cache(
        self, uni_questions, serial_baselines
    ):
        with make_front(4, None, share_interpretations=True) as front:
            results, _ = front.serve_many(uni_questions, "athena")
        assert [project(r) for r in results] == serial_baselines["clean"]

    def test_identity_with_default_chain_head(self, uni_questions):
        service = ResilientService(
            SPEC.build(), failure_threshold=BIG, backoff_s=0.0, sleep=_no_sleep
        )
        baseline = [project(r) for r in replay_serial(service, uni_questions)]
        with make_front(4, None) as front:
            results, _ = front.serve_many(uni_questions)
        assert [project(r) for r in results] == baseline

    def test_answer_cache_hits_match_computation(self, uni_questions):
        with make_front(4, None) as front:
            results, summary = front.serve_many(uni_questions, "athena")
            counters = dict(front.counters)
        assert counters["cache_hits"] > 0, "duplicated workload must hit the cache"
        assert summary.cached == counters["cache_hits"]
        by_question = {}
        for result in results:
            by_question.setdefault(result.question, []).append(project(result))
        for question, projections in by_question.items():
            assert len(set(projections)) == 1, f"cache diverged on {question!r}"


# ---------------------------------------------------------------------------
# Admission control (hypothesis-driven interleavings)
# ---------------------------------------------------------------------------


TYPED_VERDICTS = {
    VERDICT_ANSWERED,
    "degraded",
    VERDICT_FAILED,
    VERDICT_OVERLOAD,
    VERDICT_DEADLINE,
    VERDICT_CANCELLED,
}


class TestAdmissionControl:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_requests=st.integers(min_value=1, max_value=32),
        pool_size=st.integers(min_value=1, max_value=4),
        queue_depth=st.integers(min_value=1, max_value=8),
        delay_ms=st.sampled_from([0.0, 0.5, 2.0]),
    )
    def test_no_request_is_silently_dropped(
        self, n_requests, pool_size, queue_depth, delay_ms
    ):
        front = ConcurrentFront(
            service_factory=lambda breakers: EchoService(
                breakers, delay_s=delay_ms / 1000.0
            ),
            pool_size=pool_size,
            queue_depth=queue_depth,
            cache_answers=False,
        )
        with front:
            tickets = [front.submit(f"q{i}") for i in range(n_requests)]
            results = [t.wait(timeout=30) for t in tickets]
        # conservation: every submission resolves, with a typed verdict
        assert len(results) == n_requests
        assert all(r.verdict in TYPED_VERDICTS for r in results)
        counters = front.counters
        assert counters["submitted"] == n_requests
        assert (
            counters["completed"] + counters["rejected_overload"]
            + counters["rejected_deadline"] == n_requests
        )
        # rejections are exactly the non-ok, rejected-verdict results
        rejected = [r for r in results if r.verdict == VERDICT_OVERLOAD]
        assert counters["rejected_overload"] == len(rejected)
        assert all(not r.ok for r in rejected)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        pool_size=st.integers(min_value=1, max_value=4),
        queue_depth=st.integers(min_value=1, max_value=6),
    )
    def test_pool_bound_is_never_exceeded(self, pool_size, queue_depth):
        service_holder = {}

        def factory(breakers):
            # one shared service so max_inflight aggregates across workers
            service = service_holder.setdefault(
                "service", EchoService(breakers, delay_s=0.002)
            )
            return service

        front = ConcurrentFront(
            service_factory=factory,
            pool_size=pool_size,
            queue_depth=queue_depth,
            cache_answers=False,
        )
        with front:
            tickets = [front.submit(f"q{i}", block=True) for i in range(24)]
            for t in tickets:
                t.wait(timeout=30)
        assert service_holder["service"].max_inflight <= pool_size

    def test_overload_rejection_is_typed_and_immediate(self):
        holder = {}

        def factory(breakers):
            return holder.setdefault("service", BlockingService(breakers))

        front = ConcurrentFront(
            service_factory=factory,
            pool_size=1,
            queue_depth=1,
            cache_answers=False,
        )
        with front:
            first = front.submit("held")  # occupies the worker...
            assert holder["service"].entered.acquire(timeout=5)  # ...for sure
            second = front.submit("queued")  # fills the queue
            third = front.submit("rejected")  # no room: typed rejection
            assert third.done, "overload rejection must resolve synchronously"
            result = third.wait(timeout=1)
            assert result.verdict == VERDICT_OVERLOAD and not result.ok
            assert result.rejected
            assert any(e.stage == "admission" for e in result.fault_trace)
            # release the held requests so stop() drains cleanly
            holder["service"].release.set()
            assert first.wait(timeout=30).ok and second.wait(timeout=30).ok

    def test_blocking_submit_applies_backpressure_not_rejection(self):
        front = ConcurrentFront(
            service_factory=lambda breakers: EchoService(breakers, delay_s=0.001),
            pool_size=2,
            queue_depth=2,
            cache_answers=False,
        )
        with front:
            tickets = [front.submit(f"q{i}", block=True) for i in range(16)]
            results = [t.wait(timeout=30) for t in tickets]
        assert all(r.ok for r in results)
        assert front.counters["rejected_overload"] == 0

    def test_queued_past_deadline_is_rejected_unrun(self):
        holder = {}

        def factory(breakers):
            return holder.setdefault("service", BlockingService(breakers))

        front = ConcurrentFront(
            service_factory=factory,
            pool_size=1,
            queue_depth=4,
            deadline_s=0.05,
            cache_answers=False,
        )
        with front:
            held = front.submit("held")
            assert holder["service"].entered.acquire(timeout=5)
            queued = [front.submit(f"queued{i}") for i in range(3)]
            time.sleep(0.15)  # let every queued deadline lapse
            holder["service"].release.set()
            held_result = held.wait(timeout=30)
            queued_results = [t.wait(timeout=30) for t in queued]
        assert {r.verdict for r in queued_results} == {VERDICT_DEADLINE}
        assert all(r.rejected and not r.ok for r in queued_results)
        assert held_result.verdict in (VERDICT_ANSWERED, VERDICT_CANCELLED)
        assert front.counters["rejected_deadline"] == 3

    def test_submit_requires_running_front(self):
        front = ConcurrentFront(
            service_factory=EchoService, pool_size=1, cache_answers=False
        )
        with pytest.raises(RuntimeError):
            front.submit("too early")
        front.start()
        front.stop()
        with pytest.raises(RuntimeError):
            front.submit("too late")

    def test_stop_drains_submitted_requests(self):
        front = ConcurrentFront(
            service_factory=lambda breakers: EchoService(breakers, delay_s=0.002),
            pool_size=2,
            queue_depth=16,
            cache_answers=False,
        )
        front.start()
        tickets = [front.submit(f"q{i}", block=True) for i in range(10)]
        front.stop()  # must not abandon queued tickets
        results = [t.wait(timeout=1) for t in tickets]
        assert all(r.ok for r in results)


# ---------------------------------------------------------------------------
# Preemptive stage guards
# ---------------------------------------------------------------------------


class TestStageGuard:
    def test_hook_passes_while_live_raises_after_cancel(self):
        guard = StageGuard()
        guard.hook("execute")  # live: no-op
        guard.cancel("operator said so")
        with pytest.raises(RequestCancelled) as err:
            guard.hook("rank")
        assert err.value.stage == "rank"
        assert "operator said so" in err.value.reason

    def test_first_cancellation_reason_wins(self):
        guard = StageGuard()
        guard.cancel("first")
        guard.cancel("second")
        assert guard.cancelled == "first"

    def test_hook_self_checks_deadline(self):
        clock_now = [0.0]
        guard = StageGuard(deadline=1.0, clock=lambda: clock_now[0])
        guard.hook("parse")
        clock_now[0] = 2.0
        assert guard.expired()
        with pytest.raises(RequestCancelled):
            guard.hook("match")

    def test_guard_cancels_request_mid_flight(self):
        front = ConcurrentFront(
            service_factory=lambda breakers: StagedSlowService(breakers, 0.005, 200),
            pool_size=1,
            deadline_s=0.05,
            cache_answers=False,
        )
        started = time.monotonic()
        with front:
            result = front.ask("slow question")
        elapsed = time.monotonic() - started
        assert result.verdict == VERDICT_CANCELLED and not result.ok
        assert front.counters["cancelled"] == 1
        # preemption point: nowhere near the 1s the full run would take
        assert elapsed < 0.8

    def test_resilient_service_converts_cancellation_to_verdict(self):
        # a latency fault stretches the attempt past the request deadline;
        # the guard fires at the next boundary and the chain is abandoned
        plan = FaultPlan.parse("*:latency:1.0:0.03", seed=1)
        front = ConcurrentFront(
            SPEC.build,
            pool_size=1,
            deadline_s=0.05,
            fault_plan=plan,
            cache_answers=False,
            retries=0,
            backoff_s=0.0,
            sleep=_no_sleep,
        )
        with front:
            result = front.ask(
                "which instructors have salary above the average salary", "athena"
            )
        assert result.verdict == VERDICT_CANCELLED
        assert result.degraded_from, "the cancelled system must be recorded"
        assert any(e.kind == "cancelled" for e in result.fault_trace)


# ---------------------------------------------------------------------------
# Serve-layer answer cache
# ---------------------------------------------------------------------------


class TestAnswerCache:
    def _answered(self, **overrides) -> ServeResult:
        base = dict(
            question="salary of Ada",
            requested_system="athena",
            ok=True,
            system="athena",
            answer=Relation(["salary"], [(120.0,)]),
            sql="SELECT salary FROM emp",
            explanation="the salary of Ada",
            verdict=VERDICT_ANSWERED,
        )
        base.update(overrides)
        return ServeResult(**base)

    def test_roundtrip_reconstructs_everything(self):
        cache = AnswerCache()
        cache.put("salary of Ada", 7, self._answered(), "athena")
        hit = cache.get("salary of Ada", 7, "athena")
        assert hit is not None and hit.cached
        assert project(hit) == project(self._answered())

    def test_normalized_question_keys_alias(self):
        cache = AnswerCache()
        cache.put("salary of Ada", 7, self._answered(), "athena")
        assert cache.get("  salary   of Ada ", 7, "athena") is not None

    def test_data_version_invalidates(self):
        cache = AnswerCache()
        cache.put("salary of Ada", 7, self._answered(), "athena")
        assert cache.get("salary of Ada", 8, "athena") is None

    def test_requested_system_slots_do_not_alias(self):
        cache = AnswerCache()
        cache.put("salary of Ada", 7, self._answered(), "athena")
        assert cache.get("salary of Ada", 7, "soda") is None
        assert cache.get("salary of Ada", 7, None) is None

    def test_only_clean_deterministic_results_are_cacheable(self):
        from repro.serve import FaultEvent

        assert AnswerCache.cacheable(self._answered())
        degraded = self._answered(degraded_from=[("athena", "no interpretation")])
        assert AnswerCache.cacheable(degraded)  # deterministic degradation
        assert not AnswerCache.cacheable(self._answered(ok=False, answer=None))
        assert not AnswerCache.cacheable(self._answered(retries=1))
        faulted = self._answered(
            fault_trace=[FaultEvent("execute", "latency", "slept")]
        )
        assert not AnswerCache.cacheable(faulted)

    def test_cached_entries_are_isolated_from_caller_mutation(self):
        cache = AnswerCache()
        cache.put("salary of Ada", 7, self._answered(), "athena")
        hit = cache.get("salary of Ada", 7, "athena")
        hit.answer.rows.append(("poison",))
        hit.degraded_from.append(("x", "y"))
        again = cache.get("salary of Ada", 7, "athena")
        assert again.answer.rows == [(120.0,)]
        assert again.degraded_from == []

    def test_front_bypasses_cache_under_fault_plan(self, uni_questions):
        with make_front(4, FAULT_PLAN) as front:
            front.serve_many(uni_questions, "athena")
            counters = dict(front.counters)
        assert counters["cache_hits"] == 0

    def test_concurrent_put_get_hammer(self):
        cache = AnswerCache(maxsize=64)
        errors = []

        def worker(worker_id: int):
            try:
                for i in range(200):
                    question = f"q{(worker_id + i) % 40}"
                    cache.put(question, 1, self._answered(question=question), "athena")
                    hit = cache.get(question, 1, "athena")
                    if hit is not None:
                        assert hit.question == question
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        pool = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert errors == []


# ---------------------------------------------------------------------------
# Front lifecycle, health, reporting
# ---------------------------------------------------------------------------


class TestFrontLifecycle:
    def test_requires_exactly_one_factory(self):
        with pytest.raises(ValueError):
            ConcurrentFront()
        with pytest.raises(ValueError):
            ConcurrentFront(SPEC.build, service_factory=EchoService)

    def test_validates_pool_and_queue(self):
        with pytest.raises(ValueError):
            ConcurrentFront(SPEC.build, pool_size=0)
        with pytest.raises(ValueError):
            ConcurrentFront(SPEC.build, queue_depth=0)

    def test_double_start_raises_stop_is_idempotent(self):
        front = ConcurrentFront(
            service_factory=EchoService, pool_size=1, cache_answers=False
        )
        front.start()
        with pytest.raises(RuntimeError):
            front.start()
        front.stop()
        front.stop()  # idempotent
        assert front.started and not front.running

    def test_results_come_back_in_input_order(self):
        def factory(breakers):
            # later requests finish *sooner*: order must still hold
            class Skewed(EchoService):
                def ask(self, question, system=None, *, injector=None, request_id=None):
                    time.sleep(0.02 / (1 + (request_id or 0)))
                    return super().ask(
                        question, system, injector=injector, request_id=request_id
                    )

            return Skewed(breakers)

        front = ConcurrentFront(
            service_factory=factory, pool_size=4, cache_answers=False
        )
        questions = [f"q{i}" for i in range(12)]
        with front:
            results, _ = front.serve_many(questions)
        assert [r.question for r in results] == questions
        assert [r.request_id for r in results] == list(range(12))

    def test_worker_survives_service_exceptions(self):
        holder = {}

        def factory(breakers):
            return holder.setdefault("service", FaultyService(breakers))

        front = ConcurrentFront(
            service_factory=factory, pool_size=1, cache_answers=False
        )
        with front:
            first = front.ask("boom")
            second = front.ask("boom again")
        assert first.verdict == VERDICT_FAILED and not first.ok
        assert second.verdict == VERDICT_FAILED
        assert holder["service"].calls == 2, "the worker must keep serving"
        assert front.counters["worker_errors"] == 2

    def test_healthz_shape_and_status(self):
        front = ConcurrentFront(
            service_factory=EchoService,
            pool_size=2,
            queue_depth=5,
            deadline_s=1.5,
            cache_answers=False,
        )
        with front:
            front.ask("hello")
            health = front.healthz()
        assert health["status"] == "ok"
        assert health["pool_size"] == 2
        assert health["queue"]["capacity"] == 5
        assert health["deadline_s"] == 1.5
        assert health["counters"]["completed"] == 1
        assert front.healthz()["status"] == "stopped"

    def test_healthz_reports_open_breakers_as_degraded(self):
        front = ConcurrentFront(
            service_factory=EchoService, pool_size=1, cache_answers=False
        )
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=1e9)
        breaker.record_failure()
        front.breakers["athena"] = breaker
        with front:
            health = front.healthz()
        assert health["status"] == "degraded"
        assert health["breakers"]["athena"]["state"] == OPEN

    def test_shared_breakers_across_workers(self, uni_questions):
        plan = FaultPlan.parse("*:error:1.0", seed=2)
        with make_front(
            4, plan, failure_threshold=3, retries=0, cache_answers=False
        ) as front:
            front.serve_many(uni_questions[:8], "athena")
            snapshots = {n: b.snapshot() for n, b in front.breakers.items()}
        # every system in the chain failed everywhere: with the registry
        # shared, each breaker tripped once for the whole pool
        assert snapshots, "breakers must exist in the shared registry"
        for name, snap in snapshots.items():
            assert snap["state"] == OPEN, name
            assert snap["failures"] <= 3, name


class TestLatencyPercentiles:
    def test_empty_results(self):
        assert latency_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_nearest_rank_on_known_distribution(self):
        results = [
            ServeResult(question="q", requested_system="x", elapsed_s=ms / 1000.0)
            for ms in range(1, 101)
        ]
        pct = latency_percentiles(results)
        assert pct["p50"] == pytest.approx(0.050)
        assert pct["p95"] == pytest.approx(0.095)
        assert pct["p99"] == pytest.approx(0.099)

    def test_queue_time_counts_toward_latency(self):
        result = ServeResult(
            question="q", requested_system="x", elapsed_s=0.01, queued_s=0.09
        )
        assert latency_percentiles([result])["p50"] == pytest.approx(0.1)
