"""Tests for the benchmark substrate: workloads, paraphrase, datasets,
metrics, harness, query logs."""

import pytest

from repro.bench import (
    Paraphraser,
    SparcGenerator,
    WikiSQLGenerator,
    WorkloadGenerator,
    benchmark_statistics,
    build_domain,
    build_spider_like,
    component_f1,
    compare_systems,
    evaluate_system,
    exact_match,
    execution_match,
    format_table,
    summarize,
    synthesize_log,
)
from repro.bench.cosql import CoSQLGenerator
from repro.bench.metrics import ExampleOutcome, by_tier
from repro.core import NLIDBContext
from repro.core.complexity import ComplexityTier, classify
from repro.sqldb import execute_sql


@pytest.fixture(scope="module")
def hr_db():
    return build_domain("hr")


@pytest.fixture(scope="module")
def hr_ctx(hr_db):
    return NLIDBContext(hr_db)


class TestWorkloadGenerator:
    @pytest.mark.parametrize("tier", list(ComplexityTier))
    def test_examples_match_tier_and_execute(self, hr_db, tier):
        examples = WorkloadGenerator(hr_db, seed=1).generate(tier, 5)
        assert examples
        for example in examples:
            assert classify(example.sql) is tier
            result = execute_sql(hr_db, example.sql)
            assert len(result) > 0

    def test_deterministic(self, hr_db):
        a = WorkloadGenerator(hr_db, seed=9).generate_mixed(3)
        b = WorkloadGenerator(hr_db, seed=9).generate_mixed(3)
        assert [(e.question, e.sql) for e in a] == [(e.question, e.sql) for e in b]

    def test_questions_unique(self, hr_db):
        examples = WorkloadGenerator(hr_db, seed=1).generate_mixed(6)
        questions = [e.question for e in examples]
        assert len(questions) == len(set(questions))

    def test_all_domains_yield_all_tiers(self):
        from repro.bench import domain_names

        for name in domain_names():
            database = build_domain(name)
            generator = WorkloadGenerator(database, seed=2)
            for tier in (ComplexityTier.SELECTION, ComplexityTier.AGGREGATION):
                assert generator.generate(tier, 2), (name, tier)


class TestParaphraser:
    def test_level_zero_is_identity(self):
        p = Paraphraser(seed=1)
        assert p.paraphrase("show the employees", 0) == "show the employees"

    def test_deterministic(self):
        q = "show the employees with salary greater than 100"
        assert Paraphraser(seed=4).paraphrase(q, 2) == Paraphraser(seed=4).paraphrase(q, 2)

    def test_levels_change_surface(self):
        q = "show the employees with salary greater than 100"
        p = Paraphraser(seed=4)
        assert p.paraphrase(q, 2) != q

    def test_gold_sql_untouched(self, hr_db):
        example = WorkloadGenerator(hr_db, seed=1).generate(
            ComplexityTier.SELECTION, 1
        )[0]
        paraphrased = Paraphraser(seed=1).paraphrase_example(example, 3)
        assert paraphrased.sql == example.sql
        assert paraphrased.metadata["paraphrase_level"] == 3

    def test_protected_words_survive(self):
        p = Paraphraser(seed=2)
        out = p.paraphrase("employees not in Berlin", 3)
        assert "not" in out.split()


class TestWikiSQLDataset:
    def test_split_by_table_holds_out_tables(self):
        ds = WikiSQLGenerator(seed=2).generate(80, 30, split="by-table")
        train_tables = {e.table for e in ds.train}
        test_tables = {e.table for e in ds.test}
        assert not train_tables & test_tables

    def test_iid_split_shares_tables(self):
        ds = WikiSQLGenerator(seed=2).generate(80, 30, split="iid")
        assert {e.table for e in ds.train} & {e.table for e in ds.test}

    def test_gold_answerable(self):
        ds = WikiSQLGenerator(seed=2).generate(40, 10)
        from repro.sqldb.executor import Executor

        for example in ds.train:
            result = Executor(ds.database).execute(example.sketch.to_select())
            assert result.rows

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError):
            WikiSQLGenerator(seed=0).generate(5, 5, split="weird")


class TestSparcAndCosql:
    def test_sparc_gold_sql_executes(self, hr_ctx):
        sequences = SparcGenerator(hr_ctx, seed=3).generate(4)
        for sequence in sequences:
            assert len(sequence) >= 2
            for turn in sequence.turns:
                assert len(execute_sql(hr_ctx.database, turn.gold_sql)) > 0

    def test_sparc_first_turn_is_fresh(self, hr_ctx):
        sequences = SparcGenerator(hr_ctx, seed=3).generate(4)
        for sequence in sequences:
            assert sequence.turns[0].move == "new_query"

    def test_cosql_targets_are_genuinely_ambiguous(self, hr_ctx):
        generator = CoSQLGenerator(hr_ctx, seed=5)
        for name, owners in generator.ambiguous_properties():
            assert len(owners) > 1

    def test_cosql_gold_executes(self, hr_ctx):
        for example in CoSQLGenerator(hr_ctx, seed=5).generate(6):
            execute_sql(hr_ctx.database, example.gold_sql)

    def test_cosql_dialogue_shape(self, hr_ctx):
        dialogues = CoSQLGenerator(hr_ctx, seed=5).dialogues(3)
        for dialogue in dialogues:
            assert dialogue.turns[0].startswith("USER:")
            assert dialogue.turns[1].startswith("SYSTEM:")


class TestMetrics:
    def test_execution_match_ignores_order_without_orderby(self, hr_db):
        assert execution_match(
            hr_db,
            "SELECT name FROM employees",
            "SELECT name FROM employees",
        )

    def test_execution_match_order_sensitive_with_orderby(self, hr_db):
        assert not execution_match(
            hr_db,
            "SELECT name FROM employees ORDER BY salary ASC",
            "SELECT name FROM employees ORDER BY salary DESC",
        )

    def test_execution_match_bad_sql_is_miss(self, hr_db):
        assert not execution_match(hr_db, "SELECT nope FROM nowhere", "SELECT 1")

    def test_exact_match_whitespace_insensitive(self):
        assert exact_match("select  a from t", "SELECT a FROM t")
        assert not exact_match("SELECT a FROM t", "SELECT b FROM t")

    def test_component_f1(self):
        full = component_f1(
            "SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 1"
        )
        partial = component_f1("SELECT a FROM t", "SELECT a FROM t WHERE x = 1")
        assert full == 1.0 and 0 < partial < 1.0

    def test_summary_properties(self):
        outcomes = [
            ExampleOutcome("q1", "g", "p", answered=True, correct=True, exact=False),
            ExampleOutcome("q2", "g", "p", answered=True, correct=False, exact=False),
            ExampleOutcome("q3", "g", None, answered=False, correct=False, exact=False),
        ]
        summary = summarize(outcomes)
        assert summary.accuracy == pytest.approx(1 / 3)
        assert summary.precision == pytest.approx(1 / 2)
        assert summary.answer_rate == pytest.approx(2 / 3)
        assert 0 < summary.f1 < 1

    def test_by_tier_buckets(self):
        outcomes = [
            ExampleOutcome("q", "g", "p", True, True, False, tier=ComplexityTier.SELECTION),
            ExampleOutcome("q", "g", "p", True, False, False, tier=ComplexityTier.JOIN),
        ]
        buckets = by_tier(outcomes)
        assert set(buckets) == {ComplexityTier.SELECTION, ComplexityTier.JOIN}


class TestHarness:
    def test_evaluate_system_counts(self, hr_ctx):
        from repro.systems import AthenaSystem

        examples = WorkloadGenerator(hr_ctx.database, seed=1).generate(
            ComplexityTier.SELECTION, 3
        )
        outcomes = evaluate_system(AthenaSystem(), hr_ctx, examples)
        assert len(outcomes) == 3
        assert all(o.predicted_sql for o in outcomes)

    def test_compare_systems_rows(self, hr_ctx):
        from repro.systems import SodaSystem

        examples = WorkloadGenerator(hr_ctx.database, seed=1).generate(
            ComplexityTier.SELECTION, 3
        )
        rows = compare_systems([SodaSystem()], hr_ctx, examples)
        assert any(r.scope == "all" for r in rows)

    def test_format_table_alignment(self):
        text = format_table(
            [{"a": 1, "bee": "xx"}, {"a": 222, "bee": "y"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(l) for l in lines[1:])) == 1  # aligned


class TestQueryLogAndDatasets:
    def test_synthesize_log_parses(self, hr_db):
        from repro.systems import QueryLog

        entries = synthesize_log(hr_db, 30, seed=1)
        assert len(entries) == 30
        log = QueryLog()
        assert log.extend(entries) == 30

    def test_spider_like_stats(self):
        dataset = build_spider_like(seed=0, per_tier=2, domains=["hr", "geo"])
        stats = dataset.stats()
        assert stats["databases"] == 2
        assert stats["questions"] > 0

    def test_benchmark_statistics_rows(self):
        rows = benchmark_statistics(seed=0)
        assert {r["benchmark"] for r in rows} == {
            "WikiSQL-like", "Spider-like", "SParC-like", "CoSQL-like",
        }
