"""Tests for the QUICK and Précis systems."""

import pytest

from repro.bench.domains import build_domain
from repro.core import NLIDBContext, ScriptedUser, SimulatedOracle
from repro.systems.precis import DNFClause, PrecisSystem, to_dnf
from repro.systems.quick import QuickSystem


@pytest.fixture(scope="module")
def retail_ctx():
    return NLIDBContext(build_domain("retail"))


@pytest.fixture(scope="module")
def hr_ctx():
    return NLIDBContext(build_domain("hr"))


class TestDNF:
    def test_conjunction(self):
        clauses = to_dnf("berlin corporate")
        assert clauses == [DNFClause(frozenset({"berlin", "corporate"}))]

    def test_disjunction_splits(self):
        clauses = to_dnf("berlin OR paris")
        assert len(clauses) == 2

    def test_negation(self):
        clause = to_dnf("berlin NOT consumer")[0]
        assert clause.positive == {"berlin"}
        assert clause.negative == {"consumer"}

    def test_stopwords_dropped(self):
        clause = to_dnf("the customers in berlin")[0]
        assert "the" not in clause.positive and "in" not in clause.positive

    def test_empty_query(self):
        assert to_dnf("") == []
        assert to_dnf("the of and") == []

    def test_describe(self):
        clause = to_dnf("apple NOT banana")[0]
        assert clause.describe() == "apple AND NOT banana"


class TestPrecis:
    def test_answer_contains_matching_rows(self, retail_ctx):
        answer = PrecisSystem().answer("Berlin", retail_ctx)
        assert answer is not None
        customers = answer.rows.get("customers", [])
        assert customers and all("Berlin" in row for row in customers)

    def test_answer_expands_through_fks(self, retail_ctx):
        answer = PrecisSystem().answer("Berlin", retail_ctx)
        # customers in Berlin pull in their orders (the "essence")
        assert "orders" in answer.rows

    def test_conjunction_narrows(self, retail_ctx):
        broad = PrecisSystem().answer("Berlin", retail_ctx)
        narrow = PrecisSystem().answer("Berlin corporate", retail_ctx)
        if narrow is not None:
            assert len(narrow.rows.get("customers", [])) <= len(
                broad.rows.get("customers", [])
            )

    def test_negation_excludes(self, retail_ctx):
        answer = PrecisSystem().answer("Berlin NOT corporate", retail_ctx)
        if answer is not None:
            for row in answer.rows.get("customers", []):
                assert "corporate" not in row

    def test_disjunction_unions(self, retail_ctx):
        berlin = PrecisSystem().answer("Berlin", retail_ctx)
        both = PrecisSystem().answer("Berlin OR Paris", retail_ctx)
        assert both.row_count() >= berlin.row_count()

    def test_unknown_keyword_returns_none(self, retail_ctx):
        assert PrecisSystem().answer("xyzzy", retail_ctx) is None

    def test_to_text(self, retail_ctx):
        answer = PrecisSystem().answer("Berlin", retail_ctx)
        text = answer.to_text(max_rows=1)
        assert "[customers]" in text


class TestQuick:
    def test_single_candidate_needs_no_interaction(self, retail_ctx):
        system = QuickSystem(user=ScriptedUser([0]))
        system.interpret("customers with city Berlin", retail_ctx)
        # unambiguous question: at most the single interpretation
        assert system.selections_asked <= 1

    def test_user_choice_wins(self, hr_ctx):
        pick_second = QuickSystem(user=ScriptedUser([1]))
        pick_first = QuickSystem(user=ScriptedUser([0]))
        second = pick_second.interpret("what is the budget", hr_ctx)
        first = pick_first.interpret("what is the budget", hr_ctx)
        assert second and first
        sql_second = second[0].to_sql(hr_ctx.ontology, hr_ctx.mapping).to_sql()
        sql_first = first[0].to_sql(hr_ctx.ontology, hr_ctx.mapping).to_sql()
        assert sql_second != sql_first

    def test_oracle_finds_intended_reading(self, hr_ctx):
        oracle = SimulatedOracle(
            lambda payload: 1.0
            if payload is not None
            and "projects" in payload.to_sql(hr_ctx.ontology, hr_ctx.mapping).to_sql()
            else 0.0
        )
        system = QuickSystem(user=oracle)
        interps = system.interpret("what is the budget", hr_ctx)
        sql = interps[0].to_sql(hr_ctx.ontology, hr_ctx.mapping).to_sql()
        assert "projects.budget" in sql

    def test_registered(self):
        from repro.core import create

        assert isinstance(create("quick"), QuickSystem)
