"""Unit tests for the ontology layer: model, builder, reasoner, relaxation."""

import pytest

from repro.ontology import (
    Ontology,
    OntologyError,
    QueryRelaxer,
    Reasoner,
    build_medical_kb,
    build_ontology,
    humanize,
)
from repro.sqldb import DataType


class TestOntologyModel:
    def make(self):
        onto = Ontology("test")
        onto.add_concept("person", synonyms=("human",))
        onto.add_concept("employee", parent="person")
        onto.add_concept("department")
        onto.add_property("person", "name", DataType.TEXT)
        onto.add_property("employee", "salary", DataType.FLOAT, synonyms=("pay",))
        onto.add_relation("works in", "employee", "department", functional=True)
        return onto

    def test_duplicate_concept_rejected(self):
        onto = self.make()
        with pytest.raises(OntologyError):
            onto.add_concept("person")

    def test_missing_parent_rejected(self):
        with pytest.raises(OntologyError):
            Ontology().add_concept("x", parent="ghost")

    def test_find_by_synonym(self):
        onto = self.make()
        assert onto.find_concepts("human")[0].name == "person"
        assert onto.find_properties("pay")[0].name == "salary"

    def test_ancestors_and_is_a(self):
        onto = self.make()
        assert onto.ancestors("employee") == ["person"]
        assert onto.is_a("employee", "person")
        assert not onto.is_a("person", "employee")

    def test_descendants(self):
        onto = self.make()
        assert onto.descendants("person") == ["employee"]

    def test_inherited_properties(self):
        onto = self.make()
        names = [p.name for p in onto.inherited_properties("employee")]
        assert names == ["salary", "name"]

    def test_vocabulary_includes_everything(self):
        vocab = self.make().vocabulary()
        assert {"person", "human", "salary", "pay", "works in"} <= vocab

    def test_graph_connects_relations_and_inheritance(self):
        graph = self.make().graph()
        assert graph.has_edge("employee", "department")
        assert graph.has_edge("employee", "person")


class TestHumanize:
    def test_snake_case_split_and_singular(self):
        assert humanize("order_items") == "order item"

    def test_camel_case(self):
        assert humanize("customerName") == "customer name"

    def test_plural_table(self):
        assert humanize("customers") == "customer"


class TestBuilder:
    def test_tables_become_concepts(self, shop_db):
        # order_items has a payload column (qty), so it stays a concept
        onto, _ = build_ontology(shop_db)
        assert set(onto.concepts) == {"customer", "order", "product", "order item"}

    def test_pure_junction_folded(self):
        from repro.sqldb import Column, Database, DataType, TableSchema

        db = Database("m2m")
        db.create_table(TableSchema("a", [Column("id", DataType.INTEGER, primary_key=True)]))
        db.create_table(TableSchema("b", [Column("id", DataType.INTEGER, primary_key=True)]))
        db.create_table(
            TableSchema(
                "a_b",
                [Column("a_id", DataType.INTEGER), Column("b_id", DataType.INTEGER)],
            )
        )
        db.add_foreign_key("a_b", "a_id", "a", "id")
        db.add_foreign_key("a_b", "b_id", "b", "id")
        onto, mapping = build_ontology(db)
        assert set(onto.concepts) == {"a", "b"}
        assert [r.name for r in onto.relations] == ["a b"]
        chain = mapping.fk_chain_of("a b", "a", "b")
        assert len(chain) == 2

    def test_payload_junction_stays_concept(self, shop_db):
        onto, _ = build_ontology(shop_db)
        item = onto.concept("order item")
        assert "qty" in {p.name for p in item.properties.values()}

    def test_fk_columns_not_properties(self, shop_db):
        onto, _ = build_ontology(shop_db)
        props = {p.name for p in onto.concept("order").properties.values()}
        assert "customer id" not in props
        assert "total" in props

    def test_schema_synonyms_propagate(self, shop_db):
        onto, _ = build_ontology(shop_db)
        prop = onto.concept("order").property("total")
        assert "amount" in prop.synonyms

    def test_mapping_resolves(self, shop_db):
        _, mapping = build_ontology(shop_db)
        assert mapping.table_of("customer") == "customers"
        assert mapping.column_of("order", "total") == ("orders", "total")

    def test_relation_name_from_fk_column(self, emp_db):
        onto, _ = build_ontology(emp_db)
        assert any(r.name == "dept" for r in onto.relations)


class TestReasoner:
    def test_connected(self, shop_ctx):
        reasoner = shop_ctx.reasoner
        assert reasoner.connected("customer", "product")

    def test_relation_path(self, shop_ctx):
        path = shop_ctx.reasoner.relation_path("customer", "product")
        assert [r.name for r in path] == ["customer", "order", "product"]

    def test_steiner_includes_intermediate(self, shop_ctx):
        nodes = shop_ctx.reasoner.steiner_concepts(["customer", "product"])
        assert "order" in nodes

    def test_fk_chain_through_junction(self, shop_ctx):
        chain = shop_ctx.reasoner.fk_chain("customer", "product")
        tables = [fk.src_table for fk in chain] + [chain[-1].dst_table]
        assert tables == ["customers", "orders", "order_items", "products"]

    def test_same_concept_no_path(self, shop_ctx):
        assert shop_ctx.reasoner.relation_path("customer", "customer") == []

    def test_disconnected_raises(self):
        onto = Ontology()
        onto.add_concept("a")
        onto.add_concept("b")
        with pytest.raises(OntologyError):
            Reasoner(onto).relation_path("a", "b")


class TestKnowledgeBase:
    def test_canonicalize_alias(self):
        kb = build_medical_kb()
        assert kb.canonicalize("heart attack") == "myocardial infarction"

    def test_aliases_include_canonical(self):
        kb = build_medical_kb()
        assert "mi" in kb.aliases("myocardial infarction")

    def test_hierarchy(self):
        kb = build_medical_kb()
        assert kb.parent("asthma") == "respiratory disease"
        assert "pneumonia" in kb.children("respiratory disease")
        assert "pneumonia" in kb.siblings("asthma")

    def test_unknown_term(self):
        kb = build_medical_kb()
        assert kb.canonicalize("quantum flu") is None
        assert kb.aliases("quantum flu") == set()


class TestRelaxation:
    def test_canonical_first(self):
        relaxer = QueryRelaxer(build_medical_kb())
        proposals = relaxer.relax("heart attack")
        assert proposals[0].term == "myocardial infarction"
        assert proposals[0].source == "canonical"

    def test_best_match_exact_short_circuit(self):
        relaxer = QueryRelaxer(build_medical_kb())
        match = relaxer.best_match("asthma", ["asthma", "pneumonia"])
        assert match.source == "exact" and match.confidence == 1.0

    def test_best_match_through_kb(self):
        relaxer = QueryRelaxer(build_medical_kb())
        match = relaxer.best_match("high blood pressure", ["hypertension"])
        assert match.term == "hypertension"

    def test_best_match_none(self):
        relaxer = QueryRelaxer(build_medical_kb())
        assert relaxer.best_match("xyzzy", ["hypertension"]) is None

    def test_synonym_fallback_without_kb(self):
        relaxer = QueryRelaxer()
        terms = [p.term for p in relaxer.relax("salary")]
        assert "pay" in terms

    def test_expand_all_keeps_original_first(self):
        relaxer = QueryRelaxer(build_medical_kb())
        expansion = relaxer.expand_all("diabetes")
        assert expansion[0] == "diabetes"
        assert "diabetes mellitus" in expansion
