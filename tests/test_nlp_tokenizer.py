"""Unit tests for tokenization, stopwords and number parsing."""

from repro.nlp import (
    content_words,
    detokenize,
    is_stopword,
    ordinal_to_number,
    parse_number,
    tokenize,
    word_to_number,
    words,
)


class TestTokenize:
    def test_basic_words(self):
        tokens = tokenize("show all employees")
        assert [t.norm for t in tokens] == ["show", "all", "employees"]

    def test_spans_cover_input(self):
        text = "salary > 100"
        tokens = tokenize(text)
        for token in tokens:
            assert text[token.start : token.end].strip('"\'') == token.text

    def test_quoted_phrase_single_token(self):
        tokens = tokenize('customers in "new york"')
        assert tokens[-1].kind == "quoted"
        assert tokens[-1].norm == "new york"

    def test_single_quotes(self):
        tokens = tokenize("city 'San Jose'")
        assert tokens[-1].kind == "quoted" and tokens[-1].text == "San Jose"

    def test_numbers_and_decimals(self):
        tokens = tokenize("rating above 4.5 with 3 reviews")
        nums = [t for t in tokens if t.is_number]
        assert [t.numeric_value for t in nums] == [4.5, 3.0]

    def test_iso_date_token(self):
        tokens = tokenize("hired after 2020-01-15")
        assert tokens[-1].kind == "date"

    def test_punctuation_isolated(self):
        tokens = tokenize("who's there?")
        kinds = [t.kind for t in tokens]
        assert "punct" in kinds

    def test_hyphenated_word_kept(self):
        tokens = tokenize("vice-president")
        assert tokens[0].text == "vice-president"

    def test_words_helper_drops_punct(self):
        assert words("hello, world!") == ["hello", "world"]

    def test_detokenize(self):
        assert detokenize(tokenize("a b c")) == "a b c"

    def test_empty_input(self):
        assert tokenize("") == []


class TestStopwords:
    def test_common_stopwords(self):
        assert is_stopword("the")
        assert is_stopword("of")

    def test_semantic_keepwords_not_stopped(self):
        for word in ("by", "most", "than", "not", "between", "top", "per"):
            assert not is_stopword(word), word

    def test_content_words(self):
        assert content_words(["show", "the", "salary", "by", "dept"]) == [
            "salary",
            "by",
            "dept",
        ]


class TestNumbers:
    def test_word_to_number(self):
        assert word_to_number("five") == 5
        assert word_to_number("ninety") == 90
        assert word_to_number("banana") is None

    def test_ordinals(self):
        assert ordinal_to_number("third") == 3
        assert ordinal_to_number("21st") == 21
        assert ordinal_to_number("word") is None

    def test_parse_number_digits(self):
        assert parse_number("42") == 42.0
        assert parse_number("3.14") == 3.14
        assert parse_number("1,000") == 1000.0

    def test_parse_number_words(self):
        assert parse_number("twenty five") == 25.0
        assert parse_number("one hundred") == 100.0
        assert parse_number("2 million") == 2_000_000.0

    def test_parse_number_rejects_text(self):
        assert parse_number("hello") is None
        assert parse_number("") is None

    def test_compound_ordinals(self):
        assert ordinal_to_number("twenty-first") == 21
        assert ordinal_to_number("thirty-second") == 32
        assert ordinal_to_number("ninety-ninth") == 99
        assert ordinal_to_number("one hundred and first") == 101
        assert ordinal_to_number("twenty-banana") is None

    def test_teen_and_tens_ordinals(self):
        assert ordinal_to_number("thirteenth") == 13
        assert ordinal_to_number("nineteenth") == 19
        assert ordinal_to_number("fortieth") == 40
        assert ordinal_to_number("ninetieth") == 90

    def test_magnitude_suffixes(self):
        assert parse_number("3.5k") == 3500.0
        assert parse_number("2m") == 2_000_000.0
        assert parse_number("1.2bn") == 1_200_000_000.0
        assert parse_number("7b") == 7_000_000_000.0
        assert parse_number("10K") == 10_000.0
        assert parse_number("5kg") is None
