"""Tests for the static inference pass (nullability, constant folding,
predicate simplification) across all four layers it touches:

1. **Core** — :mod:`repro.sqldb.inference` unit tests: interval algebra,
   per-expression facts, three-valued truth verdicts, constant folding,
   WHERE-report issues, and implied-range drops.
2. **Analyzer** — SQL501/502/503 warnings with source spans.
3. **Planner/executor** — ``static:`` rewrite notes, the
   ``effective_where`` contract, provably-empty short-circuits (including
   grouped aggregates over the empty result), and the new
   ``ExecutionStats`` counters.
4. **Columnar** — two-valued kernel selection and its safety rules
   (never-null schema columns, IS NOT NULL exact rejectors, pinning).

The differential section is the load-bearing guarantee: every corpus the
columnar engine is tested on must return byte-identical results with
inference on and off (``infer=False`` escape hatch).
"""

from __future__ import annotations

import datetime

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sqldb import (
    Column,
    Database,
    DataType,
    SqlError,
    TableSchema,
    parse_expression,
    parse_select,
)
from repro.sqldb.executor import Executor
from repro.sqldb.inference import (
    ALWAYS,
    MAYBE,
    NEVER,
    Interval,
    Resolver,
    fact,
    fold_constants,
    implied_drops,
    infer_where,
    truth,
)
from repro.sqldb.planner import Planner
from repro.sqldb.ast import split_conjuncts

from tests.test_sqldb_columnar import _prop_db, _where
from tests.test_sqldb_null_semantics import CORPUS as NULL_CORPUS
from tests.test_sqldb_null_semantics import ROWS as NULL_ROWS
from tests.test_sqldb_planner import (
    EMP_CORPUS,
    ERROR_CORPUS,
    SHOP_CORPUS,
    _strict_rows,
)

# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


def _schema() -> TableSchema:
    return TableSchema(
        "t",
        [
            Column("id", DataType.INTEGER, primary_key=True, nullable=False),
            Column("a", DataType.INTEGER),
            Column("f", DataType.FLOAT),
            Column("s", DataType.TEXT),
            Column("d", DataType.DATE),
        ],
    )


def _resolver() -> Resolver:
    return Resolver([("t", _schema())])


def _db(n: int = 40) -> Database:
    db = Database("inference")
    db.create_table(_schema())
    base = datetime.date(2023, 1, 1)
    db.insert_many(
        "t",
        [
            [
                i,
                None if i % 7 == 0 else i % 10,
                i / 4.0,
                None if i % 11 == 0 else f"s{i % 5}",
                base + datetime.timedelta(days=i % 30),
            ]
            for i in range(n)
        ],
    )
    return db


def _conjuncts(where_sql: str):
    return split_conjuncts(parse_expression(where_sql))


# ---------------------------------------------------------------------------
# Interval algebra
# ---------------------------------------------------------------------------


class TestInterval:
    def test_empty_when_bounds_cross(self):
        assert Interval(5.0, 3.0).is_empty()
        assert not Interval(3.0, 5.0).is_empty()

    def test_point_interval_open_endpoints(self):
        assert not Interval(5.0, 5.0).is_empty()
        assert Interval(5.0, 5.0, low_open=True).is_empty()
        assert Interval(5.0, 5.0, high_open=True).is_empty()

    def test_intersect_tightens_both_sides(self):
        got = Interval(1.0, 10.0).intersect(Interval(3.0, 20.0, low_open=True))
        assert (got.low, got.high, got.low_open, got.high_open) == (3.0, 10.0, True, False)

    def test_intersect_unbounded_identity(self):
        iv = Interval(2.0, 4.0, high_open=True)
        got = Interval().intersect(iv)
        assert (got.low, got.high, got.high_open) == (2.0, 4.0, True)

    def test_contains(self):
        assert Interval(1.0, None).contains(Interval(3.0, 5.0))
        assert not Interval(4.0, None).contains(Interval(3.0, 5.0))
        # open superset boundary does not contain a closed endpoint
        assert not Interval(3.0, None, low_open=True).contains(Interval(3.0, 5.0))

    def test_str_renderings(self):
        assert str(Interval(5.0, 5.0)) == "{5}"
        assert str(Interval(5.0, None, low_open=True)) == "(5, inf)"
        assert str(Interval(None, 3.0, high_open=True)) == "(-inf, 3)"
        assert str(Interval(1.0, 2.0)) == "[1, 2]"


# ---------------------------------------------------------------------------
# Facts and truth verdicts
# ---------------------------------------------------------------------------


class TestFacts:
    def test_not_null_column_is_never_null(self):
        f = fact(parse_expression("id"), _resolver())
        assert f.nullability == NEVER
        assert f.pure

    def test_nullable_column_is_maybe_null(self):
        f = fact(parse_expression("a"), _resolver())
        assert f.nullability == MAYBE

    def test_literal_constants(self):
        f = fact(parse_expression("7"), _resolver())
        assert f.known and f.const == 7 and f.nullability == NEVER
        f = fact(parse_expression("NULL"), _resolver())
        assert f.known and f.const is None and f.nullability == ALWAYS

    def test_arithmetic_over_literals_is_constant(self):
        f = fact(parse_expression("2 + 3 * 4"), _resolver())
        assert f.known and f.const == 14

    def test_unresolved_column_yields_no_claims(self):
        f = fact(parse_expression("nosuch"), _resolver())
        assert f.nullability == MAYBE and not f.pure


class TestTruth:
    def test_constant_comparison_always_true(self):
        t = truth(parse_expression("1 = 1"), _resolver())
        assert t.always_true

    def test_constant_comparison_never_true(self):
        t = truth(parse_expression("1 = 2"), _resolver())
        assert t.never_true

    def test_null_comparison_never_true(self):
        t = truth(parse_expression("a = NULL"), _resolver())
        assert t.never_true

    def test_is_not_null_on_not_null_column(self):
        t = truth(parse_expression("id IS NOT NULL"), _resolver())
        assert t.always_true
        assert truth(parse_expression("id IS NULL"), _resolver()).never_true

    def test_is_null_on_nullable_column_undecided(self):
        t = truth(parse_expression("a IS NULL"), _resolver())
        assert not t.always_true and not t.never_true
        assert t.pure

    def test_negate_swaps_true_false(self):
        t = truth(parse_expression("1 = 2"), _resolver())
        assert t.negate().always_true

    def test_fractional_constant_against_integer_column(self):
        t = truth(parse_expression("a = 0.5"), _resolver())
        assert t.never_true
        assert any(issue.code == "SQL503" for issue in t.issues)

    def test_non_iso_text_against_date_column(self):
        t = truth(parse_expression("d = 'not-a-date'"), _resolver())
        assert t.never_true
        assert any(issue.code == "SQL503" for issue in t.issues)

    def test_unresolved_column_makes_no_claims(self):
        t = truth(parse_expression("nosuch = 3"), _resolver())
        assert not t.never_true and not t.always_true and not t.pure


class TestFoldConstants:
    def test_folds_literal_arithmetic(self):
        folded = fold_constants(parse_expression("a > 2 + 3"))
        assert folded.to_sql() == "a > 5"

    def test_identity_preserved_when_nothing_folds(self):
        expr = parse_expression("a > 5 AND s = 'x'")
        assert fold_constants(expr) is expr

    def test_column_arithmetic_never_folds(self):
        expr = parse_expression("a + 1 > 5")
        assert fold_constants(expr) is expr

    def test_null_arithmetic_folds_to_null(self):
        folded = fold_constants(parse_expression("a > NULL + 1"))
        assert folded.to_sql() == "a > NULL"

    def test_unary_minus_folds(self):
        folded = fold_constants(parse_expression("a > -(2 + 3)"))
        assert folded.to_sql() == "a > -5"


class TestInferWhere:
    def test_range_contradiction_reported(self):
        report = infer_where(_conjuncts("a > 5 AND a < 3"), _resolver())
        assert report.never_satisfiable
        assert any(i.code == "SQL501" for i in report.issues)

    def test_compatible_ranges_intersect(self):
        report = infer_where(_conjuncts("a > 2 AND a < 9"), _resolver())
        assert not report.never_satisfiable
        (info,) = [r for r in report.ranges.values()]
        assert str(info.interval) == "(2, 9)"
        assert info.count == 2

    def test_tautology_reported(self):
        report = infer_where(_conjuncts("1 = 1 AND a > 2"), _resolver())
        assert any(i.code == "SQL502" for i in report.issues)

    def test_implied_drops_keep_tightest(self):
        report = infer_where(_conjuncts("a > 5 AND a > 3"), _resolver())
        drops = implied_drops(report.conjuncts)
        assert drops == [1]  # a > 3 is implied by a > 5

    def test_implied_drops_never_drop_equality(self):
        report = infer_where(_conjuncts("a = 5 AND a > 3"), _resolver())
        drops = implied_drops(report.conjuncts)
        assert all(not report.conjuncts[i].bound.is_equality for i in drops)

    def test_all_pure_false_when_conjunct_may_raise(self):
        report = infer_where(_conjuncts("a > 5 AND s / 2 > 1"), _resolver())
        assert not report.all_pure


# ---------------------------------------------------------------------------
# Analyzer: SQL5xx warnings
# ---------------------------------------------------------------------------


class TestAnalyzerWarnings:
    @pytest.mark.parametrize(
        "sql, code",
        [
            ("SELECT id FROM t WHERE a > 5 AND a < 3", "SQL501"),
            ("SELECT id FROM t WHERE a = NULL", "SQL501"),
            ("SELECT id FROM t WHERE 1 = 1", "SQL502"),
            ("SELECT id FROM t WHERE id IS NOT NULL", "SQL502"),
            ("SELECT id FROM t WHERE a = 0.5", "SQL503"),
            ("SELECT id FROM t WHERE d = 'not-a-date'", "SQL503"),
        ],
    )
    def test_warning_emitted_with_span(self, sql, code):
        db = _db()
        result = db.analyze_sql(sql)
        hits = [d for d in result.diagnostics if d.code == code]
        assert hits, f"no {code} for {sql}: {[d.format() for d in result.diagnostics]}"
        assert all(d.severity == "warning" for d in hits)
        assert any(d.span is not None for d in hits)
        # warnings never block execution
        assert result.ok
        db.execute_sql(sql)

    def test_clean_query_has_no_sql5xx(self):
        db = _db()
        result = db.analyze_sql("SELECT id FROM t WHERE a > 3 AND s = 'x'")
        assert not [d for d in result.diagnostics if d.code.startswith("SQL5")]


# ---------------------------------------------------------------------------
# Planner rewrites
# ---------------------------------------------------------------------------


class TestPlannerRewrites:
    def test_constant_folding_note_and_rewrite(self):
        db = _db()
        planner = Planner(db)
        plan = planner.plan(parse_select("SELECT id FROM t WHERE a > 2 + 3"))
        assert plan.static_rewrites >= 1
        assert any("folded" in note for note in plan.static_notes)
        assert plan.effective_where is not None
        assert plan.effective_where.to_sql() == "a > 5"

    def test_tautology_dropped(self):
        db = _db()
        plan = Planner(db).plan(parse_select("SELECT id FROM t WHERE 1 = 1 AND a > 2"))
        assert any("always-true" in note for note in plan.static_notes)
        assert plan.effective_where.to_sql() == "a > 2"

    def test_whole_where_dropped_to_none(self):
        db = _db()
        plan = Planner(db).plan(parse_select("SELECT id FROM t WHERE 1 = 1"))
        assert plan.static_rewrites >= 1
        assert plan.effective_where is None

    def test_implied_range_dropped(self):
        db = _db()
        plan = Planner(db).plan(parse_select("SELECT id FROM t WHERE a > 5 AND a > 3"))
        assert any("implied" in note for note in plan.static_notes)
        assert plan.effective_where.to_sql() == "a > 5"

    def test_provably_empty_flag(self):
        db = _db()
        plan = Planner(db).plan(parse_select("SELECT id FROM t WHERE a > 5 AND a < 3"))
        assert plan.provably_empty
        assert "static-empty" in plan.summary()

    def test_impure_conjunct_blocks_implied_drop(self):
        # dropping "a > 3" would expose "s / 2 > 1" (a type error at
        # runtime) to rows it never previously saw
        db = _db()
        plan = Planner(db).plan(
            parse_select("SELECT id FROM t WHERE a > 5 AND a > 3 AND s / 2 > 1")
        )
        assert not any("implied" in note for note in plan.static_notes)

    def test_effective_where_is_original_object_when_unchanged(self):
        db = _db()
        stmt = parse_select("SELECT id FROM t WHERE a > 3")
        plan = Planner(db).plan(stmt)
        assert plan.effective_where is stmt.where
        assert plan.static_rewrites == 0

    def test_infer_false_disables_rewrites(self):
        db = _db()
        plan = Planner(db, infer=False).plan(
            parse_select("SELECT id FROM t WHERE 1 = 1 AND a > 5 AND a < 3")
        )
        assert plan.static_rewrites == 0
        assert not plan.provably_empty
        assert plan.static_notes == ()

    def test_describe_renders_static_notes(self):
        db = _db()
        ex = Executor(db)
        text = ex.explain_sql("SELECT id FROM t WHERE 2 + 3 = 5 AND a > 5 AND a > 3")
        assert "static: folded 2 + 3 = 5 -> 5 = 5" in text
        assert "static: dropped always-true 5 = 5 (constant comparison is true)" in text
        assert "static: dropped implied a > 3" in text
        assert "static: a in (5, inf)" in text

    def test_describe_renders_never_satisfiable(self):
        db = _db()
        ex = Executor(db)
        text = ex.explain_sql("SELECT id FROM t WHERE a > 5 AND a < 3")
        assert "static: WHERE is never satisfiable -> empty result" in text


# ---------------------------------------------------------------------------
# Executor: short-circuits and stats
# ---------------------------------------------------------------------------


class TestExecutorShortCircuit:
    def test_empty_result_without_scanning(self):
        db = _db(200)
        ex = Executor(db)
        result = ex.execute_sql("SELECT id FROM t WHERE a > 5 AND a < 3")
        assert result.rows == []
        assert ex.last_stats.static_short_circuits == 1
        assert ex.last_stats.rows_scanned == 0

    def test_grouped_aggregate_over_empty_keeps_count_zero_row(self):
        db = _db()
        ex = Executor(db)
        naive = Executor(db, use_planner=False)
        for sql in [
            "SELECT COUNT(*) FROM t WHERE 1 = 0",
            "SELECT COUNT(*), SUM(a), MIN(a), MAX(a) FROM t WHERE a = NULL",
            "SELECT s, COUNT(*) FROM t WHERE a > 5 AND a < 3 GROUP BY s",
        ]:
            got = ex.execute_sql(sql)
            expected = naive.execute_sql(sql)
            assert _strict_rows(got) == _strict_rows(expected), sql
            assert got.columns == expected.columns, sql
        assert ex.total_stats.static_short_circuits == 3

    def test_no_from_clause_short_circuit(self):
        db = _db()
        ex = Executor(db)
        naive = Executor(db, use_planner=False)
        sql = "SELECT 1 WHERE 1 = 0"
        assert _strict_rows(ex.execute_sql(sql)) == _strict_rows(naive.execute_sql(sql))

    def test_static_rewrites_counter(self):
        db = _db()
        ex = Executor(db)
        ex.execute_sql("SELECT id FROM t WHERE 1 = 1 AND a > 2 + 3")
        assert ex.last_stats.static_rewrites >= 2

    def test_infer_false_executor_matches(self):
        db = _db()
        on = Executor(db)
        off = Executor(db, infer=False)
        sql = "SELECT id FROM t WHERE a > 5 AND a < 3"
        assert _strict_rows(on.execute_sql(sql)) == _strict_rows(off.execute_sql(sql))
        assert off.last_stats.static_rewrites == 0
        assert off.last_stats.static_short_circuits == 0
        assert off.last_stats.twoval_kernels == 0


# ---------------------------------------------------------------------------
# Columnar two-valued kernels
# ---------------------------------------------------------------------------


class TestTwoValuedKernels:
    def test_not_null_column_filter_goes_two_valued(self):
        db = _db(300)
        ex = Executor(db)
        ex.execute_sql("SELECT COUNT(*) FROM t WHERE id > 100")
        assert ex.last_stats.twoval_kernels == 1
        assert ex.last_stats.vectorized == 1

    def test_nullable_column_with_clean_data_goes_two_valued(self):
        # "f" is declared nullable but holds no NULLs: the compile-time
        # data check (keyed on data_version) still allows conversion.
        db = _db(300)
        ex = Executor(db)
        ex.execute_sql("SELECT COUNT(*) FROM t WHERE f > 10")
        assert ex.last_stats.twoval_kernels == 1

    def test_nullable_column_with_nulls_stays_kleene(self):
        db = _db(300)
        ex = Executor(db)
        ex.execute_sql("SELECT COUNT(*) FROM t WHERE a > 3")
        assert ex.last_stats.twoval_kernels == 0
        assert ex.last_stats.vectorized == 1

    def test_is_not_null_rejector_enables_conversion(self):
        # IS NOT NULL kernels are exact at NULL rows, so the second
        # conjunct can go two-valued even though "a" holds NULLs.
        db = _db(300)
        ex = Executor(db)
        ex.execute_sql("SELECT COUNT(*) FROM t WHERE a IS NOT NULL AND a > 3")
        assert ex.last_stats.twoval_kernels == 2

    def test_mixed_conjuncts_convert_partially(self):
        db = _db(300)
        ex = Executor(db)
        ex.execute_sql("SELECT COUNT(*) FROM t WHERE id > 10 AND a > 3")
        assert ex.last_stats.twoval_kernels == 1

    def test_explain_shows_two_valued_detail(self):
        db = _db(300)
        ex = Executor(db)
        text = ex.explain_sql("SELECT COUNT(*) FROM t WHERE id > 10 AND a > 3")
        assert "2-valued filter 1/2" in text
        assert "columnar: vectorized scan+filter+aggregate" in text

    def test_data_version_invalidates_conversion(self):
        # Once a NULL lands in "f", the cached two-valued compile must
        # not be reused.
        db = _db(300)
        ex = Executor(db)
        sql = "SELECT COUNT(*) FROM t WHERE f > 10"
        before = ex.execute_sql(sql)
        ex.execute_sql(sql)
        assert ex.last_stats.twoval_kernels == 1
        db.insert("t", [1000, 1, None, "x", datetime.date(2024, 1, 1)])
        ex.execute_sql(sql)
        assert ex.last_stats.twoval_kernels == 0
        naive = Executor(db, use_planner=False)
        assert _strict_rows(ex.execute_sql(sql)) == _strict_rows(naive.execute_sql(sql))
        assert int(before.rows[0][0]) <= int(ex.execute_sql(sql).rows[0][0])

    def test_mutual_rejection_is_not_exploited(self):
        # Two copies of the same nullable predicate must not two-value
        # each other (each would rely on the other's fill values).
        db = _db(300)
        ex = Executor(db)
        naive = Executor(db, use_planner=False)
        sql = "SELECT COUNT(*) FROM t WHERE a = 0 AND a = 0"
        assert _strict_rows(ex.execute_sql(sql)) == _strict_rows(naive.execute_sql(sql))
        assert ex.last_stats.twoval_kernels <= 1


# ---------------------------------------------------------------------------
# Differential: inference on vs off, byte identical
# ---------------------------------------------------------------------------


def assert_infer_on_off_agree(db, sql):
    on = Executor(db, use_planner=True, use_columnar=True)
    off = Executor(db, use_planner=True, use_columnar=True, infer=False)
    naive = Executor(db, use_planner=False)
    try:
        expected = naive.execute_sql(sql)
    except SqlError as exc:
        for planned in (on, off):
            with pytest.raises(type(exc)):
                planned.execute_sql(sql)
        return
    for planned in (on, off):
        got = planned.execute_sql(sql)
        assert got.columns == expected.columns, sql
        assert _strict_rows(got) == _strict_rows(expected), sql


class TestDifferentialInference:
    @pytest.mark.parametrize("sql", EMP_CORPUS)
    def test_emp_corpus(self, emp_db, sql):
        assert_infer_on_off_agree(emp_db, sql)

    @pytest.mark.parametrize("sql", SHOP_CORPUS)
    def test_shop_corpus(self, shop_db, sql):
        assert_infer_on_off_agree(shop_db, sql)

    @pytest.mark.parametrize("sql", ERROR_CORPUS)
    def test_error_corpus(self, emp_db, sql):
        assert_infer_on_off_agree(emp_db, sql)

    @pytest.mark.parametrize("sql", NULL_CORPUS)
    def test_null_corpus(self, sql):
        db = Database("nulls-inference")
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                    Column("a", DataType.INTEGER),
                    Column("b", DataType.INTEGER),
                    Column("s", DataType.TEXT),
                ],
            )
        )
        db.insert_many("t", [list(r) for r in NULL_ROWS])
        assert_infer_on_off_agree(db, sql)

    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(where=_where(), agg=st.sampled_from(["id", "COUNT(*), SUM(a), MIN(s)"]))
    def test_property_predicates(self, where, agg):
        assert_infer_on_off_agree(_prop_db(), f"SELECT {agg} FROM v WHERE {where}")

    def test_rewriting_queries_specifically(self):
        # Queries chosen to trigger each rewrite class, checked against
        # the naive path.
        db = _db(200)
        for sql in [
            "SELECT id FROM t WHERE 1 = 1 AND a > 3",
            "SELECT id FROM t WHERE a > 2 + 3",
            "SELECT id FROM t WHERE a > 5 AND a > 3",
            "SELECT id FROM t WHERE a > 5 AND a < 3",
            "SELECT COUNT(*), SUM(a) FROM t WHERE a = NULL",
            "SELECT id FROM t WHERE a BETWEEN 2 AND 8 AND a > 4",
            "SELECT s, COUNT(*) FROM t WHERE id IS NOT NULL GROUP BY s ORDER BY s",
            "SELECT id FROM t WHERE NOT (a > 5 AND a < 3)",
        ]:
            assert_infer_on_off_agree(db, sql)
