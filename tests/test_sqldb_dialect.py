"""Hard-tier dialect tests: set operations, CASE, and window functions.

Differential contract, same shape as the NULL-semantics and columnar
suites: every statement of the corpus runs on the naive interpreter, the
planned row path, and the planned columnar path, and each result must
match the stdlib sqlite3 oracle as a type-tagged multiset (ordered when
the statement carries a top-level ORDER BY).  On top of that:

- parser rejections for forms outside the dialect (``EXCEPT ALL``,
  tails before the last compound block, ``DISTINCT`` under ``OVER``),
- analyzer diagnostics SQL310-SQL316 with the executor contract
  (ERROR diagnostics raise the mapped class, WARNINGs tolerate),
- the ``EXCEPT``-vs-``NOT IN`` NULL distinction (set-op dedup treats
  NULLs as equal, ``WHERE`` three-valued logic never does),
- columnar fallback reasons for the new constructs,
- complexity/hardness classification of the new shapes,
- the ontology-layer regressions this dialect work exposed (NULL-laden
  candidate lists, NULLs in OQL ``in``/``not_in`` value lists).
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.core.complexity import ComplexityTier, classify, spider_hardness
from repro.core.intermediate import OQLCondition, OQLUnionQuery, PropertyRef
from repro.ontology.relaxation import QueryRelaxer
from repro.sqldb import Column, Database, DataType, SqlError, TableSchema
from repro.sqldb.ast import SetOperation
from repro.sqldb.errors import (
    MisplacedWindowError,
    NestedAggregateError,
    ParseError,
    SetOperationArityError,
    WindowFunctionError,
)
from repro.sqldb.executor import Executor
from repro.sqldb.parser import parse_select

# ---------------------------------------------------------------------------
# Fixture: two NULL-laden tables, mirrored into sqlite3
# ---------------------------------------------------------------------------

ROWS_T = [
    (1, 10.0, "x"),
    (2, None, "y"),
    (3, 10.0, None),
    (None, 5.0, "x"),
    (2, 7.5, "y"),
    (None, None, "z"),
]
ROWS_U = [
    (2, 7.5, "y"),
    (None, 5.0, "x"),
    (4, 1.0, "w"),
    (None, None, "z"),
]


@pytest.fixture
def engines():
    """t(a,b,c) and u(a,b,c) in repro.sqldb and in sqlite3."""
    db = Database("dialect")
    for name, rows in (("t", ROWS_T), ("u", ROWS_U)):
        db.create_table(
            TableSchema(
                name,
                [
                    Column("a", DataType.INTEGER),
                    Column("b", DataType.FLOAT),
                    Column("c", DataType.TEXT),
                ],
            )
        )
        db.insert_many(name, [list(r) for r in rows])
    oracle = sqlite3.connect(":memory:")
    for name, rows in (("t", ROWS_T), ("u", ROWS_U)):
        oracle.execute(f"CREATE TABLE {name} (a INTEGER, b REAL, c TEXT)")
        oracle.executemany(f"INSERT INTO {name} VALUES (?, ?, ?)", rows)
    yield db, oracle
    oracle.close()


def _tag(row):
    """Type-tagged comparison key: 1 and 1.0 equal, bools separate."""
    out = []
    for v in row:
        if v is None:
            out.append((0, ""))
        elif isinstance(v, bool):
            out.append((1, float(v)))
        elif isinstance(v, (int, float)):
            out.append((2, float(v)))
        else:
            out.append((3, str(v)))
    return tuple(out)


def _paths(db):
    return (
        Executor(db, use_planner=False),
        Executor(db, use_planner=True, use_columnar=False),
        Executor(db, use_planner=True, use_columnar=True, scan_chunk_rows=2),
    )


def assert_matches_oracle(engines, sql, ordered=False):
    """All three engine paths must match sqlite3 on ``sql``."""
    db, oracle = engines
    expected = [_tag(r) for r in oracle.execute(sql).fetchall()]
    if not ordered:
        expected = sorted(expected)
    for executor in _paths(db):
        got = [_tag(r) for r in executor.execute_sql(sql).rows]
        if not ordered:
            got = sorted(got)
        assert got == expected, sql


# ---------------------------------------------------------------------------
# The differential corpus (>= 40 statements)
# ---------------------------------------------------------------------------

#: Unordered statements: compared as multisets against sqlite3.
DIALECT_CORPUS = [
    # -- set operations and NULL dedup ---------------------------------------
    "SELECT a FROM t UNION SELECT a FROM u",
    "SELECT a FROM t UNION ALL SELECT a FROM u",
    "SELECT a FROM t EXCEPT SELECT a FROM u",
    "SELECT a FROM t INTERSECT SELECT a FROM u",
    "SELECT a, b FROM t UNION SELECT a, b FROM u",
    "SELECT a, b FROM t UNION ALL SELECT a, b FROM u",
    "SELECT a, b FROM t EXCEPT SELECT a, b FROM u",
    "SELECT a, b FROM t INTERSECT SELECT a, b FROM u",
    "SELECT c FROM t UNION SELECT c FROM u",
    "SELECT c FROM t EXCEPT SELECT c FROM u",
    "SELECT c FROM t INTERSECT SELECT c FROM u",
    "SELECT b FROM t UNION SELECT b FROM t",
    "SELECT a FROM t WHERE a > 1 UNION SELECT a FROM u WHERE a > 1",
    "SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM t",
    "SELECT a FROM t UNION ALL SELECT a FROM u EXCEPT SELECT a FROM u",
    "SELECT a FROM t EXCEPT SELECT a FROM t WHERE a IS NOT NULL",
    "SELECT DISTINCT a FROM t UNION ALL SELECT DISTINCT a FROM u",
    # mixed numeric affinity across branches (1 vs 1.0 dedup)
    "SELECT a FROM t UNION SELECT b FROM u",
    # -- CASE expressions -----------------------------------------------------
    "SELECT a, CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
    "SELECT a, CASE WHEN a > 1 THEN 'big' END FROM t",
    "SELECT CASE a WHEN 2 THEN 'two' WHEN 3 THEN 'three' ELSE 'other' END FROM t",
    "SELECT CASE b WHEN NULL THEN 'null' ELSE 'other' END FROM t",
    "SELECT CASE WHEN b IS NULL THEN 0 ELSE b END FROM t",
    "SELECT CASE WHEN a > 1 AND b > 5 THEN 1 WHEN a > 1 THEN 2 ELSE 3 END FROM t",
    "SELECT a FROM t WHERE CASE WHEN a > 1 THEN 1 ELSE 0 END = 1",
    "SELECT a FROM t WHERE CASE WHEN b IS NULL THEN a ELSE b END > 5",
    "SELECT CASE WHEN a > 1 THEN SUM(b) ELSE 0 END FROM t GROUP BY a",
    "SELECT c, CASE WHEN COUNT(*) > 1 THEN 'many' ELSE 'one' END FROM t GROUP BY c",
    "SELECT a, CASE c WHEN 'x' THEN b ELSE a END FROM t",
    "SELECT SUM(CASE WHEN a > 1 THEN 1 ELSE 0 END) FROM t",
    # -- window functions -----------------------------------------------------
    "SELECT a, ROW_NUMBER() OVER (ORDER BY b, c, a) FROM t",
    "SELECT c, RANK() OVER (PARTITION BY c ORDER BY b) FROM t",
    "SELECT c, DENSE_RANK() OVER (ORDER BY c) FROM t",
    "SELECT b, RANK() OVER (ORDER BY b) FROM t",
    "SELECT b, DENSE_RANK() OVER (ORDER BY b DESC) FROM t",
    "SELECT a, SUM(b) OVER (PARTITION BY c) FROM t",
    "SELECT a, SUM(b) OVER (PARTITION BY c ORDER BY a) FROM t",
    "SELECT a, COUNT(*) OVER (ORDER BY a) FROM t",
    "SELECT a, COUNT(b) OVER (PARTITION BY a) FROM t",
    "SELECT a, AVG(b) OVER (ORDER BY a) FROM t",
    "SELECT a, MIN(b) OVER (PARTITION BY c) FROM t",
    "SELECT a, MAX(b) OVER (ORDER BY a) FROM t",
    "SELECT a, SUM(a) OVER () FROM t",
    "SELECT a, COUNT(*) OVER () FROM t",
    "SELECT a, ROW_NUMBER() OVER (PARTITION BY c ORDER BY a, b) FROM t WHERE a IS NOT NULL",
    # -- 3VL cross-checks (set-op dedup vs WHERE comparison) -----------------
    "SELECT a FROM t WHERE a NOT IN (SELECT a FROM u)",
    "SELECT a FROM t WHERE a IN (SELECT a FROM u)",
    "SELECT a FROM t WHERE a NOT IN (SELECT a FROM u WHERE a IS NOT NULL)",
]

#: Statements with a top-level ORDER BY: compared in order.
ORDERED_CORPUS = [
    "SELECT a FROM t UNION SELECT a FROM u ORDER BY a",
    "SELECT a, c FROM t UNION SELECT a, c FROM u ORDER BY 2 DESC, 1 LIMIT 3",
    "SELECT a FROM t EXCEPT SELECT a FROM u ORDER BY 1 DESC",
    "SELECT a, b FROM t INTERSECT SELECT a, b FROM u ORDER BY a, b LIMIT 2",
    "SELECT c FROM t UNION SELECT c FROM u ORDER BY c LIMIT 3 OFFSET 1",
]


class TestDifferentialCorpus:
    @pytest.mark.parametrize("sql", DIALECT_CORPUS)
    def test_unordered(self, engines, sql):
        assert_matches_oracle(engines, sql)

    @pytest.mark.parametrize("sql", ORDERED_CORPUS)
    def test_ordered(self, engines, sql):
        assert_matches_oracle(engines, sql, ordered=True)

    def test_corpus_is_large_enough(self):
        assert len(DIALECT_CORPUS) + len(ORDERED_CORPUS) >= 40


class TestExceptVsNotIn:
    """The executor must distinguish set-op dedup (NULLs equal) from
    three-valued ``NOT IN`` (NULL in the probe set poisons everything)."""

    def test_except_and_not_in_differ(self, engines):
        db, oracle = engines
        except_sql = "SELECT a FROM t EXCEPT SELECT a FROM u"
        not_in_sql = "SELECT DISTINCT a FROM t WHERE a NOT IN (SELECT a FROM u)"
        for executor in _paths(db):
            except_rows = sorted(_tag(r) for r in executor.execute_sql(except_sql).rows)
            not_in_rows = sorted(_tag(r) for r in executor.execute_sql(not_in_sql).rows)
            # u.a contains a NULL, so NOT IN returns nothing at all,
            # while EXCEPT still returns t's values absent from u.
            assert not_in_rows == []
            assert except_rows != not_in_rows
            assert (_tag((1,))[0],) not in not_in_rows
        # and both readings agree with the oracle
        assert_matches_oracle(engines, except_sql)
        assert_matches_oracle(engines, not_in_sql)

    def test_union_dedups_nulls_as_equal(self, engines):
        db, _ = engines
        for executor in _paths(db):
            rows = executor.execute_sql("SELECT a FROM t UNION SELECT a FROM u").rows
            nulls = [r for r in rows if r[0] is None]
            assert len(nulls) == 1


# ---------------------------------------------------------------------------
# Parser rejections
# ---------------------------------------------------------------------------

PARSE_ERRORS = [
    "SELECT a FROM t EXCEPT ALL SELECT a FROM u",
    "SELECT a FROM t INTERSECT ALL SELECT a FROM u",
    "SELECT a FROM t ORDER BY a UNION SELECT a FROM u",
    "SELECT a FROM t LIMIT 1 UNION SELECT a FROM u",
    "SELECT COUNT(DISTINCT a) OVER (ORDER BY a) FROM t",
    "SELECT CASE WHEN a > 1 THEN 1 FROM t",
    "SELECT CASE END FROM t",
    "SELECT ROW_NUMBER() OVER FROM t",
]


class TestParserRejections:
    @pytest.mark.parametrize("sql", PARSE_ERRORS)
    def test_parse_error(self, sql):
        with pytest.raises(ParseError):
            parse_select(sql)

    def test_compound_round_trips(self):
        for sql in DIALECT_CORPUS + ORDERED_CORPUS:
            stmt = parse_select(sql)
            again = parse_select(stmt.to_sql())
            assert again.to_sql() == stmt.to_sql(), sql

    def test_compound_is_left_associative(self):
        stmt = parse_select(
            "SELECT a FROM t UNION SELECT a FROM u EXCEPT SELECT a FROM t"
        )
        assert isinstance(stmt, SetOperation) and stmt.op == "except"
        assert isinstance(stmt.left, SetOperation) and stmt.left.op == "union"


# ---------------------------------------------------------------------------
# Analyzer diagnostics and the executor contract
# ---------------------------------------------------------------------------


class TestAnalyzerDiagnostics:
    def _analysis(self, engines, sql):
        db, _ = engines
        return db.analyze_sql(sql)

    def test_arity_mismatch_is_error(self, engines):
        db, _ = engines
        sql = "SELECT a, b FROM t UNION SELECT a FROM u"
        result = db.analyze_sql(sql)
        assert "SQL310" in result.codes() and not result.ok
        with pytest.raises(SetOperationArityError):
            Executor(db, analyze=False).execute_sql(sql)
        with pytest.raises(SetOperationArityError):
            db.execute_sql(sql)

    def test_family_mismatch_is_warning(self, engines):
        db, _ = engines
        sql = "SELECT a FROM t UNION SELECT c FROM u"
        result = db.analyze_sql(sql)
        assert "SQL311" in result.codes() and result.ok
        db.execute_sql(sql)  # tolerated at runtime

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t WHERE ROW_NUMBER() OVER (ORDER BY a) = 1",
            "SELECT a FROM t GROUP BY ROW_NUMBER() OVER (ORDER BY a)",
            "SELECT COUNT(*) FROM t GROUP BY c HAVING SUM(b) OVER () > 1",
            "SELECT c, SUM(b) OVER (ORDER BY c) FROM t GROUP BY c",
        ],
    )
    def test_misplaced_window_is_error(self, engines, sql):
        db, _ = engines
        result = db.analyze_sql(sql)
        assert "SQL312" in result.codes() and not result.ok, sql
        with pytest.raises(MisplacedWindowError):
            Executor(db, analyze=False).execute_sql(sql)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT NTILE(4) OVER (ORDER BY a) FROM t",
            "SELECT RANK(a) OVER (ORDER BY a) FROM t",
            "SELECT RANK() OVER (PARTITION BY c) FROM t",
            "SELECT SUM(*) OVER (ORDER BY a) FROM t",
            "SELECT SUM(a, b) OVER (ORDER BY a) FROM t",
        ],
    )
    def test_window_shape_is_error(self, engines, sql):
        db, _ = engines
        result = db.analyze_sql(sql)
        assert "SQL313" in result.codes() and not result.ok, sql
        with pytest.raises(WindowFunctionError):
            Executor(db, analyze=False).execute_sql(sql)

    def test_case_type_mix_is_warning(self, engines):
        db, _ = engines
        sql = "SELECT CASE WHEN a > 1 THEN 'text' ELSE b END FROM t"
        result = db.analyze_sql(sql)
        assert "SQL314" in result.codes() and result.ok
        db.execute_sql(sql)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t UNION SELECT a FROM u ORDER BY nosuch",
            "SELECT a FROM t UNION SELECT a FROM u ORDER BY 2",
            "SELECT a FROM t UNION SELECT a FROM u ORDER BY 0",
        ],
    )
    def test_compound_order_is_error(self, engines, sql):
        db, _ = engines
        result = db.analyze_sql(sql)
        assert "SQL316" in result.codes() and not result.ok, sql
        with pytest.raises(SqlError):
            Executor(db, analyze=False).execute_sql(sql)

    def test_aggregate_of_aggregate_is_error(self, engines):
        db, _ = engines
        sql = "SELECT SUM(COUNT(a)) FROM t"
        result = db.analyze_sql(sql)
        assert "SQL412" in result.codes() and not result.ok
        with pytest.raises(NestedAggregateError):
            Executor(db, analyze=False).execute_sql(sql)

    def test_aggregate_inside_window_argument_is_error(self, engines):
        db, _ = engines
        sql = "SELECT SUM(SUM(a)) OVER (ORDER BY a) FROM t"
        result = db.analyze_sql(sql)
        assert not result.ok

    def test_corpus_is_analyzer_clean_of_errors(self, engines):
        db, _ = engines
        for sql in DIALECT_CORPUS + ORDERED_CORPUS:
            result = db.analyze_sql(sql)
            assert result.ok, (sql, result.codes())


# ---------------------------------------------------------------------------
# Columnar fallback surface
# ---------------------------------------------------------------------------


class TestColumnarFallback:
    def test_window_reason_named(self, engines):
        db, _ = engines
        ex = Executor(db, use_columnar=True, scan_chunk_rows=2)
        text = ex.explain(parse_select("SELECT a, ROW_NUMBER() OVER (ORDER BY a) FROM t"))
        assert "columnar: row path (window function)" in text

    def test_grouped_case_reason_named(self, engines):
        db, _ = engines
        ex = Executor(db, use_columnar=True, scan_chunk_rows=2)
        sql = "SELECT CASE WHEN a > 1 THEN SUM(b) ELSE 0 END FROM t GROUP BY a"
        text = ex.explain(parse_select(sql))
        assert "columnar: row path (CASE in a grouped query)" in text

    def test_compound_branches_still_vectorize(self, engines):
        db, _ = engines
        ex = Executor(db, use_columnar=True, scan_chunk_rows=2)
        stmt = parse_select("SELECT a FROM t UNION SELECT a FROM u")
        ex.execute(stmt)
        text = ex.explain(stmt)
        assert "compound: UNION (hash dedup, NULLs compare equal)" in text
        assert text.count("columnar: vectorized") == 2


# ---------------------------------------------------------------------------
# Classification of the new shapes
# ---------------------------------------------------------------------------


class TestClassification:
    def test_compound_is_nested_tier(self):
        sql = "SELECT a FROM t UNION SELECT a FROM u"
        assert classify(sql) is ComplexityTier.NESTED
        assert spider_hardness(sql) == "extra"

    def test_window_is_nested_tier(self):
        sql = "SELECT a, RANK() OVER (ORDER BY a) FROM t"
        assert classify(sql) is ComplexityTier.NESTED
        assert spider_hardness(sql) == "extra"

    def test_case_alone_does_not_escalate(self):
        sql = "SELECT CASE WHEN a > 1 THEN 1 ELSE 0 END FROM t"
        assert classify(sql) is ComplexityTier.SELECTION


# ---------------------------------------------------------------------------
# Ontology-layer regressions (two-valued assumptions vs Kleene executor)
# ---------------------------------------------------------------------------


class TestOntologyRegressions:
    def test_best_match_tolerates_nulls_and_non_text(self):
        relaxer = QueryRelaxer()
        # Candidate lists drawn straight from column values can hold
        # NULLs and numbers; they must be skipped, not crash .lower().
        found = relaxer.best_match("x", [None, 7, "x", "y"])
        assert found is not None and found.term == "x"
        assert relaxer.best_match("zz", [None, 3.5]) is None

    def test_oql_in_list_strips_nulls(self, engines):
        db, _ = engines
        from repro.core.intermediate import OQLCompiler
        from repro.ontology.builder import build_ontology

        ontology, mapping = build_ontology(db)
        # Build the condition directly: the compiler must drop the NULL
        # so the negated form stays satisfiable under 3VL.
        compiler = OQLCompiler(ontology, mapping)
        cond = OQLCondition(PropertyRef("t", "a"), "not_in", [1, None, 4])
        expr = compiler._condition_expr(cond)
        rendered = expr.to_sql()
        assert "NULL" not in rendered.upper()
        assert "1" in rendered and "4" in rendered

    def test_has_no_keeps_null_guard(self, emp_db):
        """The NOT IN lowering must keep NULL FKs out of the probe set —
        pin the IS NOT NULL guard the Kleene rewrite depends on."""
        from repro.core.intermediate import OQLCompiler, OQLHasCondition
        from repro.ontology.builder import build_ontology, humanize

        ontology, mapping = build_ontology(emp_db)
        compiler = OQLCompiler(ontology, mapping)
        emp_concept = humanize("emp")
        dept_concept = humanize("dept")
        cond = OQLHasCondition(emp_concept, negated=True)
        expr = compiler._has_condition_expr(cond, dept_concept)
        assert "IS NOT NULL" in expr.to_sql()


# ---------------------------------------------------------------------------
# OQL union queries
# ---------------------------------------------------------------------------


class TestOQLUnion:
    def test_needs_two_branches(self):
        from repro.core.intermediate import OQLItem, OQLQuery

        q = OQLQuery(select=(OQLItem(ref=PropertyRef("t", "a")),))
        with pytest.raises(ValueError):
            OQLUnionQuery(branches=(q,))

    def test_compiles_to_union(self, engines):
        db, _ = engines
        from repro.core.intermediate import OQLCompiler, OQLItem, OQLQuery
        from repro.ontology.builder import build_ontology

        ontology, mapping = build_ontology(db)
        branch = OQLQuery(
            select=(OQLItem(ref=PropertyRef("t", "a")),),
            conditions=(OQLCondition(PropertyRef("t", "c"), "=", "x"),),
        )
        other = OQLQuery(
            select=(OQLItem(ref=PropertyRef("t", "a")),),
            conditions=(OQLCondition(PropertyRef("t", "c"), "=", "y"),),
        )
        compiled = OQLCompiler(ontology, mapping).compile_union(
            OQLUnionQuery(branches=(branch, other))
        )
        assert isinstance(compiled, SetOperation) and compiled.op == "union"
        rows = db.executor.execute(compiled).rows
        oracle_rows = db.execute_sql(
            "SELECT a FROM t WHERE c = 'x' UNION SELECT a FROM t WHERE c = 'y'"
        ).rows
        assert sorted(map(_tag, rows)) == sorted(map(_tag, oracle_rows))

    def test_union_question_answered_end_to_end(self):
        from repro.bench import WorkloadGenerator, build_domain, evaluate_system
        from repro.core import NLIDBContext
        from repro.systems import AthenaSystem

        database = build_domain("hr")
        context = NLIDBContext(database)
        examples = [
            e
            for e in WorkloadGenerator(database, seed=2).generate(
                ComplexityTier.NESTED, 16
            )
            if e.template == "union-or"
        ]
        assert examples, "workload generator should emit union-or examples"
        outcomes = evaluate_system(AthenaSystem(), context, examples[:3])
        assert all(o.answered and o.correct for o in outcomes)
