"""Unit tests for the SQL executor against hand-checked databases."""


import pytest

from repro.sqldb import (
    AmbiguousColumnError,
    ExecutionError,
    UnknownColumnError,
    execute_sql,
)


def rows(db, sql):
    return execute_sql(db, sql).rows


class TestSelection:
    def test_project_columns(self, emp_db):
        result = execute_sql(emp_db, "SELECT name, salary FROM emp")
        assert result.columns == ["name", "salary"]
        assert len(result) == 5

    def test_where_filters(self, emp_db):
        assert rows(emp_db, "SELECT name FROM emp WHERE salary > 100") == [
            ("Ada",),
            ("Cyd",),
        ]

    def test_null_comparison_is_false(self, emp_db):
        # Dee has NULL salary: excluded from both > and <= filters.
        high = rows(emp_db, "SELECT name FROM emp WHERE salary > 0")
        low = rows(emp_db, "SELECT name FROM emp WHERE salary <= 0")
        names = {r[0] for r in high} | {r[0] for r in low}
        assert "Dee" not in names

    def test_is_null(self, emp_db):
        assert rows(emp_db, "SELECT name FROM emp WHERE salary IS NULL") == [("Dee",)]

    def test_is_not_null_count(self, emp_db):
        assert rows(emp_db, "SELECT COUNT(*) FROM emp WHERE salary IS NOT NULL") == [(4,)]

    def test_like_case_insensitive(self, emp_db):
        assert rows(emp_db, "SELECT dname FROM dept WHERE dname LIKE 'eng%'") == [
            ("Engineering",)
        ]

    def test_like_underscore(self, emp_db):
        assert rows(emp_db, "SELECT name FROM emp WHERE name LIKE '_ob'") == [("Bob",)]

    def test_between_inclusive(self, emp_db):
        assert rows(emp_db, "SELECT name FROM emp WHERE salary BETWEEN 90 AND 120") == [
            ("Ada",),
            ("Bob",),
        ]

    def test_in_list(self, emp_db):
        assert rows(emp_db, "SELECT name FROM emp WHERE id IN (1, 3)") == [
            ("Ada",),
            ("Cyd",),
        ]

    def test_date_comparison(self, emp_db):
        result = rows(emp_db, "SELECT name FROM emp WHERE hired < '2020-01-01'")
        assert {r[0] for r in result} == {"Ada", "Cyd"}

    def test_select_star(self, emp_db):
        result = execute_sql(emp_db, "SELECT * FROM dept")
        assert result.columns == ["id", "dname", "budget"]

    def test_select_constant_no_from(self, emp_db):
        assert rows(emp_db, "SELECT 1") == [(1,)]

    def test_arithmetic_projection(self, emp_db):
        result = execute_sql(emp_db, "SELECT salary * 2 AS double FROM emp WHERE id = 1")
        assert result.rows == [(240.0,)]

    def test_division_by_zero(self, emp_db):
        with pytest.raises(ExecutionError):
            execute_sql(emp_db, "SELECT 1 / 0")


class TestAggregation:
    def test_count_star_counts_nulls(self, emp_db):
        assert rows(emp_db, "SELECT COUNT(*) FROM emp") == [(5,)]

    def test_count_column_skips_nulls(self, emp_db):
        assert rows(emp_db, "SELECT COUNT(salary) FROM emp") == [(4,)]

    def test_count_distinct(self, emp_db):
        assert rows(emp_db, "SELECT COUNT(DISTINCT dept_id) FROM emp") == [(2,)]

    def test_sum_avg_skip_nulls(self, emp_db):
        assert rows(emp_db, "SELECT SUM(salary) FROM emp") == [(420.0,)]
        assert rows(emp_db, "SELECT AVG(salary) FROM emp") == [(105.0,)]

    def test_min_max(self, emp_db):
        assert rows(emp_db, "SELECT MIN(salary), MAX(salary) FROM emp") == [(60.0, 150.0)]

    def test_aggregate_empty_input(self, emp_db):
        assert rows(emp_db, "SELECT SUM(salary) FROM emp WHERE id > 99") == [(None,)]
        assert rows(emp_db, "SELECT COUNT(*) FROM emp WHERE id > 99") == [(0,)]

    def test_group_by_counts(self, emp_db):
        result = rows(
            emp_db,
            "SELECT dept_id, COUNT(*) FROM emp WHERE dept_id IS NOT NULL "
            "GROUP BY dept_id ORDER BY dept_id",
        )
        assert result == [(1, 2), (2, 2)]

    def test_group_by_null_group(self, emp_db):
        result = rows(emp_db, "SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id")
        assert (None, 1) in result

    def test_having(self, emp_db):
        result = rows(
            emp_db,
            "SELECT dept_id FROM emp GROUP BY dept_id HAVING AVG(salary) > 120",
        )
        assert result == [(2,)]

    def test_aggregate_outside_group_context(self, emp_db):
        with pytest.raises(ExecutionError):
            execute_sql(emp_db, "SELECT name FROM emp WHERE SUM(salary) > 10")

    def test_star_invalid_in_grouped(self, emp_db):
        with pytest.raises(ExecutionError):
            execute_sql(emp_db, "SELECT * FROM emp GROUP BY dept_id")


class TestJoins:
    def test_inner_join(self, emp_db):
        result = rows(
            emp_db,
            "SELECT name, dname FROM emp JOIN dept ON emp.dept_id = dept.id ORDER BY name",
        )
        assert result == [
            ("Ada", "Engineering"),
            ("Bob", "Engineering"),
            ("Cyd", "Sales"),
            ("Dee", "Sales"),
        ]

    def test_join_drops_unmatched(self, emp_db):
        # Eli has NULL dept_id and joins nothing.
        result = rows(emp_db, "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id")
        assert ("Eli",) not in result

    def test_three_way_join(self, shop_db):
        result = rows(
            shop_db,
            "SELECT DISTINCT customers.name FROM customers "
            "JOIN orders ON customers.id = orders.customer_id "
            "JOIN order_items ON orders.id = order_items.order_id "
            "WHERE order_items.qty > 2",
        )
        assert result == [("Ada",)]

    def test_alias_join(self, emp_db):
        result = rows(
            emp_db,
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id WHERE d.dname = 'Sales'",
        )
        assert {r[0] for r in result} == {"Cyd", "Dee"}

    def test_ambiguous_column_raises(self, emp_db):
        with pytest.raises(AmbiguousColumnError):
            execute_sql(emp_db, "SELECT id FROM emp JOIN dept ON emp.dept_id = dept.id")

    def test_unknown_column_raises(self, emp_db):
        with pytest.raises(UnknownColumnError):
            execute_sql(emp_db, "SELECT bogus FROM emp")


class TestSubqueries:
    def test_scalar_subquery(self, emp_db):
        result = rows(
            emp_db, "SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)"
        )
        assert {r[0] for r in result} == {"Ada", "Cyd"}

    def test_scalar_subquery_multirow_fails(self, emp_db):
        with pytest.raises(ExecutionError):
            execute_sql(
                emp_db, "SELECT name FROM emp WHERE salary > (SELECT salary FROM emp)"
            )

    def test_in_subquery(self, emp_db):
        result = rows(
            emp_db,
            "SELECT name FROM emp WHERE dept_id IN "
            "(SELECT id FROM dept WHERE budget > 600)",
        )
        assert {r[0] for r in result} == {"Ada", "Bob"}

    def test_not_in_subquery(self, emp_db):
        result = rows(
            emp_db,
            "SELECT name FROM emp WHERE dept_id NOT IN "
            "(SELECT id FROM dept WHERE budget > 600)",
        )
        # NULL dept_id row is excluded (NULL semantics)
        assert {r[0] for r in result} == {"Cyd", "Dee"}

    def test_correlated_exists(self, emp_db):
        result = rows(
            emp_db,
            "SELECT dname FROM dept WHERE EXISTS "
            "(SELECT 1 FROM emp WHERE emp.dept_id = dept.id AND emp.salary > 140)",
        )
        assert result == [("Sales",)]

    def test_correlated_scalar(self, shop_db):
        result = rows(
            shop_db,
            "SELECT name FROM customers c WHERE "
            "(SELECT COUNT(*) FROM orders o WHERE o.customer_id = c.id) > 1",
        )
        assert result == [("Ada",)]

    def test_nested_two_levels(self, shop_db):
        result = rows(
            shop_db,
            "SELECT name FROM customers WHERE id IN ("
            "SELECT customer_id FROM orders WHERE total > ("
            "SELECT AVG(total) FROM orders))",
        )
        assert result == [("Ada",)]


class TestOrderingAndLimit:
    def test_order_desc(self, emp_db):
        result = rows(emp_db, "SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY salary DESC")
        assert result == [("Cyd",), ("Ada",), ("Bob",), ("Eli",)]

    def test_order_nulls_first_asc(self, emp_db):
        result = rows(emp_db, "SELECT name FROM emp ORDER BY salary")
        assert result[0] == ("Dee",)

    def test_order_by_alias(self, emp_db):
        result = rows(
            emp_db,
            "SELECT name, salary * 2 AS d FROM emp WHERE salary IS NOT NULL ORDER BY d DESC LIMIT 1",
        )
        assert result == [("Cyd", 300.0)]

    def test_order_by_aggregate(self, emp_db):
        result = rows(
            emp_db,
            "SELECT dept_id FROM emp WHERE dept_id IS NOT NULL "
            "GROUP BY dept_id ORDER BY AVG(salary) DESC",
        )
        assert result == [(2,), (1,)]

    def test_limit(self, emp_db):
        assert len(rows(emp_db, "SELECT name FROM emp LIMIT 2")) == 2

    def test_limit_zero(self, emp_db):
        assert rows(emp_db, "SELECT name FROM emp LIMIT 0") == []

    def test_distinct(self, emp_db):
        result = rows(emp_db, "SELECT DISTINCT dept_id FROM emp ORDER BY dept_id")
        assert result == [(None,), (1,), (2,)]

    def test_multi_key_order(self, emp_db):
        result = rows(
            emp_db,
            "SELECT dept_id, name FROM emp WHERE dept_id IS NOT NULL "
            "ORDER BY dept_id ASC, name DESC",
        )
        assert result == [(1, "Bob"), (1, "Ada"), (2, "Dee"), (2, "Cyd")]


class TestRelation:
    def test_equals_unordered(self, emp_db):
        a = execute_sql(emp_db, "SELECT name FROM emp ORDER BY name")
        b = execute_sql(emp_db, "SELECT name FROM emp ORDER BY salary")
        assert a.equals_unordered(b)
        assert not a.equals_ordered(b)

    def test_numeric_canonicalization(self, emp_db):
        a = execute_sql(emp_db, "SELECT 1")
        b = execute_sql(emp_db, "SELECT 1.0")
        assert a.equals_unordered(b)

    def test_column_accessor(self, emp_db):
        result = execute_sql(emp_db, "SELECT name, salary FROM emp WHERE id = 1")
        assert result.column("salary") == [120.0]

    def test_scalar_accessor(self, emp_db):
        assert execute_sql(emp_db, "SELECT COUNT(*) FROM dept").scalar() == 2

    def test_scalar_rejects_multirow(self, emp_db):
        with pytest.raises(ValueError):
            execute_sql(emp_db, "SELECT name FROM emp").scalar()

    def test_to_text_contains_header(self, emp_db):
        text = execute_sql(emp_db, "SELECT dname FROM dept").to_text()
        assert "dname" in text and "Engineering" in text
