"""Unit tests for the core framework: OQL, complexity, evidence, ranking."""

import pytest

from repro.core import (
    ClarificationOption,
    ClarificationRequest,
    ComplexityTier,
    CompilationError,
    EvidenceAnnotation,
    FirstOptionUser,
    Interpretation,
    OQLCondition,
    OQLItem,
    OQLOrder,
    OQLQuery,
    PropertyRef,
    ScriptedUser,
    SimulatedOracle,
    available,
    classify,
    compile_oql,
    coverage,
    create,
    evidence_score,
    rank,
    register,
    resolve_overlaps,
)
from repro.nlp import tokenize
from repro.sqldb import parse_select


class TestComplexity:
    @pytest.mark.parametrize(
        "sql,tier",
        [
            ("SELECT name FROM emp WHERE salary > 10", ComplexityTier.SELECTION),
            ("SELECT COUNT(*) FROM emp", ComplexityTier.AGGREGATION),
            ("SELECT name FROM emp ORDER BY salary DESC LIMIT 1", ComplexityTier.AGGREGATION),
            ("SELECT dept, AVG(s) FROM emp GROUP BY dept", ComplexityTier.AGGREGATION),
            (
                "SELECT e.name FROM emp e JOIN dept d ON e.did = d.id",
                ComplexityTier.JOIN,
            ),
            (
                "SELECT name FROM emp WHERE s > (SELECT AVG(s) FROM emp)",
                ComplexityTier.NESTED,
            ),
            (
                "SELECT e.n FROM emp e JOIN d ON e.x = d.y WHERE e.s IN (SELECT s FROM emp)",
                ComplexityTier.NESTED,
            ),
        ],
    )
    def test_classify(self, sql, tier):
        assert classify(sql) is tier

    def test_tier_ordering(self):
        assert ComplexityTier.SELECTION < ComplexityTier.NESTED

    def test_labels(self):
        assert "nested" in ComplexityTier.NESTED.label


class TestOQLCompilation:
    def test_single_concept(self, shop_ctx):
        q = OQLQuery(select=(OQLItem(ref=PropertyRef("customer", "name")),))
        sql = compile_oql(q, shop_ctx.ontology, shop_ctx.mapping).to_sql()
        assert sql == "SELECT customers.name FROM customers"

    def test_condition_lowering(self, shop_ctx):
        q = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name")),),
            conditions=(OQLCondition(PropertyRef("customer", "city"), "=", "Berlin"),),
        )
        stmt = compile_oql(q, shop_ctx.ontology, shop_ctx.mapping)
        result = shop_ctx.executor.execute(stmt)
        assert {r[0] for r in result.rows} == {"Ada", "Cyd"}

    def test_join_inference(self, shop_ctx):
        q = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name")),),
            conditions=(OQLCondition(PropertyRef("order", "total"), ">", 60.0),),
        )
        stmt = compile_oql(q, shop_ctx.ontology, shop_ctx.mapping)
        assert "JOIN orders" in stmt.to_sql()
        assert shop_ctx.executor.execute(stmt).rows == [("Ada",)]

    def test_junction_join_inference(self, shop_ctx):
        q = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name"),),),
            conditions=(OQLCondition(PropertyRef("product", "pname"), "=", "Gizmo"),),
            distinct=True,
        )
        stmt = compile_oql(q, shop_ctx.ontology, shop_ctx.mapping)
        sql = stmt.to_sql()
        assert "order_items" in sql
        assert shop_ctx.executor.execute(stmt).rows == [("Ada",)]

    def test_aggregate_group_order_limit(self, shop_ctx):
        q = OQLQuery(
            select=(
                OQLItem(ref=PropertyRef("customer", "city")),
                OQLItem(ref=PropertyRef("order", "total"), aggregate="sum", alias="s"),
            ),
            group_by=(PropertyRef("customer", "city"),),
            order_by=(OQLOrder(OQLItem(ref=PropertyRef("order", "total"), aggregate="sum"), "desc"),),
            limit=1,
        )
        stmt = compile_oql(q, shop_ctx.ontology, shop_ctx.mapping)
        assert shop_ctx.executor.execute(stmt).rows == [("Berlin", 120.0)]

    def test_count_all_with_condition(self, shop_ctx):
        q = OQLQuery(
            select=(OQLItem(count_all=True),),
            conditions=(OQLCondition(PropertyRef("customer", "city"), "=", "Berlin"),),
        )
        stmt = compile_oql(q, shop_ctx.ontology, shop_ctx.mapping)
        assert shop_ctx.executor.execute(stmt).scalar() == 2

    def test_no_concepts_rejected(self, shop_ctx):
        q = OQLQuery(select=(OQLItem(count_all=True),))
        with pytest.raises(CompilationError):
            compile_oql(q, shop_ctx.ontology, shop_ctx.mapping)

    def test_nested_subquery(self, shop_ctx):
        inner = OQLQuery(select=(OQLItem(ref=PropertyRef("order", "total"), aggregate="avg"),))
        q = OQLQuery(
            select=(OQLItem(ref=PropertyRef("order", "id")),),
            conditions=(OQLCondition(PropertyRef("order", "total"), ">", subquery=inner),),
        )
        stmt = compile_oql(q, shop_ctx.ontology, shop_ctx.mapping)
        assert classify(stmt) is ComplexityTier.NESTED
        assert {r[0] for r in shop_ctx.executor.execute(stmt).rows} == {1, 2}

    def test_between_and_like(self, shop_ctx):
        q = OQLQuery(
            select=(OQLItem(ref=PropertyRef("product", "pname")),),
            conditions=(
                OQLCondition(PropertyRef("product", "price"), "between", 6.0, 30.0),
            ),
        )
        stmt = compile_oql(q, shop_ctx.ontology, shop_ctx.mapping)
        assert {r[0] for r in shop_ctx.executor.execute(stmt).rows} == {"Widget", "Gadget"}

    def test_describe_readable(self):
        q = OQLQuery(
            select=(OQLItem(ref=PropertyRef("a", "b"), aggregate="sum"),),
            conditions=(OQLCondition(PropertyRef("a", "c"), "=", 1),),
            limit=3,
        )
        text = q.describe()
        assert "sum(a.b)" in text and "limit 3" in text


class TestEvidence:
    def test_overlap_detection(self):
        a = EvidenceAnnotation(0, 2, "column", "x")
        b = EvidenceAnnotation(1, 3, "value", "y")
        c = EvidenceAnnotation(2, 4, "value", "z")
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_resolve_overlaps_prefers_longer_when_quality_holds(self):
        short = EvidenceAnnotation(0, 1, "column", "short", score=0.97)
        long = EvidenceAnnotation(0, 2, "column", "long", score=0.95)
        kept = resolve_overlaps([short, long])
        assert kept == [long]  # 0.95 + length bonus beats 0.97

    def test_resolve_overlaps_strong_word_beats_weak_phrase(self):
        word = EvidenceAnnotation(1, 2, "column", "word", score=1.0)
        phrase = EvidenceAnnotation(0, 2, "column", "phrase", score=0.7)
        assert resolve_overlaps([word, phrase]) == [word]

    def test_resolve_overlaps_score_tiebreak(self):
        a = EvidenceAnnotation(0, 1, "column", "a", score=0.5)
        b = EvidenceAnnotation(0, 1, "column", "b", score=0.9)
        assert resolve_overlaps([a, b]) == [b]

    def test_coverage(self):
        anns = [EvidenceAnnotation(0, 1, "c", "x"), EvidenceAnnotation(2, 3, "v", "y")]
        assert coverage(anns, [0, 1, 2]) == pytest.approx(2 / 3)
        assert coverage([], []) == 1.0


class TestRanking:
    def test_evidence_score_geometric(self):
        anns = [
            EvidenceAnnotation(0, 1, "c", "x", score=1.0),
            EvidenceAnnotation(1, 2, "c", "y", score=0.25),
        ]
        assert evidence_score(anns) == pytest.approx(0.5)

    def test_weak_link_punished(self):
        strong = [EvidenceAnnotation(0, 1, "c", "x", 0.9), EvidenceAnnotation(1, 2, "c", "y", 0.9)]
        weak = [EvidenceAnnotation(0, 1, "c", "x", 1.0), EvidenceAnnotation(1, 2, "c", "y", 0.3)]
        assert evidence_score(strong) > evidence_score(weak)

    def test_rank_orders_by_composite(self, shop_ctx):
        tokens = tokenize("customers in Berlin")
        full = Interpretation(
            "a", 0.0,
            oql=OQLQuery(select=(OQLItem(ref=PropertyRef("customer", "name")),)),
            evidence=[
                EvidenceAnnotation(0, 1, "concept", "customer", 0.9),
                EvidenceAnnotation(2, 3, "value", "Berlin", 0.9),
            ],
        )
        partial = Interpretation(
            "b", 0.0,
            oql=OQLQuery(select=(OQLItem(ref=PropertyRef("customer", "name")),)),
            evidence=[EvidenceAnnotation(0, 1, "concept", "customer", 0.9)],
        )
        ranked = rank([partial, full], tokens)
        assert ranked[0] is full


class TestInterpretation:
    def test_requires_exactly_one_body(self):
        with pytest.raises(ValueError):
            Interpretation("s", 1.0)
        with pytest.raises(ValueError):
            Interpretation(
                "s", 1.0,
                oql=OQLQuery(select=(OQLItem(count_all=True),)),
                sql=parse_select("SELECT 1"),
            )

    def test_sql_passthrough(self):
        stmt = parse_select("SELECT 1")
        interp = Interpretation("s", 1.0, sql=stmt)
        assert interp.to_sql() is stmt

    def test_oql_needs_context(self):
        interp = Interpretation(
            "s", 1.0, oql=OQLQuery(select=(OQLItem(ref=PropertyRef("customer", "name")),))
        )
        with pytest.raises(CompilationError):
            interp.to_sql()

    def test_describe(self, shop_ctx):
        interp = Interpretation(
            "s", 0.8, oql=OQLQuery(select=(OQLItem(ref=PropertyRef("customer", "name")),))
        )
        interp.to_sql(shop_ctx.ontology, shop_ctx.mapping)
        text = interp.describe()
        assert "SQL:" in text and "confidence" in text


class TestFeedback:
    def make_request(self):
        return ClarificationRequest(
            "Which 'rating'?",
            [
                ClarificationOption("movie rating", payload="movies.rating"),
                ClarificationOption("user rating", payload="users.rating"),
            ],
        )

    def test_first_option_user(self):
        assert FirstOptionUser().choose(self.make_request()) == 0

    def test_scripted_user(self):
        user = ScriptedUser([1, 0])
        assert user.choose(self.make_request()) == 1
        assert user.choose(self.make_request()) == 0
        assert user.choose(self.make_request()) == 0  # exhausted -> default

    def test_oracle_picks_best(self):
        oracle = SimulatedOracle(lambda p: 1.0 if p == "users.rating" else 0.0)
        assert oracle.choose(self.make_request()) == 1
        assert oracle.questions_asked == 1


class TestRegistry:
    def test_register_and_create(self):
        from repro.core import NLIDBSystem

        class Dummy(NLIDBSystem):
            name = "dummy"

            def interpret(self, question, context):
                return []

        register("dummy-test", Dummy)
        assert "dummy-test" in available()
        assert isinstance(create("dummy-test"), Dummy)

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            create("no-such-system")


class TestContext:
    def test_schema_synonyms_reach_thesaurus(self, emp_ctx):
        assert emp_ctx.thesaurus.are_synonyms("wage", "salary")

    def test_execute_interpretation(self, shop_ctx):
        interp = Interpretation(
            "s", 1.0,
            oql=OQLQuery(select=(OQLItem(ref=PropertyRef("customer", "name")),)),
        )
        result = shop_ctx.execute(interp)
        assert len(result) == 3


class TestSpiderHardness:

    @pytest.mark.parametrize(
        "sql,label",
        [
            ("SELECT name FROM emp WHERE x = 1", "easy"),
            ("SELECT COUNT(*) FROM emp", "medium"),
            ("SELECT name FROM emp ORDER BY s DESC LIMIT 3", "hard"),
            ("SELECT a FROM t JOIN u ON t.x = u.y", "hard"),
            ("SELECT g, SUM(v) FROM t GROUP BY g ORDER BY SUM(v)", "hard"),
            (
                "SELECT a FROM t JOIN u ON t.x = u.y WHERE a IN (SELECT b FROM v)",
                "extra",
            ),
            ("SELECT a FROM t WHERE a > (SELECT AVG(a) FROM t)", "extra"),
        ],
    )
    def test_labels(self, sql, label):
        from repro.core import spider_hardness

        assert spider_hardness(sql) == label

    def test_workload_spread(self, shop_ctx):
        from repro.bench.workloads import WorkloadGenerator
        from repro.core import spider_hardness

        examples = WorkloadGenerator(shop_ctx.database, seed=3).generate_mixed(5)
        labels = {spider_hardness(e.sql) for e in examples}
        assert {"easy", "extra"} <= labels
