"""Property-based tests for OQL compilation and SPARQL round-trips."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.bench.domains import build_domain
from repro.core import NLIDBContext
from repro.core.intermediate import (
    OQLCondition,
    OQLHasCondition,
    OQLItem,
    OQLQuery,
    PropertyRef,
    compile_oql,
)
from repro.rdf import Filter, SparqlQuery, TriplePattern, Var, parse_sparql
from repro.sqldb import parse_select

_CTX = NLIDBContext(build_domain("retail"))

# (concept, property, numeric?) triples available in the retail ontology
_PROPS = []
for _concept in _CTX.ontology.concepts.values():
    for _prop in _concept.properties.values():
        _PROPS.append((_concept.name, _prop.name, _prop.dtype.is_numeric))

prop_refs = st.sampled_from(_PROPS).map(lambda t: PropertyRef(t[0], t[1]))
numeric_refs = st.sampled_from([p for p in _PROPS if p[2]]).map(
    lambda t: PropertyRef(t[0], t[1])
)
text_refs = st.sampled_from([p for p in _PROPS if not p[2]]).map(
    lambda t: PropertyRef(t[0], t[1])
)


@st.composite
def oql_conditions(draw):
    if draw(st.booleans()):
        ref = draw(numeric_refs)
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        return OQLCondition(ref, op, float(draw(st.integers(-100, 100))))
    ref = draw(text_refs)
    return OQLCondition(ref, "=", draw(st.sampled_from(["Berlin", "Paris", "x"])))


@st.composite
def oql_queries(draw):
    n_items = draw(st.integers(1, 2))
    select = []
    for _ in range(n_items):
        if draw(st.booleans()):
            select.append(OQLItem(ref=draw(prop_refs)))
        else:
            select.append(
                OQLItem(ref=draw(numeric_refs), aggregate=draw(st.sampled_from(["sum", "avg", "min", "max"])))
            )
    conditions = tuple(draw(st.lists(oql_conditions(), max_size=2)))
    group_by = ()
    if any(i.aggregate for i in select) and draw(st.booleans()):
        plain = [i.ref for i in select if i.ref and not i.aggregate]
        if plain:
            group_by = (plain[0],)
    limit = draw(st.one_of(st.none(), st.integers(1, 5)))
    return OQLQuery(
        select=tuple(select),
        conditions=conditions,
        group_by=group_by,
        limit=limit,
        distinct=draw(st.booleans()) and not any(i.aggregate for i in select),
    )


class TestOQLCompilerProperties:
    @given(oql_queries())
    @settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_compiled_sql_parses_and_executes(self, query):
        stmt = compile_oql(query, _CTX.ontology, _CTX.mapping)
        # the rendered SQL reparses to the same AST
        assert parse_select(stmt.to_sql()) == stmt
        # grouped or not, the executor accepts it (ungrouped plain columns
        # mixed with aggregates are evaluated on a representative row —
        # documented engine behaviour)
        result = _CTX.executor.execute(stmt)
        if query.limit is not None:
            assert len(result) <= query.limit

    @given(oql_queries())
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_concepts_all_joined(self, query):
        stmt = compile_oql(query, _CTX.ontology, _CTX.mapping)
        tables = {t.lower() for t in stmt.referenced_tables()}
        for concept in query.concepts():
            assert _CTX.mapping.table_of(concept).lower() in tables

    @given(st.sampled_from([p for p in _PROPS if p[2]]))
    @settings(max_examples=30, deadline=None)
    def test_has_condition_always_subquery(self, prop):
        concept, prop_name, _ = prop
        # pick a different concept connected to this one, if any
        for other in _CTX.ontology.concepts.values():
            if other.name == concept:
                continue
            try:
                _CTX.reasoner.relation_path(other.name, concept)
            except Exception:
                continue
            display = next(iter(other.properties.values()))
            query = OQLQuery(
                select=(OQLItem(ref=PropertyRef(other.name, display.name)),),
                conditions=(
                    OQLHasCondition(
                        concept,
                        conditions=(
                            OQLCondition(PropertyRef(concept, prop_name), ">", 0.0),
                        ),
                    ),
                ),
            )
            stmt = compile_oql(query, _CTX.ontology, _CTX.mapping)
            assert "IN (SELECT" in stmt.to_sql()
            _CTX.executor.execute(stmt)
            return


# -- SPARQL round-trip properties ------------------------------------------------

sparql_terms = st.one_of(
    st.builds(Var, st.sampled_from(["x", "y", "z"])),
    st.sampled_from(["class:movie", "prop:movie.year", "rel:director"]),
    st.text(alphabet="abc XYZ'\"", min_size=1, max_size=10),
    st.integers(-99, 99),
)


@st.composite
def sparql_queries(draw):
    n_patterns = draw(st.integers(1, 3))
    patterns = tuple(
        TriplePattern(
            draw(st.builds(Var, st.sampled_from(["a", "b", "c"]))),
            draw(st.sampled_from(["rdf:type", "prop:movie.year", "rdfs:label"])),
            draw(sparql_terms),
        )
        for _ in range(n_patterns)
    )
    filters = ()
    if draw(st.booleans()):
        filters = (
            Filter(
                Var(draw(st.sampled_from(["a", "b"]))),
                draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="])),
                draw(st.integers(-99, 99)),
            ),
        )
    count = Var("a") if draw(st.booleans()) else None
    select = () if count else (Var("a"),)
    return SparqlQuery(
        select=select,
        patterns=patterns,
        filters=filters,
        distinct=draw(st.booleans()),
        count=count,
        limit=draw(st.one_of(st.none(), st.integers(0, 9))),
    )


class TestSparqlProperties:
    @given(sparql_queries())
    @settings(max_examples=150, deadline=None)
    def test_render_parse_roundtrip(self, query):
        assert parse_sparql(query.to_sparql()) == query
