"""Tests for the query planner: differential correctness against the
naive interpreter, hash-join edge cases, secondary indexes, statement
caching, and the ExecutionStats observability surface."""

import datetime

import pytest

from repro.bench import WorkloadGenerator, build_domain, domain_names
from repro.core import NLIDBContext
from repro.core.interpretation import Interpretation
from repro.sqldb import (
    Column,
    Database,
    DataType,
    Executor,
    Literal,
    MetadataIndex,
    Planner,
    SelectItem,
    SelectStatement,
    SqlError,
    TableSchema,
    ValueIndex,
    execute_sql,
    parse_select,
)
from repro.sqldb.executor import _hashable, _like_to_regex

# ---------------------------------------------------------------------------
# Differential suite: the planner path must return relations identical to
# the naive path for every query in the SQL test corpus.
# ---------------------------------------------------------------------------

EMP_CORPUS = [
    "SELECT name, salary FROM emp",
    "SELECT name FROM emp WHERE salary > 100",
    "SELECT name FROM emp WHERE salary > 0",
    "SELECT name FROM emp WHERE salary <= 0",
    "SELECT name FROM emp WHERE salary IS NULL",
    "SELECT COUNT(*) FROM emp WHERE salary IS NOT NULL",
    "SELECT dname FROM dept WHERE dname LIKE 'eng%'",
    "SELECT name FROM emp WHERE name LIKE '_ob'",
    "SELECT name FROM emp WHERE salary BETWEEN 90 AND 120",
    "SELECT name FROM emp WHERE id IN (1, 3)",
    "SELECT name FROM emp WHERE id = 3",
    "SELECT name FROM emp WHERE id = 3 AND salary > 0",
    "SELECT name FROM emp WHERE hired < '2020-01-01'",
    "SELECT name FROM emp WHERE hired = '2019-01-02'",
    "SELECT * FROM dept",
    "SELECT 1",
    "SELECT salary * 2 AS double FROM emp WHERE id = 1",
    "SELECT COUNT(*) FROM emp",
    "SELECT COUNT(salary) FROM emp",
    "SELECT COUNT(DISTINCT dept_id) FROM emp",
    "SELECT SUM(salary) FROM emp",
    "SELECT AVG(salary) FROM emp",
    "SELECT MIN(salary), MAX(salary) FROM emp",
    "SELECT SUM(salary) FROM emp WHERE id > 99",
    "SELECT COUNT(*) FROM emp WHERE id > 99",
    "SELECT dept_id, COUNT(*) FROM emp WHERE dept_id IS NOT NULL "
    "GROUP BY dept_id ORDER BY dept_id",
    "SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id",
    "SELECT dept_id FROM emp GROUP BY dept_id HAVING AVG(salary) > 120",
    "SELECT name, dname FROM emp JOIN dept ON emp.dept_id = dept.id ORDER BY name",
    "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id",
    "SELECT name FROM emp JOIN dept ON dept.id = emp.dept_id",
    "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id WHERE d.dname = 'Sales'",
    "SELECT e.name, d.budget FROM emp e JOIN dept d ON e.dept_id = d.id "
    "WHERE e.salary > 80 AND d.budget > 400",
    "SELECT e1.name, e2.name FROM emp e1 JOIN emp e2 ON e1.dept_id = e2.dept_id",
    "SELECT e1.name FROM emp e1 JOIN emp e2 ON e1.dept_id = e2.dept_id "
    "WHERE e2.salary > 100",
    "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id AND dept.budget > 600",
    "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id AND emp.salary < dept.budget",
    "SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)",
    "SELECT name FROM emp WHERE dept_id IN (SELECT id FROM dept WHERE budget > 600)",
    "SELECT name FROM emp WHERE dept_id NOT IN (SELECT id FROM dept WHERE budget > 600)",
    "SELECT dname FROM dept WHERE EXISTS "
    "(SELECT 1 FROM emp WHERE emp.dept_id = dept.id AND emp.salary > 140)",
    "SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY salary DESC",
    "SELECT name FROM emp ORDER BY salary",
    "SELECT name, salary * 2 AS d FROM emp WHERE salary IS NOT NULL ORDER BY d DESC LIMIT 1",
    "SELECT dept_id FROM emp WHERE dept_id IS NOT NULL "
    "GROUP BY dept_id ORDER BY AVG(salary) DESC",
    "SELECT name FROM emp LIMIT 2",
    "SELECT name FROM emp LIMIT 0",
    "SELECT DISTINCT dept_id FROM emp ORDER BY dept_id",
    "SELECT dept_id, name FROM emp WHERE dept_id IS NOT NULL "
    "ORDER BY dept_id ASC, name DESC",
    "SELECT UPPER(name) FROM emp WHERE LENGTH(name) = 3",
    "SELECT name FROM emp WHERE NOT (salary > 100)",
    "SELECT name FROM emp WHERE salary > 100 OR dept_id = 2",
    "SELECT name FROM emp WHERE id IN (1, 2) AND salary > 80 AND dept_id = 1",
]

SHOP_CORPUS = [
    "SELECT DISTINCT customers.name FROM customers "
    "JOIN orders ON customers.id = orders.customer_id "
    "JOIN order_items ON orders.id = order_items.order_id "
    "WHERE order_items.qty > 2",
    "SELECT name FROM customers c WHERE "
    "(SELECT COUNT(*) FROM orders o WHERE o.customer_id = c.id) > 1",
    "SELECT name FROM customers WHERE id IN ("
    "SELECT customer_id FROM orders WHERE total > ("
    "SELECT AVG(total) FROM orders))",
    "SELECT c.name, o.total FROM customers c JOIN orders o "
    "ON c.id = o.customer_id ORDER BY o.total DESC",
    "SELECT c.name, COUNT(*) FROM customers c JOIN orders o "
    "ON c.id = o.customer_id GROUP BY c.name",
]

ERROR_CORPUS = [
    "SELECT 1 / 0",
    "SELECT name FROM emp WHERE SUM(salary) > 10",
    "SELECT * FROM emp GROUP BY dept_id",
    "SELECT id FROM emp JOIN dept ON emp.dept_id = dept.id",
    "SELECT bogus FROM emp",
    "SELECT name FROM emp WHERE salary > (SELECT salary FROM emp)",
]


def _strict_rows(relation):
    """Rows with type tags, so 1 vs 1.0 vs TRUE differences are caught."""
    return [tuple((type(v).__name__, v) for v in row) for row in relation.rows]


def assert_both_paths_agree(db, sql):
    planned = Executor(db, use_planner=True)
    naive = Executor(db, use_planner=False)
    try:
        expected = naive.execute_sql(sql)
    except SqlError as exc:
        with pytest.raises(type(exc)):
            planned.execute_sql(sql)
        return
    got = planned.execute_sql(sql)
    assert got.columns == expected.columns, sql
    assert _strict_rows(got) == _strict_rows(expected), sql


class TestDifferential:
    @pytest.mark.parametrize("sql", EMP_CORPUS)
    def test_emp_corpus(self, emp_db, sql):
        assert_both_paths_agree(emp_db, sql)

    @pytest.mark.parametrize("sql", SHOP_CORPUS)
    def test_shop_corpus(self, shop_db, sql):
        assert_both_paths_agree(shop_db, sql)

    @pytest.mark.parametrize("sql", ERROR_CORPUS)
    def test_error_corpus(self, emp_db, sql):
        assert_both_paths_agree(emp_db, sql)

    @pytest.mark.parametrize("domain", domain_names())
    def test_generated_workloads(self, domain):
        db = build_domain(domain)
        examples = WorkloadGenerator(db, seed=7).generate_mixed(12)
        for example in examples:
            assert_both_paths_agree(db, example.sql)


# ---------------------------------------------------------------------------
# Hash-join edge cases
# ---------------------------------------------------------------------------


class TestHashJoin:
    def test_null_join_keys_match_nothing(self, emp_db):
        # Eli has NULL dept_id: must not pair with any department.
        result = execute_sql(
            emp_db, "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id"
        )
        assert ("Eli",) not in result.rows
        assert len(result) == 4

    def test_self_join(self, emp_db):
        result = execute_sql(
            emp_db,
            "SELECT e1.name, e2.name FROM emp e1 JOIN emp e2 "
            "ON e1.dept_id = e2.dept_id WHERE e1.id < e2.id",
        )
        assert set(result.rows) == {("Ada", "Bob"), ("Cyd", "Dee")}

    def test_join_uses_hash_strategy(self, emp_db):
        executor = Executor(emp_db)
        executor.execute_sql(
            "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id"
        )
        assert executor.last_stats.hash_joins == 1
        assert executor.last_stats.nested_loop_joins == 0
        assert "hash-join" in executor.last_stats.strategy

    def test_non_equi_join_falls_back_to_nested_loop(self, emp_db):
        executor = Executor(emp_db)
        result = executor.execute_sql(
            "SELECT name FROM emp JOIN dept ON emp.salary < dept.budget"
        )
        assert executor.last_stats.nested_loop_joins == 1
        assert len(result) > 0

    def test_int_float_keys_join(self):
        db = Database("mix")
        db.create_table(TableSchema("a", [Column("k", DataType.INTEGER)]))
        db.create_table(TableSchema("b", [Column("k", DataType.FLOAT)]))
        db.insert_many("a", [[1], [2], [3]])
        db.insert_many("b", [[1.0], [3.0], [4.5]])
        result = execute_sql(db, "SELECT a.k FROM a JOIN b ON a.k = b.k")
        assert sorted(r[0] for r in result.rows) == [1, 3]

    def test_date_string_keys_join(self):
        db = Database("dates")
        db.create_table(TableSchema("a", [Column("d", DataType.DATE)]))
        db.create_table(TableSchema("b", [Column("d", DataType.TEXT)]))
        db.insert_many("a", [["2020-01-01"], ["2021-06-15"]])
        db.insert_many("b", [["2020-01-01"], ["not a date"]])
        result = execute_sql(db, "SELECT a.d FROM a JOIN b ON a.d = b.d")
        assert result.rows == [(datetime.date(2020, 1, 1),)]

    def test_bool_int_keys_do_not_join(self):
        db = Database("bools")
        db.create_table(TableSchema("a", [Column("k", DataType.BOOLEAN)]))
        db.create_table(TableSchema("b", [Column("k", DataType.INTEGER)]))
        db.insert_many("a", [[True], [False]])
        db.insert_many("b", [[1], [0]])
        # values_equal treats booleans and numbers as distinct families.
        result = execute_sql(db, "SELECT a.k FROM a JOIN b ON a.k = b.k")
        assert result.rows == []


# ---------------------------------------------------------------------------
# Secondary indexes and predicate pushdown
# ---------------------------------------------------------------------------


class TestIndexScan:
    def test_equality_uses_index(self, emp_db):
        executor = Executor(emp_db)
        result = executor.execute_sql("SELECT name FROM emp WHERE id = 3")
        assert result.rows == [("Cyd",)]
        assert executor.last_stats.index_scans == 1
        assert executor.last_stats.rows_scanned == 1  # not the full table

    def test_in_list_uses_index(self, emp_db):
        executor = Executor(emp_db)
        result = executor.execute_sql("SELECT name FROM emp WHERE id IN (1, 3)")
        assert result.rows == [("Ada",), ("Cyd",)]
        assert executor.last_stats.index_scans == 1

    def test_index_sees_rows_inserted_after_build(self, emp_db):
        executor = Executor(emp_db)
        assert executor.execute_sql("SELECT name FROM emp WHERE id = 99").rows == []
        emp_db.insert("emp", [99, "Zoe", 1, 80.0, "2024-01-01"])
        result = executor.execute_sql("SELECT name FROM emp WHERE id = 99")
        assert result.rows == [("Zoe",)]

    def test_secondary_index_invalidation_direct(self, emp_db):
        table = emp_db.table("emp")
        index = table.secondary_index("id")
        before = len(index)
        table.insert([50, "New", 2, 70.0, "2023-03-03"])
        rebuilt = table.secondary_index("id")
        assert len(rebuilt) == before + 1

    def test_pushdown_filters_before_join(self, emp_db):
        executor = Executor(emp_db)
        executor.execute_sql(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id "
            "WHERE d.dname = 'Sales' AND e.salary > 100"
        )
        assert executor.last_stats.predicates_pushed == 2


# ---------------------------------------------------------------------------
# Statement cache
# ---------------------------------------------------------------------------


class TestStatementCache:
    def test_repeat_hits_cache(self, emp_db):
        executor = Executor(emp_db)
        sql = "SELECT name FROM emp WHERE salary > 100"
        executor.execute_sql(sql)
        assert executor.last_stats.statement_cache_misses == 1
        executor.execute_sql(sql)
        assert executor.last_stats.statement_cache_hits == 1

    def test_cached_statement_sees_inserts(self, emp_db):
        # The cache stores parsed ASTs, never results: an INSERT between
        # two executions of the same text must be visible to the second.
        executor = Executor(emp_db)
        sql = "SELECT COUNT(*) FROM emp"
        assert executor.execute_sql(sql).scalar() == 5
        emp_db.insert("emp", [6, "Fay", 1, 100.0, "2023-05-05"])
        assert executor.execute_sql(sql).scalar() == 6
        assert executor.last_stats.statement_cache_hits == 1

    def test_cache_disabled(self, emp_db):
        executor = Executor(emp_db, statement_cache_size=0)
        sql = "SELECT name FROM emp"
        executor.execute_sql(sql)
        executor.execute_sql(sql)
        assert executor.last_stats.statement_cache_hits == 0

    def test_database_convenience_shares_cache(self, emp_db):
        sql = "SELECT name FROM emp WHERE id = 1"
        execute_sql(emp_db, sql)
        execute_sql(emp_db, sql)
        assert emp_db.last_stats.statement_cache_hits == 1


# ---------------------------------------------------------------------------
# LIKE regex memoization
# ---------------------------------------------------------------------------


class TestLikeCache:
    def test_same_pattern_same_object(self):
        assert _like_to_regex("abc%") is _like_to_regex("abc%")

    def test_semantics_unchanged(self, emp_db):
        assert execute_sql(
            emp_db, "SELECT dname FROM dept WHERE dname LIKE 'eng%'"
        ).rows == [("Engineering",)]


# ---------------------------------------------------------------------------
# ExecutionStats / EXPLAIN surface
# ---------------------------------------------------------------------------


class TestObservability:
    def test_stats_counters_exposed(self, emp_db):
        executor = Executor(emp_db)
        executor.execute_sql(
            "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id "
            "WHERE dept.budget > 400"
        )
        stats = executor.last_stats
        assert stats.rows_scanned > 0
        assert stats.hash_joins == 1
        assert stats.hash_probes > 0
        assert stats.rows_output == 4
        assert stats.as_dict()["hash_joins"] == 1

    def test_total_stats_accumulate(self, emp_db):
        executor = Executor(emp_db)
        executor.execute_sql("SELECT name FROM emp")
        executor.execute_sql("SELECT dname FROM dept")
        assert executor.total_stats.full_scans >= 2

    def test_explain_reports_hash_join(self, emp_db):
        text = emp_db.explain_sql(
            "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id"
        )
        assert "hash join" in text
        assert "full-scan" in text

    def test_explain_reports_index_scan(self, emp_db):
        text = emp_db.explain_sql("SELECT name FROM emp WHERE id = 3")
        assert "index-scan(id" in text

    def test_explain_reports_nested_loop(self, emp_db):
        text = emp_db.explain_sql(
            "SELECT name FROM emp JOIN dept ON emp.salary < dept.budget"
        )
        assert "nested-loop" in text

    def test_explain_includes_subplans(self, emp_db):
        text = emp_db.explain_sql(
            "SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)"
        )
        assert "subplan" in text

    def test_naive_strategy_tagged(self, emp_db):
        executor = Executor(emp_db, use_planner=False)
        executor.execute_sql("SELECT name FROM emp")
        assert executor.last_stats.strategy == "naive"

    def test_context_execute_exposes_stats(self, emp_db):
        context = NLIDBContext(emp_db)
        interpretation = Interpretation(
            system="test",
            confidence=1.0,
            sql=parse_select("SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id"),
        )
        context.execute(interpretation)
        assert context.last_stats is not None
        assert context.last_stats.hash_joins == 1


# ---------------------------------------------------------------------------
# Planner analysis details
# ---------------------------------------------------------------------------


class TestPlannerAnalysis:
    def test_ambiguous_column_stays_residual(self, emp_db):
        # "budget" is unique but an unqualified "id" is ambiguous across
        # emp/dept — the conjunct must not be pushed (the naive path
        # raises AmbiguousColumnError when it evaluates it).
        plan = Planner(emp_db).plan(
            parse_select(
                "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id WHERE id = 1"
            )
        )
        assert plan.pushed_count == 0
        assert len(plan.residual_where) == 1

    def test_subquery_conjunct_stays_residual(self, emp_db):
        plan = Planner(emp_db).plan(
            parse_select(
                "SELECT name FROM emp WHERE dept_id IN (SELECT id FROM dept)"
            )
        )
        assert plan.pushed_count == 0

    def test_multi_table_conjunct_stays_residual(self, emp_db):
        plan = Planner(emp_db).plan(
            parse_select(
                "SELECT name FROM emp JOIN dept ON emp.dept_id = dept.id "
                "WHERE emp.salary < dept.budget"
            )
        )
        assert plan.pushed_count == 0
        assert plan.joins[0].strategy == "hash"

    def test_or_not_split(self, emp_db):
        plan = Planner(emp_db).plan(
            parse_select("SELECT name FROM emp WHERE salary > 100 OR dept_id = 2")
        )
        assert plan.pushed_count == 1  # the whole OR is one pushable conjunct

    def test_plan_summary_mentions_pushdown(self, emp_db):
        plan = Planner(emp_db).plan(
            parse_select("SELECT name FROM emp WHERE salary > 100 AND dept_id = 1")
        )
        assert "pushed=" in plan.summary()


# ---------------------------------------------------------------------------
# _hashable (GROUP BY / DISTINCT on composite values)
# ---------------------------------------------------------------------------


class TestHashable:
    def test_nested_structures(self):
        key = _hashable([1, [2, {"a": 1}], {3, 4}])
        hash(key)  # must not raise
        assert key == _hashable([1, [2, {"a": 1}], {3, 4}])

    def test_distinct_values_kept_distinct(self):
        assert _hashable([1, 2]) != _hashable([1, 3])

    def test_group_by_list_literal_executes(self, emp_db):
        # Programmatic AST with an (unhashable) list literal as group key.
        stmt = SelectStatement(
            select_items=(SelectItem(Literal(1), alias="one"),),
            group_by=(Literal([1, 2]),),
        )
        result = Executor(emp_db).execute(stmt)
        assert result.rows == [(1,)]


# ---------------------------------------------------------------------------
# Inverted-index invalidation (MetadataIndex / ValueIndex)
# ---------------------------------------------------------------------------


class TestInvertedIndexInvalidation:
    def test_value_index_sees_new_rows(self, emp_db):
        index = ValueIndex(emp_db)
        assert index.lookup("zanzibar") == []
        emp_db.insert("emp", [42, "Zanzibar", 1, 77.0, "2024-04-04"])
        hits = index.lookup("zanzibar")
        assert hits and hits[0].value == "Zanzibar"

    def test_metadata_index_sees_new_tables(self, emp_db):
        index = MetadataIndex(emp_db)
        assert index.lookup("gadgets") == []
        emp_db.create_table(
            TableSchema("gadgets", [Column("id", DataType.INTEGER)])
        )
        assert any(h.kind == "table" for h in index.lookup("gadgets"))

    def test_explicit_invalidate(self, emp_db):
        index = ValueIndex(emp_db)
        index.invalidate()
        assert any(h.value == "Ada" for h in index.lookup("ada"))


# ---------------------------------------------------------------------------
# Escape hatch
# ---------------------------------------------------------------------------


class TestEscapeHatch:
    def test_use_planner_false_still_correct(self, emp_db):
        naive = Executor(emp_db, use_planner=False)
        result = naive.execute_sql(
            "SELECT name, dname FROM emp JOIN dept ON emp.dept_id = dept.id "
            "ORDER BY name"
        )
        assert result.rows[0] == ("Ada", "Engineering")
        assert naive.last_stats.hash_joins == 0

    def test_context_use_planner_flag(self, emp_db):
        context = NLIDBContext(emp_db, use_planner=False)
        assert context.executor.use_planner is False
