"""Tests for NL explanations, date conditions, and conversational reset."""

import pytest

from repro.bench.domains import build_domain
from repro.core import NLIDBContext
from repro.core.complexity import ComplexityTier
from repro.core.intermediate import (
    OQLCondition,
    OQLHasCondition,
    OQLItem,
    OQLOrder,
    OQLQuery,
    PropertyRef,
)
from repro.dialogue import ConversationalNLIDB
from repro.systems import AthenaSystem


@pytest.fixture(scope="module")
def retail_ctx():
    return NLIDBContext(build_domain("retail"))


@pytest.fixture(scope="module")
def hr_ctx():
    return NLIDBContext(build_domain("hr"))


class TestToEnglish:
    def test_selection(self):
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name")),),
            conditions=(OQLCondition(PropertyRef("customer", "city"), "=", "Berlin"),),
        )
        text = query.to_english()
        assert "the name of each customer" in text
        assert "customer's city is 'Berlin'" in text

    def test_aggregate_and_group(self):
        query = OQLQuery(
            select=(
                OQLItem(ref=PropertyRef("customer", "city")),
                OQLItem(ref=PropertyRef("order", "total"), aggregate="sum"),
            ),
            group_by=(PropertyRef("customer", "city"),),
        )
        text = query.to_english()
        assert "the total total of each order" in text
        assert "grouped by city" in text

    def test_has_no(self):
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("customer", "name")),),
            conditions=(OQLHasCondition("order", negated=True),),
        )
        assert "it has no order" in query.to_english()

    def test_topk(self):
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("product", "name")),),
            order_by=(OQLOrder(OQLItem(ref=PropertyRef("product", "price")), "desc"),),
            limit=3,
        )
        text = query.to_english()
        assert "descending" in text and "top 3" in text

    def test_nested_subquery(self):
        inner = OQLQuery(select=(OQLItem(ref=PropertyRef("product", "price"), aggregate="avg"),))
        query = OQLQuery(
            select=(OQLItem(ref=PropertyRef("product", "name")),),
            conditions=(OQLCondition(PropertyRef("product", "price"), ">", subquery=inner),),
        )
        text = query.to_english()
        assert "is greater than (find the average price" in text

    def test_count_all(self):
        query = OQLQuery(select=(OQLItem(count_all=True, concept="order"),))
        assert "how many order(s)" in query.to_english()


class TestDateConditions:
    def test_explicit_date_property(self, hr_ctx):
        interps = AthenaSystem().interpret(
            "employees with hire date after 2020-01-01", hr_ctx
        )
        sql = interps[0].to_sql(hr_ctx.ontology, hr_ctx.mapping).to_sql()
        assert "hire_date > '2020-01-01'" in sql

    def test_sole_date_fallback(self, hr_ctx):
        interps = AthenaSystem().interpret("employees hired before 2019-06-01", hr_ctx)
        sql = interps[0].to_sql(hr_ctx.ontology, hr_ctx.mapping).to_sql()
        assert "hire_date < '2019-06-01'" in sql

    def test_number_still_binds_numeric(self, hr_ctx):
        interps = AthenaSystem().interpret(
            "employees with salary over 100000", hr_ctx
        )
        sql = interps[0].to_sql(hr_ctx.ontology, hr_ctx.mapping).to_sql()
        assert "salary > 100000" in sql

    def test_workload_date_template(self, hr_ctx):
        from repro.bench.workloads import WorkloadGenerator

        generator = WorkloadGenerator(hr_ctx.database, seed=11)
        examples = generator.generate(ComplexityTier.SELECTION, 20)
        date_examples = [e for e in examples if e.template == "select-date"]
        assert date_examples  # the template fires
        system = AthenaSystem()
        from repro.bench.harness import evaluate_system

        outcomes = evaluate_system(system, hr_ctx, date_examples)
        assert all(o.correct for o in outcomes)


class TestConversationReset:
    def test_reset_phrase_clears_state(self, retail_ctx):
        bot = ConversationalNLIDB(retail_ctx, use_intents=False)
        bot.ask("show the customers with city Berlin")
        assert bot.state.last_query() is not None
        turn = bot.ask("start over")
        assert turn.intent == "reset"
        assert bot.state.last_query() is None

    def test_followup_after_reset_is_fresh(self, retail_ctx):
        bot = ConversationalNLIDB(retail_ctx, use_intents=False)
        bot.ask("show the customers with city Berlin")
        bot.ask("never mind")
        turn = bot.ask("what about Paris")
        # no context left: "what about Paris" cannot be resolved as edit
        assert "Berlin" not in (turn.sql or "")
