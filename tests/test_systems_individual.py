"""Tests for the individual surveyed systems (SODA/SQAK/NaLIR/ATHENA/
TEMPLAR/QUEST/Hybrid)."""

import pytest

from repro.core import NLIDBContext, ScriptedUser
from repro.bench.domains import build_domain
from repro.bench.workloads import WorkloadGenerator
from repro.systems import (
    AthenaNoBISystem,
    AthenaSystem,
    HybridSystem,
    NalirSystem,
    QueryLog,
    QuestSystem,
    SodaSystem,
    SqakSystem,
    TemplarSystem,
)


@pytest.fixture(scope="module")
def hr_ctx():
    return NLIDBContext(build_domain("hr"))


def top_sql(system, question, ctx):
    interps = system.interpret(question, ctx)
    if not interps:
        return None
    top = max(interps, key=lambda i: i.confidence)
    return top.to_sql(ctx.ontology, ctx.mapping).to_sql()


class TestSoda:
    def test_simple_selection(self, hr_ctx):
        sql = top_sql(SodaSystem(), "employees with title engineer", hr_ctx)
        assert sql is not None and "title = 'engineer'" in sql

    def test_no_aggregation_capability(self, hr_ctx):
        sql = top_sql(SodaSystem(), "average salary of employees", hr_ctx)
        assert sql is None or "AVG" not in sql

    def test_abstains_on_join_question(self, hr_ctx):
        assert (
            top_sql(SodaSystem(), "employees whose department city is Berlin", hr_ctx)
            is None
        )

    def test_abstains_on_unknown_keyword(self, hr_ctx):
        assert top_sql(SodaSystem(), "employees with flurbs", hr_ctx) is None

    def test_family_label(self):
        assert SodaSystem().family == "entity"


class TestSqak:
    def test_aggregation_pattern(self, hr_ctx):
        sql = top_sql(SqakSystem(), "average salary of employees", hr_ctx)
        assert "AVG(employees.salary)" in sql

    def test_group_by_pattern(self, hr_ctx):
        sql = top_sql(SqakSystem(), "count the employees by title", hr_ctx)
        assert "GROUP BY employees.title" in sql

    def test_top_k_pattern(self, hr_ctx):
        sql = top_sql(SqakSystem(), "top 2 employees by salary", hr_ctx)
        assert "LIMIT 2" in sql and "DESC" in sql

    def test_still_single_table(self, hr_ctx):
        sql = top_sql(SqakSystem(), "average salary per department name", hr_ctx)
        assert sql is None or "JOIN" not in sql


class TestNalir:
    def test_join_capability(self, hr_ctx):
        sql = top_sql(
            NalirSystem(), "show the name of employees whose department name is Sales", hr_ctx
        )
        assert sql is not None and "JOIN" in sql

    def test_counts_clarifications(self, hr_ctx):
        system = NalirSystem(user=ScriptedUser([0, 0, 0, 0]))
        system.interpret("what is the id", hr_ctx)
        assert system.clarifications_asked >= 1

    def test_clarification_can_flip_mapping(self, hr_ctx):
        # option 1 (the runner-up mapping) instead of option 0
        flip = NalirSystem(user=ScriptedUser([1]))
        keep = NalirSystem(user=ScriptedUser([0]))
        sql_flip = top_sql(flip, "what is the budget", hr_ctx)
        sql_keep = top_sql(keep, "what is the budget", hr_ctx)
        assert sql_flip != sql_keep

    def test_clarify_off_asks_nothing(self, hr_ctx):
        system = NalirSystem(clarify=False)
        system.interpret("what is the id", hr_ctx)
        assert system.clarifications_asked == 0


class TestAthena:
    def test_nested_average(self, hr_ctx):
        sql = top_sql(
            AthenaSystem(), "which employees have salary above the average salary", hr_ctx
        )
        assert "(SELECT AVG(employees.salary) FROM employees)" in sql

    def test_anti_join(self, hr_ctx):
        sql = top_sql(AthenaSystem(), "departments that have no projects", hr_ctx)
        assert "NOT IN" in sql

    def test_nobi_ablation_no_nesting(self, hr_ctx):
        sql = top_sql(
            AthenaNoBISystem(),
            "which employees have salary above the average salary",
            hr_ctx,
        )
        # it answers (wrongly) with a flat aggregate — but never nests
        assert sql is None or "(SELECT" not in sql

    def test_executes_end_to_end(self, hr_ctx):
        result = AthenaSystem().answer("how many employees are there", hr_ctx)
        assert result is not None and result.scalar() == len(
            hr_ctx.database.table("employees")
        )


class TestTemplar:
    def test_log_ingestion(self):
        log = QueryLog()
        assert log.add("SELECT AVG(budget) FROM projects")
        assert not log.add("NOT SQL AT ALL !!!")
        assert log.size == 1
        assert log.column_frequency("projects", "budget") == 1.0

    def test_log_counts_joins(self):
        log = QueryLog()
        log.add("SELECT e.name FROM employees e JOIN departments d ON e.department_id = d.id")
        assert log.join_pairs[frozenset(("employees", "departments"))] == 1

    def test_empty_log_equals_baseline(self, hr_ctx):
        baseline = top_sql(TemplarSystem(), "what is the average budget", hr_ctx)
        assert baseline is not None

    def test_log_steers_ambiguous_mapping(self, hr_ctx):
        log = QueryLog()
        for _ in range(5):
            log.add("SELECT AVG(budget) FROM projects")
        steered = top_sql(TemplarSystem(log=log), "what is the average budget", hr_ctx)
        assert "projects.budget" in steered
        other_log = QueryLog()
        for _ in range(5):
            other_log.add("SELECT AVG(budget) FROM departments")
        other = top_sql(
            TemplarSystem(log=other_log), "what is the average budget", hr_ctx
        )
        assert "departments.budget" in other


class TestQuest:
    def test_fit_counts_sequences(self, hr_ctx):
        history = WorkloadGenerator(hr_ctx.database, seed=3).generate_mixed(4)
        system = QuestSystem()
        trained = system.fit(history, hr_ctx)
        assert trained > 0
        assert system.hmm.trained_pairs >= 0

    def test_interprets_after_training(self, hr_ctx):
        history = WorkloadGenerator(hr_ctx.database, seed=3).generate_mixed(4)
        system = QuestSystem()
        system.fit(history, hr_ctx)
        sql = top_sql(system, "employees with title engineer", hr_ctx)
        assert sql is not None and "engineer" in sql

    def test_hmm_transition_smoothing(self):
        from repro.systems import ElementHMM

        hmm = ElementHMM()
        hmm.observe_sequence(["a", "b"])
        seen = hmm.log_transition("a", "b")
        unseen = hmm.log_transition("a", "zzz")
        assert seen > unseen

    def test_family_label(self):
        assert QuestSystem().family == "hybrid"


class TestHybrid:
    class _Abstainer:
        name = "abstainer"
        family = "entity"

        def interpret(self, question, context):
            return []

    def test_falls_back_to_ml(self, hr_ctx):
        fallback = AthenaSystem()
        hybrid = HybridSystem(self._Abstainer(), fallback)
        interps = hybrid.interpret("employees with title engineer", hr_ctx)
        assert interps and hybrid.ml_answers == 1

    def test_prefers_confident_entity(self, hr_ctx):
        hybrid = HybridSystem(AthenaSystem(), self._Abstainer())
        interps = hybrid.interpret("employees with title engineer", hr_ctx)
        assert interps and hybrid.entity_answers == 1

    def test_low_confidence_entity_kept_as_last_resort(self, hr_ctx):
        hybrid = HybridSystem(
            AthenaSystem(), self._Abstainer(), confidence_threshold=2.0
        )
        interps = hybrid.interpret("employees with title engineer", hr_ctx)
        assert interps  # entity answer reused despite being 'low confidence'
