"""Unit tests for value types, coercion and comparison semantics."""

import datetime

import pytest

from repro.sqldb import DataType, TypeMismatchError, parse_date
from repro.sqldb.types import (
    coerce,
    format_value,
    infer_type,
    sort_key,
    values_compare,
    values_equal,
)


class TestCoerce:
    def test_integer_accepts_int(self):
        assert coerce(5, DataType.INTEGER) == 5

    def test_integer_accepts_integral_float(self):
        assert coerce(5.0, DataType.INTEGER) == 5

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            coerce(5.5, DataType.INTEGER)

    def test_integer_parses_string(self):
        assert coerce("42", DataType.INTEGER) == 42

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            coerce(True, DataType.INTEGER)

    def test_float_widens_int(self):
        value = coerce(3, DataType.FLOAT)
        assert value == 3.0 and isinstance(value, float)

    def test_float_rejects_text(self):
        with pytest.raises(TypeMismatchError):
            coerce("abc", DataType.FLOAT)

    def test_text_accepts_str_only(self):
        assert coerce("hi", DataType.TEXT) == "hi"
        with pytest.raises(TypeMismatchError):
            coerce(3, DataType.TEXT)

    def test_boolean_strict(self):
        assert coerce(True, DataType.BOOLEAN) is True
        with pytest.raises(TypeMismatchError):
            coerce(1, DataType.BOOLEAN)

    def test_date_from_iso_string(self):
        assert coerce("2021-03-04", DataType.DATE) == datetime.date(2021, 3, 4)

    def test_date_rejects_malformed(self):
        with pytest.raises(TypeMismatchError):
            coerce("2021-13-40", DataType.DATE)

    def test_null_passes_any_type(self):
        for dtype in DataType:
            assert coerce(None, dtype) is None


class TestParseDate:
    def test_roundtrip(self):
        assert parse_date("1999-12-31") == datetime.date(1999, 12, 31)

    def test_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            parse_date("not-a-date")


class TestInferType:
    def test_basic_inference(self):
        assert infer_type(1) is DataType.INTEGER
        assert infer_type(1.5) is DataType.FLOAT
        assert infer_type("x") is DataType.TEXT
        assert infer_type(False) is DataType.BOOLEAN
        assert infer_type(datetime.date(2020, 1, 1)) is DataType.DATE
        assert infer_type(None) is None


class TestValuesEqual:
    def test_null_never_equals(self):
        assert not values_equal(None, None)
        assert not values_equal(None, 1)

    def test_numeric_cross_type(self):
        assert values_equal(1, 1.0)

    def test_bool_not_numeric(self):
        assert not values_equal(True, 1)

    def test_text(self):
        assert values_equal("a", "a")
        assert not values_equal("a", "A")


class TestValuesCompare:
    def test_numbers(self):
        assert values_compare(1, 2) == -1
        assert values_compare(2.5, 2.5) == 0
        assert values_compare(3, 2) == 1

    def test_null_incomparable(self):
        assert values_compare(None, 1) is None

    def test_mixed_types_incomparable(self):
        assert values_compare("a", 1) is None

    def test_dates(self):
        a, b = datetime.date(2020, 1, 1), datetime.date(2021, 1, 1)
        assert values_compare(a, b) == -1

    def test_strings(self):
        assert values_compare("apple", "banana") == -1


class TestSortKey:
    def test_nulls_sort_first(self):
        values = [3, None, 1]
        assert sorted(values, key=sort_key) == [None, 1, 3]

    def test_mixed_types_total_order(self):
        values = ["b", 2, None, datetime.date(2020, 1, 1), 1, "a"]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None
        assert ordered[1:3] == [1, 2]


class TestFormatValue:
    def test_null(self):
        assert format_value(None) == "NULL"

    def test_string_escaping(self):
        assert format_value("O'Hara") == "'O''Hara'"

    def test_date(self):
        assert format_value(datetime.date(2020, 2, 3)) == "'2020-02-03'"

    def test_bool(self):
        assert format_value(True) == "TRUE"
