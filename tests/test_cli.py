"""Tests for the command-line interface."""


from repro.cli import main


class TestAsk:
    def test_simple_question(self, capsys):
        code = main(["ask", "show the customers with city Berlin", "--domain", "retail"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SQL:" in out and "Berlin" in out

    def test_explain_shows_evidence(self, capsys):
        code = main(
            [
                "ask",
                "average price of products",
                "--domain",
                "retail",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OQL:" in out and "confidence" in out

    def test_system_selection(self, capsys):
        code = main(
            ["ask", "customers with city Berlin", "--domain", "retail", "--system", "soda"]
        )
        assert code == 0

    def test_abstention_exit_code(self, capsys):
        code = main(
            ["ask", "flibber the frobnicator", "--domain", "retail", "--system", "soda"]
        )
        out = capsys.readouterr().out
        assert code == 1 and "abstained" in out

    def test_rows_flag_limits_output(self, capsys):
        main(["ask", "show the customers with city Berlin", "--domain", "retail", "--rows", "1"])
        out = capsys.readouterr().out
        assert "more rows" in out or out.count("\n") < 12


class TestComplete:
    def test_suggestions(self, capsys):
        code = main(["complete", "movies with", "--domain", "movies"])
        out = capsys.readouterr().out
        assert code == 0 and "[property]" in out

    def test_full_sentence_executes(self, capsys):
        code = main(["complete", "movies with genre drama", "--domain", "movies"])
        out = capsys.readouterr().out
        assert code == 0 and "SQL:" in out


class TestSystems:
    def test_lists_registry_and_domains(self, capsys):
        code = main(["systems"])
        out = capsys.readouterr().out
        assert code == 0
        assert "athena" in out and "retail" in out


class TestChat:
    def test_scripted_session(self, capsys, monkeypatch):
        lines = iter(["show the customers with city Berlin", "what about Paris", ""])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        code = main(["chat", "--domain", "retail"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Berlin" in out and "Paris" in out
