"""Tests for the command-line interface."""


from repro.cli import main


class TestAsk:
    def test_simple_question(self, capsys):
        code = main(["ask", "show the customers with city Berlin", "--domain", "retail"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SQL:" in out and "Berlin" in out

    def test_explain_shows_evidence(self, capsys):
        code = main(
            [
                "ask",
                "average price of products",
                "--domain",
                "retail",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OQL:" in out and "confidence" in out

    def test_system_selection(self, capsys):
        code = main(
            ["ask", "customers with city Berlin", "--domain", "retail", "--system", "soda"]
        )
        assert code == 0

    def test_abstention_exit_code(self, capsys):
        code = main(
            ["ask", "flibber the frobnicator", "--domain", "retail", "--system", "soda"]
        )
        out = capsys.readouterr().out
        assert code == 1 and "abstained" in out

    def test_rows_flag_limits_output(self, capsys):
        main(["ask", "show the customers with city Berlin", "--domain", "retail", "--rows", "1"])
        out = capsys.readouterr().out
        assert "more rows" in out or out.count("\n") < 12


class TestComplete:
    def test_suggestions(self, capsys):
        code = main(["complete", "movies with", "--domain", "movies"])
        out = capsys.readouterr().out
        assert code == 0 and "[property]" in out

    def test_full_sentence_executes(self, capsys):
        code = main(["complete", "movies with genre drama", "--domain", "movies"])
        out = capsys.readouterr().out
        assert code == 0 and "SQL:" in out


class TestSystems:
    def test_lists_registry_and_domains(self, capsys):
        code = main(["systems"])
        out = capsys.readouterr().out
        assert code == 0
        assert "athena" in out and "retail" in out


class TestChat:
    def test_scripted_session(self, capsys, monkeypatch):
        lines = iter(["show the customers with city Berlin", "what about Paris", ""])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        code = main(["chat", "--domain", "retail"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Berlin" in out and "Paris" in out


class TestServe:
    def test_clean_question(self, capsys):
        code = main(
            ["serve", "show the customers with city Berlin", "--domain", "retail"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[ok]" in out and "availability   1.0" in out

    def test_injected_faults_degrade_not_crash(self, capsys):
        code = main(
            [
                "serve",
                "show the customers with city Berlin",
                "--domain",
                "retail",
                "--inject",
                "execute:error:1.0",
                "--fault-seed",
                "7",
                "--retries",
                "1",
                "--backoff",
                "0",
            ]
        )
        out = capsys.readouterr().out
        # every system's execute fails: served degraded-to-nothing, exit 1
        assert code == 1
        assert "FAILED" in out and "fell past" in out

    def test_workload_json_report(self, capsys, tmp_path):
        import json

        report = tmp_path / "serve.json"
        code = main(
            [
                "serve",
                "--domain",
                "university",
                "--workload",
                "1",
                "--inject",
                "execute:error:0.5",
                "--fault-seed",
                "3",
                "--backoff",
                "0",
                "--json",
                str(report),
            ]
        )
        capsys.readouterr()
        assert code in (0, 1)
        payload = json.loads(report.read_text())
        assert payload["fault_plan"] == "execute:error:0.5"
        assert payload["summary"]["total"] == len(payload["results"])

    def test_requires_question_or_workload(self, capsys):
        code = main(["serve", "--domain", "retail"])
        out = capsys.readouterr().out
        assert code == 2 and "provide a question" in out

    def test_bench_serve_columns(self, capsys):
        code = main(
            [
                "bench",
                "--domain",
                "university",
                "--systems",
                "athena,soda",
                "--per-tier",
                "1",
                "--jobs",
                "1",
                "--serve",
                "--backoff",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "avail" in out and "degraded" in out and "retries" in out
