"""Unit tests for the semantic interpreter (annotation → OQL)."""

import pytest

from repro.core import ComplexityTier, NLIDBContext, classify
from repro.systems import EntityAnnotator, InterpreterConfig, SemanticInterpreter


@pytest.fixture
def full_interpreter():
    return SemanticInterpreter(InterpreterConfig.full(), "test")


@pytest.fixture
def annotator():
    return EntityAnnotator()


def interpret(interpreter, annotator, question, ctx):
    annotated = annotator.annotate(question, ctx)
    return interpreter.interpret(annotated, ctx)


def top_sql(interpreter, annotator, question, ctx):
    interps = interpret(interpreter, annotator, question, ctx)
    assert interps, f"no interpretation for {question!r}"
    return interps[0].to_sql(ctx.ontology, ctx.mapping).to_sql()


class TestValueConditions:
    def test_equality_condition(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(full_interpreter, annotator, "customers in Berlin", shop_ctx)
        assert "customers.city = 'Berlin'" in sql

    def test_negated_condition(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(full_interpreter, annotator, "customers not in Berlin", shop_ctx)
        assert "!=" in sql or "NOT" in sql

    def test_condition_property_not_projected(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter, annotator, "customers with city Berlin", shop_ctx
        )
        # projection is the display property, not the condition column twice
        assert sql.count("customers.city") == 1

    def test_duplicate_conditions_deduped(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(full_interpreter, annotator, "customers in Berlin Berlin", shop_ctx)
        assert sql.count("'Berlin'") == 1


class TestComparisons:
    def test_greater_than(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter, annotator, "products with price over 20", shop_ctx
        )
        assert "products.price > 20" in sql

    def test_less_than(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter, annotator, "products with price under 10", shop_ctx
        )
        assert "products.price < 10" in sql

    def test_at_least(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter, annotator, "products with price at least 10", shop_ctx
        )
        assert ">= 10" in sql

    def test_between(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter,
            annotator,
            "products with price between 5 and 20",
            shop_ctx,
        )
        assert "BETWEEN 5" in sql and "AND 20" in sql

    def test_sole_measure_fallback(self, emp_ctx, full_interpreter, annotator):
        # dept has one non-id measure (budget): "departments over 600"
        sql = top_sql(full_interpreter, annotator, "departments over 600", emp_ctx)
        assert "budget > 600" in sql


class TestAggregation:
    def test_count(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter, annotator, "how many customers are in Berlin", shop_ctx
        )
        assert sql.startswith("SELECT COUNT(*)")

    def test_avg(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter, annotator, "average price of products", shop_ctx
        )
        assert "AVG(products.price)" in sql

    def test_sum_cue_word_is_property_when_alone(self, shop_ctx, full_interpreter, annotator):
        # "total of orders" — 'total' is the orders column, not SUM
        sql = top_sql(full_interpreter, annotator, "the total of orders", shop_ctx)
        assert "orders.total" in sql and "SUM" not in sql

    def test_sum_cue_before_other_measure(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter, annotator, "total price of products", shop_ctx
        )
        assert "SUM(products.price)" in sql

    def test_count_concept_joins(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter, annotator, "number of orders per customer name", shop_ctx
        )
        assert "COUNT(*)" in sql and "JOIN" in sql and "GROUP BY" in sql


class TestGroupByAndTopK:
    @pytest.fixture
    def retail_ctx(self):
        from repro.bench.domains import build_domain

        return NLIDBContext(build_domain("retail"))

    def test_group_by(self, retail_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter, annotator, "count the products by category", retail_ctx
        )
        assert "GROUP BY products.category" in sql

    def test_group_key_projected_first(self, retail_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter,
            annotator,
            "average price of products by category",
            retail_ctx,
        )
        assert sql.startswith("SELECT products.category, AVG(products.price)")

    def test_top_k(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(full_interpreter, annotator, "top 3 products by price", shop_ctx)
        assert "ORDER BY products.price DESC" in sql and "LIMIT 3" in sql

    def test_top_word_number(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(full_interpreter, annotator, "top five products by price", shop_ctx)
        assert "LIMIT 5" in sql


class TestNested:
    def test_above_average(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter,
            annotator,
            "which products have price above the average price",
            shop_ctx,
        )
        assert "(SELECT AVG(products.price) FROM products)" in sql
        assert classify(sql) is ComplexityTier.NESTED

    def test_below_average(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter,
            annotator,
            "products with price below the average price",
            shop_ctx,
        )
        assert "<" in sql and "AVG" in sql

    def test_has_no(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter, annotator, "customers that have no orders", shop_ctx
        )
        assert "NOT IN" in sql

    def test_fanout_condition_becomes_in_subquery(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter,
            annotator,
            "customers that have orders with total over 60",
            shop_ctx,
        )
        assert "IN (SELECT orders.customer_id FROM orders" in sql

    def test_n_to_one_condition_stays_join(self, shop_ctx, full_interpreter, annotator):
        sql = top_sql(
            full_interpreter,
            annotator,
            "show the total of orders whose customer city is Berlin",
            shop_ctx,
        )
        assert "JOIN" in sql and "IN (SELECT" not in sql


class TestConfigGating:
    def test_keyword_rejects_aggregation(self, shop_ctx, annotator):
        keyword = SemanticInterpreter(InterpreterConfig.keyword(), "kw")
        interps = interpret(keyword, annotator, "average price of products", shop_ctx)
        assert all(
            "AVG" not in i.to_sql(shop_ctx.ontology, shop_ctx.mapping).to_sql()
            for i in interps
        )

    def test_keyword_abstains_cross_concept(self, shop_ctx, annotator):
        keyword = SemanticInterpreter(InterpreterConfig.keyword(), "kw")
        interps = interpret(
            keyword, annotator, "customers with orders over 60", shop_ctx
        )
        assert interps == []

    def test_keyword_abstains_on_uncovered_keyword(self, shop_ctx, annotator):
        keyword = SemanticInterpreter(InterpreterConfig.keyword(), "kw")
        interps = interpret(
            keyword, annotator, "customers in Berlin frobnicate", shop_ctx
        )
        assert interps == []

    def test_parsing_cannot_express_antijoin(self, shop_ctx, annotator):
        # a parse-tier system answers — but without the NOT IN anti-join
        # only the BI extension can produce (it gets the answer wrong,
        # which is what E1 measures)
        parsing = SemanticInterpreter(InterpreterConfig.parsing(), "parse")
        interps = interpret(
            parsing, annotator, "customers that have no orders", shop_ctx
        )
        for interp in interps:
            sql = interp.to_sql(shop_ctx.ontology, shop_ctx.mapping).to_sql()
            assert "NOT IN" not in sql

    def test_full_allows_everything(self, shop_ctx, annotator):
        full = SemanticInterpreter(InterpreterConfig.full(), "full")
        interps = interpret(
            full, annotator, "customers that have no orders", shop_ctx
        )
        assert interps


class TestRankingBehavior:
    def test_interpretations_sorted_by_confidence(self, emp_ctx, full_interpreter, annotator):
        interps = interpret(full_interpreter, annotator, "what is the id", emp_ctx)
        confidences = [i.confidence for i in interps]
        assert confidences == sorted(confidences, reverse=True)

    def test_evidence_recorded(self, shop_ctx, full_interpreter, annotator):
        interps = interpret(full_interpreter, annotator, "customers in Berlin", shop_ctx)
        assert interps[0].evidence

    def test_max_interpretations_cap(self, emp_ctx, annotator):
        capped = SemanticInterpreter(
            InterpreterConfig(max_interpretations=1), "capped"
        )
        interps = interpret(capped, annotator, "what is the id", emp_ctx)
        assert len(interps) <= 1
