"""Edge-case and failure-injection tests across the stack."""

import pytest

from repro.core import NLIDBContext
from repro.ontology import build_ontology
from repro.sqldb import (
    Column,
    Database,
    DataType,
    ExecutionError,
    TableSchema,
    execute_sql,
)
from repro.systems import AthenaSystem, EntityAnnotator, SodaSystem


def single_table_db(rows):
    db = Database("edge")
    db.create_table(
        TableSchema(
            "things",
            [
                Column("id", DataType.INTEGER, primary_key=True),
                Column("name", DataType.TEXT),
                Column("score", DataType.FLOAT),
            ],
        )
    )
    db.insert_many("things", rows)
    return db


class TestEmptyAndNullData:
    def test_empty_table_queries(self):
        db = single_table_db([])
        assert execute_sql(db, "SELECT name FROM things").rows == []
        assert execute_sql(db, "SELECT COUNT(*) FROM things").scalar() == 0
        assert execute_sql(db, "SELECT SUM(score) FROM things").scalar() is None
        assert execute_sql(db, "SELECT name, SUM(score) FROM things").rows == [
            (None, None)
        ]

    def test_all_null_column(self):
        db = single_table_db([[1, None, None], [2, None, None]])
        assert execute_sql(db, "SELECT AVG(score) FROM things").scalar() is None
        assert execute_sql(db, "SELECT COUNT(name) FROM things").scalar() == 0

    def test_context_over_empty_table(self):
        db = single_table_db([])
        context = NLIDBContext(db)  # must not crash building indexes
        assert context.ontology.has_concept("thing")

    def test_athena_on_empty_data(self):
        db = single_table_db([])
        context = NLIDBContext(db)
        interps = AthenaSystem().interpret("how many things are there", context)
        assert interps
        result = context.execute(interps[0])
        assert result.scalar() == 0

    def test_ontology_from_single_column_tables(self):
        db = Database("mini")
        db.create_table(TableSchema("solo", [Column("v", DataType.TEXT)]))
        ontology, mapping = build_ontology(db)
        assert ontology.has_concept("solo")
        assert mapping.table_of("solo") == "solo"


class TestUnicodeAndOddValues:
    def test_unicode_values_roundtrip(self):
        db = single_table_db([[1, "Zürich Café", 1.0], [2, "naïve — test", 2.0]])
        result = execute_sql(db, "SELECT name FROM things WHERE name = 'Zürich Café'")
        assert result.rows == [("Zürich Café",)]

    def test_quote_escaping_in_values(self):
        db = single_table_db([[1, "O'Hara", 1.0]])
        result = execute_sql(db, "SELECT name FROM things WHERE name = 'O''Hara'")
        assert result.rows == [("O'Hara",)]

    def test_annotator_handles_unicode_question(self):
        db = single_table_db([[1, "Zürich", 1.0]])
        context = NLIDBContext(db)
        annotated = EntityAnnotator().annotate("things in Zürich", context)
        values = [a.payload for a in annotated.annotations if a.kind == "value"]
        assert any(v[1] == "Zürich" for v in values)

    def test_very_long_question_does_not_crash(self):
        db = single_table_db([[1, "alpha", 1.0]])
        context = NLIDBContext(db)
        question = "show me the things " + "really " * 80 + "with name alpha"
        AthenaSystem().interpret(question, context)

    def test_empty_question(self):
        db = single_table_db([[1, "alpha", 1.0]])
        context = NLIDBContext(db)
        assert AthenaSystem().interpret("", context) == []
        assert SodaSystem().interpret("   ", context) == []


class TestFailureIsolation:
    def test_harness_survives_crashing_system(self):
        from repro.bench.harness import evaluate_system
        from repro.bench.workloads import QueryExample
        from repro.core.complexity import ComplexityTier
        from repro.core.pipeline import NLIDBSystem

        class Crasher(NLIDBSystem):
            name = "crasher"

            def interpret(self, question, context):
                raise RuntimeError("boom")

        db = single_table_db([[1, "a", 1.0]])
        context = NLIDBContext(db)
        example = QueryExample(
            "q", "SELECT name FROM things", ComplexityTier.SELECTION, "edge", "t"
        )
        outcomes = evaluate_system(Crasher(), context, [example])
        assert outcomes[0].answered is False and outcomes[0].correct is False

    def test_answer_swallows_execution_errors(self):
        from repro.core.interpretation import Interpretation
        from repro.core.pipeline import NLIDBSystem
        from repro.sqldb import parse_select

        class BadSql(NLIDBSystem):
            name = "badsql"

            def interpret(self, question, context):
                return [
                    Interpretation(
                        "badsql", 1.0, sql=parse_select("SELECT missing FROM nowhere")
                    )
                ]

        db = single_table_db([[1, "a", 1.0]])
        context = NLIDBContext(db)
        assert BadSql().answer("anything", context) is None

    def test_division_by_zero_is_execution_error(self):
        db = single_table_db([[1, "a", 0.0]])
        with pytest.raises(ExecutionError):
            execute_sql(db, "SELECT 1 / score FROM things")

    def test_self_fk_rejected_gracefully(self):
        # a self-referential FK must not break ontology construction
        db = Database("selfref")
        db.create_table(
            TableSchema(
                "emp",
                [
                    Column("id", DataType.INTEGER, primary_key=True),
                    Column("name", DataType.TEXT),
                    Column("manager_id", DataType.INTEGER),
                ],
            )
        )
        db.add_foreign_key("emp", "manager_id", "emp", "id")
        db.insert_many("emp", [[1, "root", None], [2, "leaf", 1]])
        context = NLIDBContext(db)
        interps = AthenaSystem().interpret("how many emps are there", context)
        assert interps and context.execute(interps[0]).scalar() == 2
