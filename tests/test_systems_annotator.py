"""Unit tests for the shared entity annotator."""

import pytest

from repro.core import NLIDBContext
from repro.ontology import QueryRelaxer, build_medical_kb
from repro.systems import EntityAnnotator


@pytest.fixture
def annotator():
    return EntityAnnotator(similarity_threshold=0.75)


def kinds_targets(annotated):
    return [(a.kind, a.target) for a in annotated.annotations]


class TestConceptAnnotation:
    def test_plural_concept_mention(self, shop_ctx, annotator):
        annotated = annotator.annotate("show all customers", shop_ctx)
        assert any(
            a.kind == "concept" and a.payload == "customer"
            for a in annotated.annotations
        )

    def test_synonym_concept_mention(self, emp_ctx, annotator):
        # schema synonym: emp table declares "worker"
        annotated = annotator.annotate("list the workers", emp_ctx)
        assert any(a.kind == "concept" for a in annotated.annotations)

    def test_unrelated_words_not_annotated(self, shop_ctx, annotator):
        annotated = annotator.annotate("zebra xylophone", shop_ctx)
        assert annotated.annotations == []


class TestPropertyAnnotation:
    def test_direct_property(self, shop_ctx, annotator):
        annotated = annotator.annotate("the price of products", shop_ctx)
        props = [a.payload for a in annotated.annotations if a.kind == "property"]
        assert any(p.prop == "price" for p in props)

    def test_multiword_property_phrase(self, shop_ctx, annotator):
        annotated = annotator.annotate("the order date of orders", shop_ctx)
        props = [a.payload for a in annotated.annotations if a.kind == "property"]
        assert any(p.prop == "order date" for p in props)

    def test_concept_proximity_disambiguates(self, emp_ctx, annotator):
        # "id" exists on both tables; "dept" right before it wins
        annotated = annotator.annotate("the dept id", emp_ctx)
        props = [a.payload for a in annotated.annotations if a.kind == "property"]
        assert any(p.concept == "dept" for p in props)

    def test_aggregation_cue_not_swallowed(self, emp_ctx, annotator):
        # "minimum salary" must keep 'minimum' free for the agg detector
        annotated = annotator.annotate("the minimum salary of workers", emp_ctx)
        salary = [a for a in annotated.annotations if a.kind == "property"]
        assert salary and all(a.end - a.start == 1 for a in salary)


class TestValueAnnotation:
    def test_exact_value(self, shop_ctx, annotator):
        annotated = annotator.annotate("customers in Berlin", shop_ctx)
        values = [a.payload for a in annotated.annotations if a.kind == "value"]
        assert any(v[1] == "Berlin" for v in values)

    def test_multiword_value(self, emp_ctx, annotator):
        annotated = annotator.annotate("the Engineering department", emp_ctx)
        values = [a.payload for a in annotated.annotations if a.kind == "value"]
        assert any(v[1] == "Engineering" for v in values)

    def test_quoted_value(self, shop_ctx, annotator):
        annotated = annotator.annotate('products named "Widget"', shop_ctx)
        values = [a.payload for a in annotated.annotations if a.kind == "value"]
        assert any(v[1] == "Widget" for v in values)

    def test_fuzzy_value_typo(self, shop_ctx):
        fuzzy = EntityAnnotator(fuzzy_values=True)
        annotated = fuzzy.annotate("customers in Berlni", shop_ctx)
        values = [a.payload for a in annotated.annotations if a.kind == "value"]
        assert any(v[1] == "Berlin" for v in values)

    def test_no_fuzzy_when_disabled(self, shop_ctx):
        strict = EntityAnnotator(fuzzy_values=False)
        annotated = strict.annotate("customers in Berlni", shop_ctx)
        values = [a for a in annotated.annotations if a.kind == "value"]
        assert not values

    def test_value_concept_boost(self, shop_ctx, annotator):
        # "Berlin" is only in customers.city here; with "customers"
        # mentioned the payload must be the customer property
        annotated = annotator.annotate("customers from Berlin", shop_ctx)
        values = [a.payload for a in annotated.annotations if a.kind == "value"]
        assert values and values[0][0].concept == "customer"


class TestAlternativesAndRelaxation:
    def test_alternatives_for_ambiguous_span(self, emp_ctx, annotator):
        annotated = annotator.annotate("what is the id", emp_ctx)
        kept = [a for a in annotated.annotations if a.kind == "property"]
        assert kept
        alternatives = annotated.alternatives_for(kept[0])
        assert alternatives  # the other table's id

    def test_replace_swaps_annotation(self, emp_ctx, annotator):
        annotated = annotator.annotate("what is the id", emp_ctx)
        kept = [a for a in annotated.annotations if a.kind == "property"][0]
        alt = annotated.alternatives_for(kept)[0]
        swapped = annotated.replace(kept, alt)
        assert alt in swapped.annotations and kept not in swapped.annotations

    def test_relaxed_value_through_kb(self):
        from repro.bench.domains import build_domain

        context = NLIDBContext(build_domain("healthcare"))
        relaxer = QueryRelaxer(build_medical_kb())
        annotator = EntityAnnotator(relaxer=relaxer, fuzzy_values=False)
        annotated = annotator.annotate(
            "visits with diagnosis heart attack", context
        )
        values = [a.payload for a in annotated.annotations if a.kind == "value"]
        assert any(v[1] == "myocardial infarction" for v in values)

    def test_no_relaxation_without_relaxer(self):
        from repro.bench.domains import build_domain

        context = NLIDBContext(build_domain("healthcare"))
        annotator = EntityAnnotator(fuzzy_values=False)
        annotated = annotator.annotate(
            "visits with diagnosis heart attack", context
        )
        values = [a.payload for a in annotated.annotations if a.kind == "value"]
        assert not any(v[1] == "myocardial infarction" for v in values)


class TestSpanRules:
    def test_punctuated_value_span(self):
        from repro.bench.domains import build_domain

        context = NLIDBContext(build_domain("healthcare"))
        annotator = EntityAnnotator()
        doctor = context.database.table("doctors").rows[0][1]  # "Dr. X Y"
        annotated = annotator.annotate(f"visits of doctor {doctor}", context)
        values = [a.payload for a in annotated.annotations if a.kind == "value"]
        assert any(v[1] == doctor for v in values)

    def test_metadata_spans_are_stopword_free(self, emp_ctx, annotator):
        annotated = annotator.annotate("list the salary", emp_ctx)
        for a in annotated.annotations:
            if a.kind in ("concept", "property"):
                assert a.end - a.start == 1
