"""Tests for the vectorized columnar execution engine.

Three layers of assurance, mirroring how the row path earned trust:

1. **Differential corpora** — the planner test corpus (including its
   error cases) and the 40-statement NULL three-valued-logic corpus run
   with the columnar path enabled and must match the naive interpreter
   byte for byte (and sqlite3, for the NULL corpus).
2. **Seeded property tests** — hypothesis-generated WHERE clauses over a
   mixed-type table with NULLs, columnar vs naive.
3. **Unit tests** — chunk partitioning, the fork pool, ColumnStore
   layout/invalidation, scan statistics, EXPLAIN surface, fallback
   reasons, and bulk inserts.
"""

from __future__ import annotations

import datetime
import random
import sqlite3

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.perf import DEFAULT_CHUNK_ROWS, chunk_spans, run_partitioned
from repro.sqldb import (
    Column,
    ColumnStore,
    Database,
    DataType,
    SqlError,
    TableSchema,
)
from repro.sqldb.executor import Executor

from tests.test_sqldb_null_semantics import CORPUS as NULL_CORPUS
from tests.test_sqldb_null_semantics import ROWS as NULL_ROWS
from tests.test_sqldb_null_semantics import _norm
from tests.test_sqldb_planner import (
    EMP_CORPUS,
    ERROR_CORPUS,
    SHOP_CORPUS,
    _strict_rows,
)

# ---------------------------------------------------------------------------
# Differential: columnar vs row path vs naive on the planner corpora
# ---------------------------------------------------------------------------


def assert_three_paths_agree(db, sql):
    """naive, planned row-path, and planned columnar must all agree."""
    naive = Executor(db, use_planner=False)
    row = Executor(db, use_planner=True, use_columnar=False)
    col = Executor(db, use_planner=True, use_columnar=True)
    try:
        expected = naive.execute_sql(sql)
    except SqlError as exc:
        for planned in (row, col):
            with pytest.raises(type(exc)):
                planned.execute_sql(sql)
        return
    for planned in (row, col):
        got = planned.execute_sql(sql)
        assert got.columns == expected.columns, sql
        assert _strict_rows(got) == _strict_rows(expected), sql


class TestDifferentialCorpora:
    @pytest.mark.parametrize("sql", EMP_CORPUS)
    def test_emp_corpus(self, emp_db, sql):
        assert_three_paths_agree(emp_db, sql)

    @pytest.mark.parametrize("sql", SHOP_CORPUS)
    def test_shop_corpus(self, shop_db, sql):
        assert_three_paths_agree(shop_db, sql)

    @pytest.mark.parametrize("sql", ERROR_CORPUS)
    def test_error_corpus(self, emp_db, sql):
        assert_three_paths_agree(emp_db, sql)

    def test_columnar_actually_claims_queries(self, emp_db):
        """The corpus must exercise the vectorized path, not fall back
        everywhere — otherwise the differential suite proves nothing."""
        ex = Executor(emp_db)
        for sql in EMP_CORPUS:
            try:
                ex.execute_sql(sql)
            except SqlError:
                pass
        assert ex.total_stats.vectorized >= 10


# ---------------------------------------------------------------------------
# Differential: the NULL 3VL corpus vs the sqlite3 oracle, columnar on
# ---------------------------------------------------------------------------


@pytest.fixture
def null_engines():
    db = Database("nulls-columnar")
    db.create_table(
        TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                Column("a", DataType.INTEGER),
                Column("b", DataType.INTEGER),
                Column("s", DataType.TEXT),
            ],
        )
    )
    db.insert_many("t", [list(r) for r in NULL_ROWS])
    oracle = sqlite3.connect(":memory:")
    oracle.execute("CREATE TABLE t (id INTEGER, a INTEGER, b INTEGER, s TEXT)")
    oracle.executemany("INSERT INTO t VALUES (?, ?, ?, ?)", NULL_ROWS)
    # Tiny chunks so even the 5-row table takes the partitioned route.
    yield Executor(db, use_columnar=True, scan_chunk_rows=2), oracle
    oracle.close()


@pytest.mark.parametrize("sql", NULL_CORPUS)
def test_null_corpus_columnar_vs_sqlite(null_engines, sql):
    executor, oracle = null_engines
    ours = sorted(
        tuple(_norm(v) for v in row) for row in executor.execute_sql(sql).rows
    )
    theirs = sorted(
        tuple(_norm(v) for v in row) for row in oracle.execute(sql).fetchall()
    )
    assert ours == theirs, f"columnar divergence from sqlite3 on: {sql}"


# ---------------------------------------------------------------------------
# Property-based: seeded random predicates, columnar vs naive
# ---------------------------------------------------------------------------

_PROP_DB = None


def _prop_db() -> Database:
    """A 300-row mixed-type table with ~20% NULLs, fixed seed."""
    global _PROP_DB
    if _PROP_DB is None:
        rng = random.Random(20260807)
        db = Database("prop")
        db.create_table(
            TableSchema(
                "v",
                [
                    Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                    Column("a", DataType.INTEGER),
                    Column("f", DataType.FLOAT),
                    Column("s", DataType.TEXT),
                    Column("d", DataType.DATE),
                ],
            )
        )
        base = datetime.date(2023, 1, 1)
        words = ["alpha", "beta", "gamma", "", "Ada", "bob"]

        def maybe(value):
            return None if rng.random() < 0.2 else value

        db.insert_many(
            "v",
            [
                [
                    i,
                    maybe(rng.randint(-50, 50)),
                    maybe(round(rng.uniform(-5.0, 5.0), 3)),
                    maybe(rng.choice(words)),
                    maybe(base + datetime.timedelta(days=rng.randint(0, 400))),
                ]
                for i in range(300)
            ],
        )
        _PROP_DB = db
    return _PROP_DB


_CMP = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def _atom(draw):
    kind = draw(
        st.sampled_from(["int", "float", "text", "date", "null", "between", "in", "like"])
    )
    if kind == "int":
        return f"a {draw(_CMP)} {draw(st.integers(-60, 60))}"
    if kind == "float":
        return f"f {draw(_CMP)} {draw(st.integers(-6, 6))}.5"
    if kind == "text":
        return f"s {draw(_CMP)} '{draw(st.sampled_from(['alpha', 'Ada', 'zzz', '']))}'"
    if kind == "date":
        day = datetime.date(2023, 1, 1) + datetime.timedelta(days=draw(st.integers(0, 400)))
        return f"d {draw(_CMP)} '{day.isoformat()}'"
    if kind == "null":
        col = draw(st.sampled_from(["a", "f", "s", "d"]))
        return f"{col} IS {'NOT ' if draw(st.booleans()) else ''}NULL"
    if kind == "between":
        lo, hi = sorted(draw(st.tuples(st.integers(-60, 60), st.integers(-60, 60))))
        neg = "NOT " if draw(st.booleans()) else ""
        return f"a {neg}BETWEEN {lo} AND {hi}"
    if kind == "in":
        items = draw(st.lists(st.integers(-60, 60), min_size=1, max_size=4))
        if draw(st.booleans()):
            items = items + ["NULL"]
        neg = "NOT " if draw(st.booleans()) else ""
        return f"a {neg}IN ({', '.join(str(i) for i in items)})"
    return f"s LIKE '{draw(st.sampled_from(['a%', '%a', '_da', '%', 'alpha']))}'"


@st.composite
def _where(draw):
    expr = draw(_atom())
    for _ in range(draw(st.integers(0, 2))):
        conj = draw(st.sampled_from(["AND", "OR"]))
        rhs = draw(_atom())
        expr = f"({expr}) {conj} ({rhs})"
    if draw(st.booleans()):
        expr = f"NOT ({expr})"
    return expr


@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(where=_where(), agg=st.sampled_from([
    "id",
    "COUNT(*)",
    "COUNT(a), SUM(a), MIN(a), MAX(a)",
    "AVG(a), MIN(s), MAX(d)",
    "COUNT(f), MIN(f), MAX(f)",
]))
def test_property_columnar_matches_naive(where, agg):
    db = _prop_db()
    assert_three_paths_agree(db, f"SELECT {agg} FROM v WHERE {where}")


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(where=_where(), key=st.sampled_from(["a", "s", "d"]))
def test_property_columnar_grouped_matches_naive(where, key):
    db = _prop_db()
    sql = (
        f"SELECT {key}, COUNT(*), SUM(a) FROM v WHERE {where} "
        f"GROUP BY {key} ORDER BY {key}"
    )
    assert_three_paths_agree(db, sql)


# ---------------------------------------------------------------------------
# Partitioning primitives
# ---------------------------------------------------------------------------


def _span_sum(shared, lo, hi):
    """Module-level so the fork pool can resolve it in workers."""
    return sum(shared[lo:hi])


class TestPartitioning:
    def test_chunk_spans_cover_all_rows(self):
        spans = chunk_spans(1_000_003, 131_072)
        assert spans[0][0] == 0 and spans[-1][1] == 1_000_003
        for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
            assert a_hi == b_lo
        assert all(hi - lo <= 131_072 for lo, hi in spans)

    def test_chunk_spans_empty_and_bad_size(self):
        assert chunk_spans(0) == [(0, 0)]
        # non-positive sizes degrade to the default chunk size
        assert chunk_spans(10, -5) == [(0, 10)]
        assert chunk_spans(10, 0) == [(0, 10)]

    def test_run_partitioned_serial_equals_parallel(self):
        data = list(range(10_000))
        spans = chunk_spans(len(data), 1_000)
        serial = run_partitioned(_span_sum, data, spans, jobs=1)
        parallel = run_partitioned(_span_sum, data, spans, jobs=4)
        assert serial == parallel
        assert sum(serial) == sum(data)

    def test_parallel_scan_equals_serial_scan(self):
        rng = random.Random(11)
        db = Database("par")
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", DataType.INTEGER, primary_key=True),
                    Column("v", DataType.INTEGER),
                ],
            )
        )
        db.insert_many("t", [[i, rng.randint(0, 999)] for i in range(5_000)])
        sql = "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM t WHERE v > 250"
        serial = Executor(db, scan_chunk_rows=512, scan_jobs=0)
        parallel = Executor(db, scan_chunk_rows=512, scan_jobs=4)
        assert _strict_rows(serial.execute_sql(sql)) == _strict_rows(
            parallel.execute_sql(sql)
        )
        assert parallel.last_stats.vectorized == 1
        assert parallel.last_stats.partitions_scanned == 10


# ---------------------------------------------------------------------------
# ColumnStore layout and invalidation
# ---------------------------------------------------------------------------


class TestColumnStore:
    def _db(self):
        db = Database("cs")
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("i", DataType.INTEGER, primary_key=True),
                    Column("f", DataType.FLOAT),
                    Column("s", DataType.TEXT),
                    Column("b", DataType.BOOLEAN),
                    Column("d", DataType.DATE),
                ],
            )
        )
        db.insert_many(
            "t",
            [
                [1, 1.5, "x", True, datetime.date(2023, 1, 1)],
                [2, None, None, None, None],
            ],
        )
        return db

    def test_kinds_and_null_bitmap(self):
        db = self._db()
        store = db.table("t").column_store()
        assert isinstance(store, ColumnStore)
        assert store.n_rows == 2
        by_name = dict(zip(store.column_names, store.cols))
        kinds = {name: col.kind for name, col in by_name.items()}
        assert kinds == {"i": "int", "f": "float", "s": "text", "b": "bool", "d": "date"}
        assert not by_name["i"].null.any()
        assert by_name["f"].null.tolist() == [False, True]

    def test_nul_byte_text_demoted(self):
        db = Database("nul")
        db.create_table(
            TableSchema("t", [Column("i", DataType.INTEGER, primary_key=True),
                              Column("s", DataType.TEXT)])
        )
        # numpy 'U' arrays silently strip trailing NUL characters, which
        # would corrupt round-trips — such columns must not vectorize.
        db.insert_many("t", [[1, "a\x00b"], [2, "plain"]])
        store = db.table("t").column_store()
        by_name = dict(zip(store.column_names, store.cols))
        assert by_name["s"].kind == "other"

    def test_store_invalidated_by_writes(self):
        db = self._db()
        ex = Executor(db)
        assert ex.execute_sql("SELECT COUNT(i) FROM t WHERE i > 0").rows == [(2,)]
        db.insert("t", [3, 2.5, "y", False, datetime.date(2024, 2, 2)])
        assert ex.execute_sql("SELECT COUNT(i) FROM t WHERE i > 0").rows == [(3,)]
        assert db.table("t").column_store().n_rows == 3


# ---------------------------------------------------------------------------
# Statistics and EXPLAIN surface
# ---------------------------------------------------------------------------


class TestObservability:
    def _db(self, n=700):
        db = Database("obs")
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", DataType.INTEGER, primary_key=True),
                    Column("v", DataType.INTEGER),
                ],
            )
        )
        db.insert_many("t", [[i, i % 7] for i in range(n)])
        return db

    def test_columnar_scan_stats(self):
        ex = Executor(self._db(), scan_chunk_rows=100)
        ex.execute_sql("SELECT COUNT(*) FROM t WHERE v > 3")
        stats = ex.last_stats
        assert stats.vectorized == 1
        assert stats.rows_scanned == 700
        assert stats.partitions_scanned == 7
        assert stats.full_scans == 1

    def test_row_path_scan_stats(self):
        ex = Executor(self._db(), use_columnar=False)
        ex.execute_sql("SELECT COUNT(*) FROM t WHERE v > 3")
        stats = ex.last_stats
        assert stats.vectorized == 0
        assert stats.rows_scanned == 700
        assert stats.partitions_scanned == 1

    def test_explain_reports_vectorized_shape(self):
        ex = Executor(self._db())
        text = ex.explain_sql("SELECT COUNT(*) FROM t WHERE v > 3")
        assert "columnar: vectorized scan+filter+aggregate" in text

    def test_explain_reports_fallback_reason(self):
        ex = Executor(self._db())
        text = ex.explain_sql("SELECT v FROM t WHERE id = 7")
        assert "columnar: row path (index scan preferred)" in text
        text = ex.explain_sql("SELECT v FROM t WHERE v + 1 > 5")
        assert "columnar: row path (comparison over computed expressions)" in text

    def test_fallback_reason_recorded_on_execute(self):
        ex = Executor(self._db())
        ex.execute_sql("SELECT COUNT(*) FROM t WHERE v + 1 > 5")
        engine = ex._columnar_engine()
        assert engine is not None
        assert engine.last_fallback == "comparison over computed expressions"
        assert ex.last_stats.vectorized == 0

    def test_joins_fall_back(self):
        db = self._db(50)
        db.create_table(
            TableSchema(
                "u",
                [Column("id", DataType.INTEGER, primary_key=True),
                 Column("w", DataType.INTEGER)],
            )
        )
        db.insert_many("u", [[i, i] for i in range(10)])
        ex = Executor(db)
        text = ex.explain_sql("SELECT t.v FROM t JOIN u ON t.v = u.id")
        assert "columnar: row path" in text


# ---------------------------------------------------------------------------
# Golden fallback reasons
# ---------------------------------------------------------------------------

#: (sql, verbatim reason) — one query per `_Unsupported` message the
#: compiler can emit for SQL text.  The remaining raise sites need
#: programmatic ASTs or non-SQL values (NaN literal, DATE object against
#: a TEXT column, stores without vectorizable storage) and are covered
#: implicitly by the differential corpora.
GOLDEN_FALLBACKS = [
    ("SELECT v FROM t WHERE u.w > 3", "column 'u.w' is outside the scanned table"),
    ("SELECT v FROM t WHERE nosuch > 1", "column 'nosuch' does not resolve locally"),
    ("SELECT v FROM t WHERE v + 1", "operator '+' in WHERE"),
    ("SELECT v FROM t WHERE v + 1 IS NULL", "IS NULL over a computed expression"),
    ("SELECT v FROM t WHERE v + 1 > 5", "comparison over computed expressions"),
    ("SELECT v FROM t WHERE v > " + "9" * 400, "integer literal beyond float range"),
    ("SELECT v FROM t WHERE s > 'a\x00b'", "NUL byte in text literal"),
    ("SELECT v FROM t WHERE f > 1", "ordering comparison on NaN-containing column 'f'"),
    ("SELECT v FROM t WHERE s > d", "DATE/TEXT column comparison needs per-row coercion"),
    ("SELECT v FROM t WHERE v LIKE 'a%'", "LIKE outside text-column-vs-pattern form"),
    ("SELECT v FROM t WHERE v + 1 IN (1, 2)", "IN over a computed operand"),
    ("SELECT v FROM t WHERE v IN (id)", "non-literal IN list item"),
    ("SELECT t.v FROM t JOIN u ON t.v = u.id", "join"),
    ("SELECT v FROM t WHERE EXISTS (SELECT id FROM u)", "subquery"),
    ("SELECT v FROM t WHERE id = 7", "index scan preferred"),
    ("SELECT COUNT(*) FROM t GROUP BY v + 1", "computed GROUP BY key"),
    ("SELECT 1", "no FROM clause"),
]


class TestGoldenFallbackReasons:
    """Every reachable `_Unsupported` reason must surface verbatim in
    EXPLAIN output as ``columnar: row path (<reason>)`` — the fallback
    boundary is a documented API, not an implementation detail."""

    @staticmethod
    def _db() -> Database:
        db = Database("golden")
        db.create_table(
            TableSchema(
                "t",
                [
                    Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                    Column("v", DataType.INTEGER),
                    Column("f", DataType.FLOAT),
                    Column("s", DataType.TEXT),
                    Column("d", DataType.DATE),
                ],
            )
        )
        db.create_table(
            TableSchema(
                "u",
                [
                    Column("id", DataType.INTEGER, primary_key=True, nullable=False),
                    Column("w", DataType.INTEGER),
                ],
            )
        )
        base = datetime.date(2023, 1, 1)
        db.insert_many(
            "t",
            [
                [
                    i,
                    i % 50,
                    float("nan") if i == 3 else i / 7.0,
                    f"s{i % 9}",
                    base + datetime.timedelta(days=i % 200),
                ]
                for i in range(600)
            ],
        )
        db.insert_many("u", [[i, i] for i in range(10)])
        return db

    @pytest.mark.parametrize("sql, reason", GOLDEN_FALLBACKS)
    def test_reason_verbatim_in_explain(self, sql, reason):
        text = self._db().explain_sql(sql)
        assert f"columnar: row path ({reason})" in text, text

    @pytest.mark.parametrize(
        "sql, reason",
        [
            pair
            for pair in GOLDEN_FALLBACKS
            # The row path itself raises OverflowError (not a SqlError)
            # comparing an int beyond float range; parity is meaningless.
            if pair[1] != "integer literal beyond float range"
        ],
    )
    def test_fallback_query_still_matches_naive(self, sql, reason):
        db = self._db()
        assert_three_paths_agree(db, sql)


# ---------------------------------------------------------------------------
# Bulk insert
# ---------------------------------------------------------------------------


class TestInsertMany:
    def _schema(self):
        return TableSchema(
            "t",
            [
                Column("id", DataType.INTEGER, primary_key=True),
                Column("v", DataType.INTEGER, nullable=True),
            ],
        )

    def test_bulk_matches_row_at_a_time(self):
        a, b = Database("a"), Database("b")
        a.create_table(self._schema())
        b.create_table(self._schema())
        rows = [[i, None if i % 5 == 0 else i * 2] for i in range(100)]
        for row in rows:
            a.insert("t", row)
        b.insert_many("t", rows)
        assert a.table("t").rows == b.table("t").rows

    def test_bulk_is_one_version_bump(self):
        db = Database("v")
        db.create_table(self._schema())
        before = db.table("t").version
        db.insert_many("t", [[i, i] for i in range(50)])
        assert db.table("t").version == before + 1

    def test_bulk_is_all_or_nothing(self):
        db = Database("atomic")
        db.create_table(self._schema())
        with pytest.raises(SqlError):
            db.insert_many("t", [[1, 1], [2, 2], ["bogus", 3]])  # type error in row 3
        assert db.table("t").rows == []
