"""Coverage extras: parser chunking details, FSM chains, harness output,
index caps, registry round-trips."""


from repro.bench.domains import build_domain, domain_names
from repro.bench.harness import ComparisonRow, compare_systems, print_table
from repro.bench.metrics import EvaluationSummary
from repro.bench.workloads import WorkloadGenerator
from repro.core import NLIDBContext, available, create
from repro.core.complexity import ComplexityTier
from repro.dialogue import DialogueAction, DialogueState, FiniteStateManager
from repro.nlp import parse
from repro.systems import SodaSystem


class TestParserChunks:
    def test_conjunction_attaches(self):
        tree = parse("customers in Berlin and Paris")
        conj = [n for n in tree.root.walk() if n.relation == "conj"]
        assert conj and conj[0].text == "Paris"

    def test_modifier_leaf_for_adverbs(self):
        tree = parse("list quickly the items")
        labels = {n.label for n in tree.root.walk()}
        assert "MOD" in labels or "NP" in labels

    def test_verb_becomes_vp(self):
        tree = parse("employees earn salaries")
        assert tree.verbs() and tree.verbs()[0].norm == "earn"

    def test_focus_none_for_empty(self):
        tree = parse("")
        assert tree.focus() is None

    def test_content_words_skip_determiners(self):
        tree = parse("the big orders")
        np = tree.noun_phrases()[0]
        assert "the" not in np.content_words


class TestFSMChains:
    def test_multi_hop_dialogue(self):
        fsm = FiniteStateManager(start="start")
        fsm.add_transition("start", "domain", ["sales"], DialogueAction("ask_slot", "metric"))
        fsm.add_transition("domain", "metric", ["revenue"], DialogueAction("ask_slot", "period"))
        fsm.add_transition("metric", "done", ["quarter"], DialogueAction("answer"))
        state = DialogueState()
        assert fsm.decide(state, "the sales data please").kind == "ask_slot"
        assert fsm.decide(state, "revenue").kind == "ask_slot"
        assert fsm.decide(state, "this quarter").kind == "answer"
        assert fsm.state_name == "done"

    def test_wrong_order_rejected(self):
        fsm = FiniteStateManager(start="start")
        fsm.add_transition("start", "domain", ["sales"], DialogueAction("ask_slot"))
        fsm.add_transition("domain", "metric", ["revenue"], DialogueAction("answer"))
        state = DialogueState()
        # jumping straight to the second step fails from 'start'
        assert fsm.decide(state, "revenue").kind == "reject"


class TestHarnessOutput:
    def test_print_table_returns_text(self, capsys):
        rows = [
            ComparisonRow("sys", "all", EvaluationSummary(total=2, answered=2, correct=1))
        ]
        text = print_table(rows, title="demo")
        out = capsys.readouterr().out
        assert "demo" in text and "sys" in out

    def test_compare_systems_includes_tier_rows(self):
        database = build_domain("hr")
        context = NLIDBContext(database)
        examples = WorkloadGenerator(database, seed=1).generate(
            ComplexityTier.SELECTION, 2
        ) + WorkloadGenerator(database, seed=2).generate(ComplexityTier.JOIN, 2)
        rows = compare_systems([SodaSystem()], context, examples)
        scopes = {r.scope for r in rows}
        assert "all" in scopes and "simple selection" in scopes


class TestRegistryCompleteness:
    def test_every_registered_system_instantiates(self):
        for name in available():
            system = create(name)
            assert hasattr(system, "interpret")

    def test_every_domain_builds_and_contextualizes(self):
        for name in domain_names():
            context = NLIDBContext(build_domain(name))
            assert context.ontology.concepts

    def test_registered_systems_answer_simple_question(self):
        context = NLIDBContext(build_domain("hr"))
        question = "employees with title engineer"
        for name in ("soda", "sqak", "nalir", "athena", "quick", "templar"):
            system = create(name)
            interps = system.interpret(question, context)
            assert interps, name
            sql = interps[0].to_sql(context.ontology, context.mapping).to_sql()
            assert "engineer" in sql, name


class TestValueIndexCap:
    def test_max_values_per_column_respected(self):
        from repro.sqldb import Column, Database, DataType, TableSchema
        from repro.sqldb.index import ValueIndex

        db = Database("cap")
        db.create_table(
            TableSchema("t", [Column("id", DataType.INTEGER), Column("v", DataType.TEXT)])
        )
        for i in range(50):
            db.insert("t", [i, f"value{i}"])
        capped = ValueIndex(db, max_values_per_column=10)
        assert capped.lookup("value5")
        assert not capped.lookup("value49")
