"""The survey's §6 open challenges, as executable probes.

Each test asserts that a capability the survey lists as *open* is indeed
still missing in this reproduction — faithfully encoding the frontier.
If library work ever makes one of these pass the underlying capability,
the probe fails and should be promoted to a regular regression test (and
the survey's challenge marked solved in EXPERIMENTS.md).
"""

import pytest

from repro.bench import Paraphraser
from repro.bench.domains import build_domain
from repro.bench.metrics import execution_match
from repro.core import NLIDBContext
from repro.systems import AthenaSystem, HybridSystem
from repro.systems.neural import DBPalModel, NeuralSketchSystem


@pytest.fixture(scope="module")
def hr_ctx():
    return NLIDBContext(build_domain("hr"))


def top_sql(system, question, ctx):
    try:
        interps = system.interpret(question, ctx)
    except Exception:
        return None
    if not interps:
        return None
    try:
        top = max(interps, key=lambda i: i.confidence)
        return top.to_sql(ctx.ontology, ctx.mapping).to_sql()
    except Exception:
        return None


class TestSubqueryChallenge:
    """§6 "Sub-queries": detecting nesting from non-obvious linguistic
    patterns, and correlated sub-queries, remain open."""

    def test_implicit_nesting_cue_not_detected(self, hr_ctx):
        # "better paid than most" implies an aggregate comparison, but no
        # "above the average X" surface pattern is present
        sql = top_sql(AthenaSystem(), "employees better paid than most", hr_ctx)
        gold = (
            "SELECT name FROM employees "
            "WHERE salary > (SELECT AVG(salary) FROM employees)"
        )
        assert sql is None or not execution_match(hr_ctx.database, sql, gold)

    def test_correlated_subquery_not_generated(self, hr_ctx):
        # requires a correlated comparison per department — beyond the
        # OQL nesting repertoire (scalar/IN/NOT-IN)
        question = "employees who earn more than their department average"
        gold = (
            "SELECT name FROM employees e WHERE salary > "
            "(SELECT AVG(salary) FROM employees d "
            "WHERE d.department_id = e.department_id)"
        )
        sql = top_sql(AthenaSystem(), question, hr_ctx)
        assert sql is None or not execution_match(hr_ctx.database, sql, gold)


class TestHybridChallenge:
    """§6 "Hybrid Approach": neither family covers a *paraphrased
    multi-table* question; the cascade inherits the gap."""

    def test_paraphrased_join_fails_both_arms(self, hr_ctx):
        question = Paraphraser(seed=99).paraphrase(
            "which departments have employees with salary over 150000", 3
        )
        gold = (
            "SELECT DISTINCT departments.name FROM departments "
            "JOIN employees ON departments.id = employees.department_id "
            "WHERE employees.salary > 150000"
        )
        model = DBPalModel(seed=0, epochs=10)
        model.fit_from_schema(hr_ctx.database, size=120, seed=0)
        hybrid = HybridSystem(AthenaSystem(), NeuralSketchSystem(model, "ml"))
        sql = top_sql(hybrid, question, hr_ctx)
        # either arm may answer, but at least document whether the open
        # gap persists: the ML arm is structurally single-table, so when
        # the entity arm loses the paraphrase the cascade cannot recover
        # the join
        if sql is not None and execution_match(hr_ctx.database, sql, gold):
            pytest.skip("entity arm survived this paraphrase draw")
        assert sql is None or not execution_match(hr_ctx.database, sql, gold)


class TestConversationChallenge:
    """§6 "Conversation": domain semantics beyond the ontology
    vocabulary ("recent", "senior") are not understood."""

    def test_vague_temporal_followup(self, hr_ctx):
        from repro.core.intermediate import OQLItem, OQLQuery, PropertyRef
        from repro.dialogue import FollowupResolver

        previous = OQLQuery(
            select=(OQLItem(ref=PropertyRef("employee", "name")),),
        )
        edited, move = FollowupResolver().resolve(
            "only the recent ones", previous, hr_ctx
        )
        # "recent" needs commonsense grounding to a hire_date threshold
        assert edited is None or not any(
            getattr(c, "ref", None) and c.ref.prop == "hire date"
            for c in edited.conditions
        )


class TestEnterpriseAdaptionChallenge:
    """§6 "Enterprise Adaption": precision at enterprise levels (say
    ≥95%) under realistic variation is not reached by any system."""

    def test_no_system_reaches_enterprise_precision_under_paraphrase(self, hr_ctx):
        from repro.bench.harness import evaluate_system
        from repro.bench.metrics import summarize
        from repro.bench.workloads import WorkloadGenerator

        generator = WorkloadGenerator(hr_ctx.database, seed=55)
        base = generator.generate_mixed(5)
        paraphraser = Paraphraser(seed=55)
        examples = [paraphraser.paraphrase_example(e, 3) for e in base]
        summary = summarize(evaluate_system(AthenaSystem(), hr_ctx, examples))
        assert summary.accuracy < 0.95  # the challenge stands
