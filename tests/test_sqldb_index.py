"""Unit tests for the inverted metadata/value indexes."""

import pytest

from repro.sqldb import (
    Column,
    Database,
    DatabaseIndex,
    DataType,
    MetadataIndex,
    TableSchema,
    ValueIndex,
    split_identifier,
)


@pytest.fixture
def indexed_db():
    db = Database("idx")
    db.create_table(
        TableSchema(
            "orders",
            [
                Column("id", DataType.INTEGER, primary_key=True),
                Column("order_date", DataType.DATE),
                Column("customerName", DataType.TEXT, synonyms=("buyer",)),
                Column("total", DataType.FLOAT),
            ],
            synonyms=("purchase",),
        )
    )
    db.insert_many(
        "orders",
        [
            [1, "2023-01-01", "Ada Lovelace", 10.0],
            [2, "2023-02-02", "Grace Hopper", 20.0],
            [3, "2023-03-03", "Ada Lovelace", 30.0],
        ],
    )
    return db


class TestSplitIdentifier:
    @pytest.mark.parametrize(
        "identifier,expected",
        [
            ("order_date", ["order", "date"]),
            ("customerName", ["customer", "name"]),
            ("order date", ["order", "date"]),
            ("ALLCAPS", ["allcaps"]),
            ("simple", ["simple"]),
            ("a_b_c", ["a", "b", "c"]),
        ],
    )
    def test_splitting(self, identifier, expected):
        assert split_identifier(identifier) == expected


class TestMetadataIndex:
    def test_table_name_lookup(self, indexed_db):
        index = MetadataIndex(indexed_db)
        hits = index.lookup("orders")
        assert any(h.kind == "table" for h in hits)

    def test_table_synonym_lookup(self, indexed_db):
        index = MetadataIndex(indexed_db)
        assert any(h.kind == "table" for h in index.lookup("purchase"))

    def test_column_word_lookup(self, indexed_db):
        index = MetadataIndex(indexed_db)
        hits = index.lookup("date")
        assert any(h.kind == "column" and h.column == "order_date" for h in hits)

    def test_column_phrase_lookup(self, indexed_db):
        index = MetadataIndex(indexed_db)
        hits = index.lookup_phrase(["order", "date"])
        assert any(h.column == "order_date" for h in hits)

    def test_column_synonym(self, indexed_db):
        index = MetadataIndex(indexed_db)
        assert any(h.column == "customerName" for h in index.lookup("buyer"))

    def test_miss(self, indexed_db):
        assert MetadataIndex(indexed_db).lookup("zebra") == []


class TestValueIndex:
    def test_full_value_lookup(self, indexed_db):
        index = ValueIndex(indexed_db)
        hits = index.lookup("ada lovelace")
        assert hits and hits[0].value == "Ada Lovelace" and hits[0].score == 1.0

    def test_token_lookup_scores_lower(self, indexed_db):
        index = ValueIndex(indexed_db)
        hits = index.lookup("ada")
        assert hits and all(h.score < 1.0 for h in hits)

    def test_numeric_values_not_indexed(self, indexed_db):
        index = ValueIndex(indexed_db)
        assert index.lookup("10.0") == []

    def test_phrase_lookup(self, indexed_db):
        index = ValueIndex(indexed_db)
        assert index.lookup_phrase(["grace", "hopper"])

    def test_describe(self, indexed_db):
        entry = ValueIndex(indexed_db).lookup("ada lovelace")[0]
        assert "Ada Lovelace" in entry.describe()


class TestDatabaseIndex:
    def test_union_lookup(self, indexed_db):
        index = DatabaseIndex(indexed_db)
        hits = index.lookup("orders")
        kinds = {h.kind for h in hits}
        assert "table" in kinds

    def test_phrase_union(self, indexed_db):
        index = DatabaseIndex(indexed_db)
        assert index.lookup_phrase(["ada", "lovelace"])
