"""Schema index: byte-identity with brute force, versioning, pruning.

The index's contract is a *proof obligation*, not a heuristic: pruned
annotation must equal brute-force annotation exactly — same spans, same
scores, same candidate ordering — for every registered system, on every
domain, through the fuzzy-value and thesaurus-expansion paths.  These
tests check the contract differentially (seeded hypothesis typo
generation included), plus the escape hatches, version invalidation,
catalog generator determinism, and the harness's pruning columns.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import repro.systems  # noqa: F401  (imported to populate the registry)
from repro.bench.catalog_gen import build_wide_catalog
from repro.bench.domains import build_domain, domain_names
from repro.bench.workload_gen import build_telemetry_db
from repro.bench.workloads import WorkloadGenerator
from repro.core.pipeline import NLIDBContext
from repro.core.registry import available, create
from repro.core.schema_index import (
    FUZZY_CEILING,
    MIN_THRESHOLD,
    SchemaIndex,
    _fuzzy_reachable,
)
from repro.core.evidence import EvidenceAnnotation, resolve_overlaps
from repro.sqldb import Column, DataType, TableSchema
from repro.systems.base import EntityAnnotator

#: probes exercising the paths clean workloads rarely take: fuzzy
#: values, fuzzy schema words, synonym rings, taxonomy phrasings
PROBES = [
    "show customers in Berlni",
    "list the empolyees with highest pay",
    "total compensation by division",
    "average salery of staff",
    "workers per department",
    "films released after 2000",
]


def annotator_systems():
    out = []
    for name in available():
        annotator = getattr(create(name), "annotator", None)
        if annotator is not None:
            out.append((name, annotator))
    return out


def contexts_for(db):
    return NLIDBContext(db), NLIDBContext(db, use_schema_index=False)


def questions_for(db, per_tier=2):
    generated = WorkloadGenerator(db, seed=7).generate_mixed(per_tier)
    return [example.question for example in generated] + PROBES


def assert_identity(db, questions, systems=None):
    indexed, brute = contexts_for(db)
    for name, annotator in systems or annotator_systems():
        for question in questions:
            a = annotator.annotate(question, indexed)
            b = annotator.annotate(question, brute)
            assert a == b, (name, question)


# -- identity: every system, every demo domain + telemetry + wide catalog ------


@pytest.mark.parametrize("domain", domain_names())
def test_identity_demo_domain(domain):
    db = build_domain(domain, seed=3)
    assert_identity(db, questions_for(db))


def test_identity_telemetry_db():
    """The eighth demo database (the P6 telemetry workload's)."""
    db = build_telemetry_db(n_rows=500, seed=0)
    questions = PROBES + [
        "average duration_ms by region",
        "count events with status error",
    ]
    assert_identity(db, questions)


def test_identity_wide_catalog_100():
    db = build_wide_catalog(100, seed=1)
    assert_identity(db, questions_for(db, per_tier=1))


# -- identity under seeded hypothesis typo generation --------------------------

_VOCAB = [
    "employees", "employee", "department", "salary", "name", "city",
    "customers", "orders", "price", "compensation", "division", "staff",
    "berlin", "hamburg", "highest", "average", "total", "show", "with",
]


@st.composite
def typo_words(draw):
    word = draw(st.sampled_from(_VOCAB))
    mode = draw(st.integers(min_value=0, max_value=3))
    if mode == 0 or len(word) < 4:
        return word
    i = draw(st.integers(min_value=1, max_value=len(word) - 2))
    if mode == 1:  # deletion
        return word[:i] + word[i + 1:]
    if mode == 2:  # transposition
        return word[:i] + word[i + 1] + word[i] + word[i + 2:]
    ch = draw(st.sampled_from("aeiort"))  # substitution
    return word[:i] + ch + word[i + 1:]


class TestHypothesisIdentity:
    DB = build_domain("hr", seed=3)
    INDEXED = NLIDBContext(DB)
    BRUTE = NLIDBContext(DB, use_schema_index=False)
    #: thresholds spanning the soundness floor, the fuzzy band and the
    #: above-ceiling band (trigram probe skipped entirely)
    ANNOTATORS = [
        EntityAnnotator(similarity_threshold=0.7),
        EntityAnnotator(similarity_threshold=0.85),
        EntityAnnotator(similarity_threshold=0.95),
    ]

    @given(st.lists(typo_words(), min_size=1, max_size=5))
    @settings(max_examples=120, deadline=None, derandomize=True)
    def test_indexed_equals_brute(self, words):
        question = " ".join(words)
        for annotator in self.ANNOTATORS:
            a = annotator.annotate(question, self.INDEXED)
            b = annotator.annotate(question, self.BRUTE)
            assert a == b, (annotator.similarity_threshold, question)


# -- escape hatches ------------------------------------------------------------


def test_context_escape_hatch():
    db = build_domain("retail", seed=0)
    context = NLIDBContext(db, use_schema_index=False)
    assert context.schema_index is None
    assert context.schema_index_counters() is None


def test_annotator_escape_hatch():
    db = build_domain("retail", seed=0)
    context = NLIDBContext(db)
    annotator = EntityAnnotator(schema_index=False)
    assert annotator._index_for(context) is None
    # still annotates identically, just brute-force
    on = EntityAnnotator(schema_index=True)
    for question in PROBES:
        assert annotator.annotate(question, context) == on.annotate(question, context)


def test_low_threshold_falls_back_to_brute_force():
    assert not SchemaIndex.supports_threshold(0.69)
    assert SchemaIndex.supports_threshold(MIN_THRESHOLD)
    db = build_domain("retail", seed=0)
    context = NLIDBContext(db)
    low = EntityAnnotator(similarity_threshold=0.5)
    assert low._index_for(context) is None
    brute = NLIDBContext(db, use_schema_index=False)
    for question in PROBES:
        assert low.annotate(question, context) == low.annotate(question, brute)


# -- versioned invalidation ----------------------------------------------------


def test_lexicon_invalidates_on_catalog_change():
    db = build_domain("retail", seed=0)
    context = NLIDBContext(db)
    index = context.schema_index
    before = index.metadata_targets
    db.create_table(
        TableSchema(
            "warehouses",
            [
                Column("id", DataType.INTEGER, primary_key=True),
                Column("warehouse_label", DataType.TEXT),
            ],
        )
    )
    # the context's ontology does not change, but the catalog targets do
    after = index.metadata_targets
    assert after == before  # ontology targets unchanged...
    assert ("table", "warehouses") in index.lookup("warehouses", kinds={"table"})


def test_value_buckets_invalidate_on_data_change():
    db = build_domain("retail", seed=0)
    context = NLIDBContext(db)
    index = context.schema_index
    pool_before = {entry[4] for entry in index.fuzzy_value_pool("zanzibar")}
    assert "Zanzibar" not in pool_before
    table = db.tables[0]
    text_pos = next(
        i for i, c in enumerate(table.schema) if c.dtype == DataType.TEXT
    )
    row = list(table.rows[0])
    row[text_pos] = "Zanzibar"
    if list(table.schema)[0].primary_key:
        row[0] = max(r[0] for r in table.rows) + 1
    db.insert(table.name, row)
    pool_after = {entry[4] for entry in index.fuzzy_value_pool("zanzibar")}
    assert "Zanzibar" in pool_after


# -- pruning counters and the fuzzy bound --------------------------------------


def test_pruning_counters_advance():
    db = build_wide_catalog(30, seed=2)
    context = NLIDBContext(db)
    annotator = EntityAnnotator()
    for question in PROBES:
        annotator.annotate(question, context)
    counters = context.schema_index_counters()
    assert counters.spans > 0
    assert counters.scored <= counters.considered
    assert counters.pruned > 0
    assert 0.0 < counters.pruning_ratio <= 1.0
    snap = counters.snapshot()
    annotator.annotate(PROBES[0], context)
    delta = counters.delta(snap)
    assert delta.spans > 0
    assert delta.considered == delta.scored + delta.pruned


def test_fuzzy_reachable_bound_is_monotone():
    # more shared trigrams can only widen what is reachable
    for threshold in (MIN_THRESHOLD, 0.75, 0.85, FUZZY_CEILING):
        reachable = [
            _fuzzy_reachable(threshold, 8, 9, shared) for shared in range(10)
        ]
        assert reachable == sorted(reachable)  # False ... True
        assert reachable[-1]  # shared == distinct is always reachable
    # a full-overlap word is reachable even at the ceiling
    assert _fuzzy_reachable(FUZZY_CEILING, 4, 5, 5)


# -- harness integration -------------------------------------------------------


def test_harness_reports_pruning_and_latency_columns():
    from repro.bench.harness import evaluate_system, rows_for_outcomes

    db = build_domain("hr", seed=0)
    context = NLIDBContext(db)
    examples = WorkloadGenerator(db, seed=0).generate_mixed(1)
    outcomes = evaluate_system(create("athena"), context, examples)
    assert all(o.interp_ms is not None for o in outcomes)
    assert any(o.cand_pruned for o in outcomes)
    rows = rows_for_outcomes("athena", outcomes)
    row = rows[-1].as_dict()
    assert row["cand_pruned"] == sum(o.cand_pruned for o in outcomes)
    assert row["interp_p50"] != "" and row["interp_p95"] != ""
    # measurements are about the run, not of it: excluded from equality
    brute_context = NLIDBContext(db, use_schema_index=False)
    brute_outcomes = evaluate_system(create("athena"), brute_context, examples)
    assert outcomes == brute_outcomes
    assert all(o.cand_pruned is None for o in brute_outcomes)


# -- wide-catalog generator ----------------------------------------------------


def test_wide_catalog_width_and_determinism():
    with pytest.raises(ValueError):
        build_wide_catalog(0)
    a = build_wide_catalog(25, seed=4)
    b = build_wide_catalog(25, seed=4)
    assert len(a.tables) == 25
    def fingerprint(db):
        # Column is a frozen dataclass (value equality); TableSchema is
        # not, so compare (name, columns, synonyms, rows) explicitly
        return [
            (t.name, t.schema.columns, t.schema.synonyms, t.rows) for t in db.tables
        ]

    assert fingerprint(a) == fingerprint(b)
    assert a.foreign_keys == b.foreign_keys
    other = build_wide_catalog(25, seed=5)
    assert [(t.name, t.rows) for t in other.tables] != [
        (t.name, t.rows) for t in a.tables
    ]


def test_wide_catalog_overlapping_columns():
    db = build_wide_catalog(40, seed=0)
    names = [c.name for t in db.tables for c in t.schema]
    assert len(set(names)) < len(names)  # replicas share column vocabulary


# -- resolve_overlaps: covered-set fast path == quadratic reference ------------


def _resolve_reference(annotations):
    """The previous O(kept^2) implementation, kept as the oracle."""
    def composite(a):
        return a.score + 0.05 * (a.end - a.start - 1)

    ranked = sorted(
        annotations, key=lambda a: (-composite(a), a.start, a.kind, a.target)
    )
    kept = []
    for ann in ranked:
        if any(ann.overlaps(k) for k in kept):
            continue
        kept.append(ann)
    kept.sort(key=lambda a: a.start)
    return kept


@st.composite
def annotation_lists(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    out = []
    for _ in range(n):
        start = draw(st.integers(min_value=0, max_value=9))
        end = draw(st.integers(min_value=start + 1, max_value=start + 4))
        out.append(
            EvidenceAnnotation(
                start=start,
                end=end,
                kind=draw(st.sampled_from(["concept", "property", "value"])),
                target=draw(st.sampled_from(["a.b", "c.d", "e.f", "g.h"])),
                score=draw(
                    st.floats(min_value=0.1, max_value=1.0, allow_nan=False)
                ),
            )
        )
    return out


@given(annotation_lists())
@settings(max_examples=200, deadline=None, derandomize=True)
def test_resolve_overlaps_matches_reference(annotations):
    assert resolve_overlaps(annotations) == _resolve_reference(annotations)
