"""Cross-cutting integration tests: every system × every domain, plus
fuzzing the interpretation stack with arbitrary questions."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.bench.domains import build_domain, domain_names
from repro.bench.workloads import WorkloadGenerator
from repro.core import NLIDBContext, create
from repro.core.complexity import ComplexityTier

_CONTEXTS = {name: NLIDBContext(build_domain(name)) for name in domain_names()}


class TestSystemDomainMatrix:
    @pytest.mark.parametrize("domain", domain_names())
    @pytest.mark.parametrize("system_name", ["soda", "sqak", "nalir", "athena", "quick", "templar", "quest"])
    def test_interpret_never_crashes(self, domain, system_name):
        context = _CONTEXTS[domain]
        system = create(system_name)
        examples = WorkloadGenerator(context.database, seed=41).generate(
            ComplexityTier.SELECTION, 2
        )
        for example in examples:
            interpretations = system.interpret(example.question, context)
            for interpretation in interpretations:
                # compiling the interpretation must never raise
                interpretation.to_sql(context.ontology, context.mapping)


class TestInterpretationFuzz:
    question_strategy = st.lists(
        st.one_of(
            st.sampled_from(
                "show the of with over under average total how many top by"
                " employees salary name berlin engineer 5 100 what which and"
                " not no between".split()
            ),
            st.text(alphabet="abcdefg", min_size=1, max_size=8),
            st.integers(0, 9999).map(str),
        ),
        min_size=1,
        max_size=12,
    ).map(" ".join)

    @given(question_strategy)
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_athena_never_crashes_on_word_salad(self, question):
        context = _CONTEXTS["hr"]
        system = create("athena")
        for interpretation in system.interpret(question, context):
            stmt = interpretation.to_sql(context.ontology, context.mapping)
            # whatever was produced must execute
            context.executor.execute(stmt)

    @given(question_strategy)
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_followup_resolver_never_crashes(self, question):
        from repro.core.intermediate import OQLItem, OQLQuery, PropertyRef
        from repro.dialogue import FollowupResolver

        context = _CONTEXTS["hr"]
        previous = OQLQuery(
            select=(OQLItem(ref=PropertyRef("employee", "name")),),
        )
        resolver = FollowupResolver()
        edited, move = resolver.resolve(question, previous, context)
        if edited is not None:
            from repro.core.intermediate import compile_oql

            stmt = compile_oql(edited, context.ontology, context.mapping)
            context.executor.execute(stmt)

    @given(question_strategy)
    @settings(max_examples=30, deadline=None)
    def test_bela_never_crashes(self, question):
        from repro.systems import BelaSystem

        system = BelaSystem(_CONTEXTS["movies"])
        system.answer(question)
