"""Core NLIDB framework: the survey's unifying frame, as code.

- :mod:`~repro.core.evidence` — span → element annotations shared by all
  entity-based systems.
- :mod:`~repro.core.intermediate` — OQL, the ontology-level intermediate
  query language (ATHENA-style), with compilation to SQL.
- :mod:`~repro.core.interpretation` — ranked candidate interpretations.
- :mod:`~repro.core.complexity` — the §3 four-tier query taxonomy.
- :mod:`~repro.core.ranking` — evidence × coverage interpretation scoring.
- :mod:`~repro.core.pipeline` — the ``NLIDBSystem`` interface and the
  per-database ``NLIDBContext``.
- :mod:`~repro.core.feedback` — clarification protocol + simulated users.
- :mod:`~repro.core.registry` — named system factories for the harness.
"""

from .complexity import ComplexityTier, classify, spider_hardness, tier_at_most
from .errors import CompilationError, InterpretationError, NLIDBError
from .evidence import EvidenceAnnotation, coverage, covered_tokens, resolve_overlaps
from .feedback import (
    ClarificationOption,
    ClarificationRequest,
    ClarificationUser,
    FirstOptionUser,
    ScriptedUser,
    SimulatedOracle,
)
from .intermediate import (
    OQLCompiler,
    OQLCondition,
    OQLHasCondition,
    OQLItem,
    OQLOrder,
    OQLQuery,
    PropertyRef,
    compile_oql,
)
from .interpretation import Interpretation, best
from .pipeline import NLIDBContext, NLIDBSystem
from .ranking import (
    apply_static_analysis,
    content_indices,
    evidence_score,
    rank,
    score_interpretation,
)
from .registry import available, create, register, registered

__all__ = [
    "ComplexityTier", "classify", "tier_at_most", "spider_hardness",
    "NLIDBError", "InterpretationError", "CompilationError",
    "EvidenceAnnotation", "coverage", "covered_tokens", "resolve_overlaps",
    "OQLQuery", "OQLItem", "OQLCondition", "OQLHasCondition", "OQLOrder", "PropertyRef",
    "OQLCompiler", "compile_oql",
    "Interpretation", "best",
    "NLIDBContext", "NLIDBSystem",
    "rank", "score_interpretation", "evidence_score", "content_indices",
    "apply_static_analysis",
    "ClarificationRequest", "ClarificationOption", "ClarificationUser",
    "FirstOptionUser", "ScriptedUser", "SimulatedOracle",
    "register", "create", "available", "registered",
]
