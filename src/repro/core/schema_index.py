"""Compressed semantic schema index: sub-linear evidence matching.

Every entity-based system in the survey (§4.1) annotates question spans
by scoring them against *every* concept and property surface form in the
ontology, so interpretation cost grows linearly with catalog width —
fine for 5–10-table demo domains, fatal for the hundreds-of-table
enterprise catalogs the survey flags as the deployment reality (§7).

:class:`SchemaIndex` is a precomputed inverted lexicon over the
ontology's concepts/properties/relations (and the raw catalog
table/column identifiers): for every surface form it indexes

- the exact lower-cased form and each of its identifier words,
- their lemmas,
- their synonym-ring expansions (``Thesaurus.ring_mates``),
- their taxonomy expansions (``Thesaurus.taxonomy_mates`` at the
  minimum Wu–Palmer similarity that can still reach threshold), and
- their character trigrams, bucketed for fuzzy hits.

``EntityAnnotator`` consults :meth:`candidate_targets` to prune a span's
candidate set *before* similarity scoring.  The contract is strict: the
pruned set must be a **superset** of every candidate that can reach the
annotator's ``similarity_threshold``, and candidates come back in the
exact brute-force iteration order (concepts in declaration order, each
followed by its properties), so the pruned path produces byte-identical
annotations — same scores, same candidate ordering, same overlap
resolution.

Why the superset holds (per ``term_similarity`` channel, threshold t):

- exact/lemma (score 1.0): the form and its lemma are keys; the lookup
  probes the span word and its lemma.
- synonym (0.95): ``ring_mates`` indexes the raw members of every ring
  that can testify for the form — see its docstring.
- taxonomy (0.8·wup, needs wup ≥ t/0.8): ``taxonomy_mates`` enumerates
  taxonomy nodes with ``wup ≥ t/0.8`` using the *same* ``_wup_canonical``
  math the scorer uses, then expands them through the synonym rings that
  canonicalize onto them.
- fuzzy string (0.9·string_similarity, capped at 0.9·0.99 = 0.891):
  two q-gram arguments gate this channel.  *Zero shared trigrams*: all
  ``L+1`` padded gram positions of the span word fail to occur in the
  form, and one edit (including an OSA transposition) disturbs at most
  4 positions, so ``d ≥ (L+1)/4``; with trigram similarity 0 and prefix
  bonus 0 (a shared first character would already share the padded
  trigram ``"  c"``) the score is at most ``0.81·(1 − d/L) < 0.7`` for
  every L.  Hence words sharing no bucket with a target are safe to
  skip at any threshold ≥ :data:`MIN_THRESHOLD`; below that the
  annotator falls back to brute force.  *T ≥ 1 shared trigrams*: a
  distinct gram of the word that is absent from the form must have all
  its occurrences disturbed by edits, and each edit disturbs ≤ 4
  occurrences, so ``Dq − T ≤ 4d`` (``Dq`` = the word's distinct padded
  grams); together with the length-gap bound ``d ≥ |len(s) − Lq|``
  this caps edit similarity at ``4·Lq / (4·Lq + Dq − T)`` and trigram
  similarity at ``T/Dq``, giving the per-candidate score ceiling
  :func:`_fuzzy_reachable` enforces — candidates whose ceiling misses
  the threshold are pruned *before* scoring.  When the threshold
  exceeds the 0.891 string-channel ceiling the trigram probe is skipped
  entirely (exact/synonym/taxonomy keys alone decide).
- multi-word spans score by ``phrase_similarity`` — the average over the
  form's identifier words of each word's best match — so a phrase hit
  ≥ t implies some (span word, form word) pair ≥ t, and per-word keys
  cover it.

The same structure accelerates fuzzy *value* matching: distinct text
values are bucketed by ``(first character, length)`` — exactly the two
pre-filters the brute-force scan applies — with global ordinals
preserving the tables → text columns → distinct values iteration order,
so the best-candidate tie-break ("first in iteration order wins on
equal score") is replayed identically.

Versioning follows :class:`~repro.sqldb.index.MetadataIndex`: the
lexicon rebuilds when ``Database.catalog_version`` moves, the value
buckets when ``data_version`` moves, and both report build hit/miss
counters through :func:`repro.perf.cache.stats_for` (a served lookup at
an unchanged version is a hit; a version bump is a miss + rebuild).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.nlp.lemmatizer import lemmatize
from repro.nlp.similarity import trigrams
from repro.nlp.thesaurus import DEFAULT_THESAURUS, Thesaurus
from repro.ontology.mapping import OntologyMapping
from repro.ontology.model import Ontology
from repro.perf.cache import MISSING, LRUCache, stats_for
from repro.perf.profiler import profile_stage
from repro.sqldb.database import Database
from repro.sqldb.index import split_identifier

#: below this similarity threshold the trigram filter's soundness proof
#: no longer holds and annotators must fall back to brute force
MIN_THRESHOLD = 0.7

#: the largest score the fuzzy string channel can produce
#: (``0.9 × min(string_similarity, 0.99)``); thresholds above it never
#: need the trigram probe
FUZZY_CEILING = 0.9 * 0.99


def _fuzzy_reachable(
    threshold: float, length: int, distinct_grams: int, shared: int
) -> bool:
    """Can the fuzzy string channel reach ``threshold`` given the evidence?

    ``length``/``distinct_grams`` describe the span word (chars /
    distinct padded trigrams), ``shared`` how many of those trigrams
    appear anywhere in the candidate target's indexed vocabulary (an
    upper bound on the per-form shared count).  The ceiling combines

    - ``edit ≤ 4L / (4L + Dq − T)``: a distinct word gram missing from
      the form must have every occurrence disturbed, each edit disturbs
      ≤ 4 occurrences (``Dq − T ≤ 4d``), and ``d ≥ |len(form) − L|``
      caps how much a longer form can dilute the gap,
    - ``trigram ≤ T / Dq`` (the union is at least ``Dq``),
    - ``prefix ≤ 1``,

    folded through ``string_similarity``'s blend and ``term_similarity``'s
    0.9 damp.  Strict superset guarantee: the bound only ever
    *over*-estimates the true score, so every candidate that can reach
    the threshold survives (the 1e-9 slack absorbs float rounding when
    the ceiling is attained exactly).
    """
    gap = distinct_grams - shared
    if gap <= 0:
        return True
    e_max = 4.0 * length / (4.0 * length + gap)
    g_max = min(1.0, shared / distinct_grams) if distinct_grams else 1.0
    blended = 0.5 * e_max + 0.4 * g_max + 0.1
    bound = 0.9 * min(0.99, max(blended, 0.9 * e_max))
    return bound >= threshold - 1e-9


@dataclass
class PruningCounters:
    """How much candidate work the index removed (superset-pruned)."""

    #: metadata spans looked up
    spans: int = 0
    #: concept/property targets a brute-force pass would have scored
    considered: int = 0
    #: targets actually handed back for scoring
    scored: int = 0
    #: fuzzy-value tokens looked up
    value_tokens: int = 0
    #: distinct values a brute-force scan would have visited
    value_considered: int = 0
    #: bucket entries actually handed back
    value_scored: int = 0

    @property
    def pruned(self) -> int:
        """Metadata candidates skipped without scoring."""
        return self.considered - self.scored

    @property
    def pruning_ratio(self) -> float:
        """Fraction of brute-force metadata candidates skipped."""
        return self.pruned / self.considered if self.considered else 0.0

    def merge(self, other: "PruningCounters") -> None:
        self.spans += other.spans
        self.considered += other.considered
        self.scored += other.scored
        self.value_tokens += other.value_tokens
        self.value_considered += other.value_considered
        self.value_scored += other.value_scored

    def snapshot(self) -> "PruningCounters":
        return PruningCounters(
            self.spans,
            self.considered,
            self.scored,
            self.value_tokens,
            self.value_considered,
            self.value_scored,
        )

    def delta(self, since: "PruningCounters") -> "PruningCounters":
        return PruningCounters(
            self.spans - since.spans,
            self.considered - since.considered,
            self.scored - since.scored,
            self.value_tokens - since.value_tokens,
            self.value_considered - since.value_considered,
            self.value_scored - since.value_scored,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "spans": self.spans,
            "considered": self.considered,
            "scored": self.scored,
            "pruned": self.pruned,
            "pruning_ratio": round(self.pruning_ratio, 4),
            "value_tokens": self.value_tokens,
            "value_considered": self.value_considered,
            "value_scored": self.value_scored,
        }


#: one fuzzy-value bucket entry: (ordinal, table, column, value, str(value))
ValueEntry = Tuple[int, str, str, Any, str]


class SchemaIndex:
    """Inverted lexicon + fuzzy buckets over one context's schema."""

    def __init__(
        self,
        ontology: Ontology,
        thesaurus: Optional[Thesaurus] = None,
        database: Optional[Database] = None,
        mapping: Optional[OntologyMapping] = None,
    ):
        self.ontology = ontology
        self.thesaurus = thesaurus or DEFAULT_THESAURUS
        self.database = database
        self.mapping = mapping
        #: superset-pruning counters, observable by the bench harness
        self.pruning = PruningCounters()
        self._build_stats = stats_for("schema_index.lexicon")
        self._value_stats = stats_for("schema_index.values")
        # lexicon state (built lazily, versioned on catalog_version)
        self._targets: List[Tuple[str, Any]] = []
        self._n_metadata = 0
        self._exact: Optional[Dict[str, Set[int]]] = None
        self._trigram: Dict[str, Set[int]] = {}
        self._built_catalog_version: Optional[int] = None
        # span words repeat across overlapping windows and questions;
        # memoize word → admissible metadata ordinals per threshold
        self._lookup_memo = LRUCache(maxsize=8192, stats=stats_for("schema_index.lookup"))
        # fuzzy-value state (built lazily, versioned on data_version)
        self._value_buckets: Optional[Dict[Tuple[str, int], List[ValueEntry]]] = None
        self._n_values = 0
        self._built_data_version: Optional[int] = None

    # -- public API -----------------------------------------------------------

    @staticmethod
    def supports_threshold(threshold: float) -> bool:
        """Whether the trigram filter's soundness proof covers ``threshold``."""
        return threshold >= MIN_THRESHOLD

    @property
    def metadata_targets(self) -> int:
        """Number of concept + property targets (the brute-force loop size)."""
        self._ensure_lexicon()
        return self._n_metadata

    def candidate_targets(
        self, words: Sequence[str], threshold: float
    ) -> List[Tuple[str, Any]]:
        """Ordered ``(kind, element)`` candidates for one metadata span.

        Guaranteed to be a superset of every concept/property whose
        surface score can reach ``threshold`` (which must be ≥
        :data:`MIN_THRESHOLD`), in brute-force iteration order.
        """
        self._ensure_lexicon()
        allowed: Set[int] = set()
        for word in words:
            allowed |= self._word_ordinals(word, threshold)
        ordinals = sorted(allowed)
        self.pruning.spans += 1
        self.pruning.considered += self._n_metadata
        self.pruning.scored += len(ordinals)
        return [self._targets[i] for i in ordinals]

    def _word_ordinals(self, word: str, threshold: float) -> frozenset:
        """Admissible metadata ordinals for one span word (memoized)."""
        key = (word, threshold)
        cached = self._lookup_memo.get(key, MISSING)
        if cached is not MISSING:
            return cached
        exact = self._exact
        assert exact is not None
        n_meta = self._n_metadata
        allowed: Set[int] = set()
        hit = exact.get(word)
        if hit:
            allowed.update(i for i in hit if i < n_meta)
        lemma = lemmatize(word)
        if lemma != word:
            hit = exact.get(lemma)
            if hit:
                allowed.update(i for i in hit if i < n_meta)
        if threshold <= FUZZY_CEILING:
            grams = trigrams(word)
            counts: Dict[int, int] = {}
            for gram in grams:
                bucket = self._trigram.get(gram)
                if bucket:
                    for i in bucket:
                        if i < n_meta and i not in allowed:
                            counts[i] = counts.get(i, 0) + 1
            length = max(1, len(word))
            distinct = len(grams)
            for i, shared in counts.items():
                if _fuzzy_reachable(threshold, length, distinct, shared):
                    allowed.add(i)
        out = frozenset(allowed)
        self._lookup_memo.put(key, out)
        return out

    def lookup(self, word: str, kinds: Optional[Set[str]] = None) -> List[Tuple[str, Any]]:
        """All indexed targets (any kind) reachable from one word.

        General lexicon access for non-annotator clients; ``kinds``
        filters to e.g. ``{"relation", "table", "column"}``.
        """
        self._ensure_lexicon()
        exact = self._exact
        assert exact is not None
        allowed: Set[int] = set()
        for key in (word, lemmatize(word)):
            hit = exact.get(key)
            if hit:
                allowed.update(hit)
        for gram in trigrams(word):
            bucket = self._trigram.get(gram)
            if bucket:
                allowed.update(bucket)
        out = [self._targets[i] for i in sorted(allowed)]
        if kinds is not None:
            out = [t for t in out if t[0] in kinds]
        return out

    def fuzzy_value_pool(self, word: str) -> List[ValueEntry]:
        """Bucketed candidates for one fuzzy value token, in the global
        tables → text columns → distinct values iteration order.

        Buckets replicate the brute-force scan's two pre-filters
        (``|len(text) − len(word)| ≤ 3`` and equal first character), so
        replaying the score comparison over this pool reproduces the
        brute-force best candidate exactly, tie-breaks included.
        """
        self._ensure_values()
        buckets = self._value_buckets
        assert buckets is not None
        first = word[:1]
        pools = []
        for length in range(max(1, len(word) - 3), len(word) + 4):
            bucket = buckets.get((first, length))
            if bucket:
                pools.append(bucket)
        self.pruning.value_tokens += 1
        self.pruning.value_considered += self._n_values
        if not pools:
            return []
        if len(pools) == 1:
            merged = pools[0]
        else:
            merged = []
            for pool in pools:
                merged.extend(pool)
            merged.sort(key=lambda entry: entry[0])
        self.pruning.value_scored += len(merged)
        return merged

    # -- lexicon construction --------------------------------------------------

    def _ensure_lexicon(self) -> None:
        version = self.database.catalog_version if self.database is not None else 0
        if self._exact is not None and version == self._built_catalog_version:
            self._build_stats.hits += 1
            return
        self._build_stats.misses += 1
        with profile_stage("schema_index", fire_hook=False):
            self._build_lexicon()
        self._built_catalog_version = version
        self._build_stats.puts += 1

    def _build_lexicon(self) -> None:
        self._targets = []
        self._exact = {}
        self._trigram = {}
        self._lookup_memo.clear()
        # metadata targets first, in exactly the annotator's brute-force
        # iteration order: each concept, then its properties
        for concept in self.ontology.concepts.values():
            self._add_target("concept", concept, concept.surface_forms())
            for prop in concept.properties.values():
                self._add_target("property", prop, prop.surface_forms())
        self._n_metadata = len(self._targets)
        for relation in self.ontology.relations:
            self._add_target("relation", relation, relation.surface_forms())
        if self.database is not None:
            for table in self.database.tables:
                self._add_target("table", table.name, {table.name.lower()})
                for column in table.schema:
                    self._add_target(
                        "column",
                        (table.name, column.name),
                        {column.name.lower()},
                    )

    def _add_target(self, kind: str, element: Any, forms: Set[str]) -> None:
        ordinal = len(self._targets)
        self._targets.append((kind, element))
        for form in forms:
            self._index_form(ordinal, form)

    def _index_form(self, ordinal: int, form: str) -> None:
        # the whole form is a matching unit (single-word spans score
        # against it directly), and so is each identifier word (phrase
        # scoring aligns span words against them)
        units = {form.lower().strip()}
        units.update(split_identifier(form) or [form.lower()])
        exact = self._exact
        assert exact is not None
        for term in units:
            if not term:
                continue
            for key in self._term_keys(term):
                exact.setdefault(key, set()).add(ordinal)
            for gram in trigrams(term):
                self._trigram.setdefault(gram, set()).add(ordinal)

    def _term_keys(self, term: str) -> Set[str]:
        keys = {term, lemmatize(term)}
        keys |= self.thesaurus.ring_mates(term)
        keys |= self.thesaurus.taxonomy_mates(term, MIN_THRESHOLD / 0.8)
        return keys

    # -- fuzzy-value buckets ---------------------------------------------------

    def _ensure_values(self) -> None:
        if self.database is None:
            if self._value_buckets is None:
                self._value_buckets = {}
            return
        version = self.database.data_version
        if self._value_buckets is not None and version == self._built_data_version:
            self._value_stats.hits += 1
            return
        self._value_stats.misses += 1
        with profile_stage("schema_index", fire_hook=False):
            self._build_values()
        self._built_data_version = version
        self._value_stats.puts += 1

    def _build_values(self) -> None:
        assert self.database is not None
        buckets: Dict[Tuple[str, int], List[ValueEntry]] = {}
        ordinal = 0
        count = 0
        for table in self.database.tables:
            for column in table.schema.text_columns():
                if (
                    self.mapping is not None
                    and self.mapping.property_for_column(table.name, column.name) is None
                ):
                    # the annotator skips unmapped columns before scoring
                    continue
                for value in table.distinct_values(column.name):
                    text = str(value)
                    key = (text[:1].lower(), len(text))
                    buckets.setdefault(key, []).append(
                        (ordinal, table.name, column.name, value, text)
                    )
                    ordinal += 1
                    count += 1
        self._value_buckets = buckets
        self._n_values = count
