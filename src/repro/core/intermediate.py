"""OQL — the Ontology Query Language intermediate representation.

ATHENA [44] translates natural language first into an *intermediate query
language* over the ontology, and only then into SQL.  The indirection is
what lets one interpretation pipeline serve different backends and what
makes interpretations explainable (every OQL element cites ontology
elements the user can recognize).  Our OQL models exactly the query
surface the survey's complexity taxonomy spans (§3):

- property projections with optional aggregates (tier 1-2),
- conditions on properties (tier 1),
- GROUP BY / ORDER BY / LIMIT (tier 2),
- multi-concept queries — joins inferred via the reasoner (tier 3),
- nested sub-queries in conditions (tier 4, the BI class [46]).

`compile_oql` lowers an :class:`OQLQuery` to a
:class:`~repro.sqldb.ast.SelectStatement` using an
:class:`~repro.ontology.mapping.OntologyMapping` and a
:class:`~repro.ontology.reasoner.Reasoner` for join inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.ontology.mapping import OntologyMapping
from repro.ontology.model import Ontology, OntologyError
from repro.ontology.reasoner import Reasoner
from repro.sqldb.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Join,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    SetOperation,
    Star,
    Statement,
    SubqueryExpr,
    TableRef,
    UnaryOp,
)

from .errors import CompilationError


@dataclass(frozen=True)
class PropertyRef:
    """Reference to ``concept.property`` in the ontology."""

    concept: str
    prop: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.concept}.{self.prop}"


@dataclass(frozen=True)
class OQLItem:
    """One projection item: a property, optionally aggregated.

    ``aggregate`` is one of ``count/sum/avg/min/max`` or ``None``;
    ``count_all`` requests ``COUNT(*)`` (the property is ignored).
    ``concept`` names the concept being counted for ``count_all`` items —
    it carries no SQL of its own but pulls that concept into the join,
    so "number of projects per department" joins the projects.
    """

    ref: Optional[PropertyRef] = None
    aggregate: Optional[str] = None
    count_all: bool = False
    distinct: bool = False
    alias: Optional[str] = None
    concept: Optional[str] = None

    def describe(self) -> str:
        """Readable rendering used in explanations."""
        if self.count_all:
            return f"count({self.concept or '*'})" if self.concept else "count(*)"
        body = str(self.ref) if self.ref else "?"
        if self.aggregate:
            inner = f"distinct {body}" if self.distinct else body
            return f"{self.aggregate}({inner})"
        return body


@dataclass(frozen=True)
class OQLCondition:
    """One condition on a property.

    ``op`` ∈ {=, !=, <, <=, >, >=, like, between, in, not_in, exists,
    not_exists}; ``value`` holds a literal (or list for ``in``/values of
    ``between``), and ``subquery`` holds a nested :class:`OQLQuery` when
    the right-hand side is itself a query.
    """

    ref: Optional[PropertyRef]
    op: str
    value: Any = None
    value2: Any = None
    subquery: Optional["OQLQuery"] = None
    negated: bool = False

    def describe(self) -> str:
        """Readable rendering used in explanations."""
        lhs = str(self.ref) if self.ref else ""
        if self.subquery is not None:
            return f"{lhs} {self.op} (<subquery>)"
        if self.op == "between":
            return f"{lhs} between {self.value!r} and {self.value2!r}"
        return f"{lhs} {self.op} {self.value!r}"


@dataclass(frozen=True)
class OQLHasCondition:
    """A relationship condition: the primary concept [does not] relate to
    ``target_concept`` (optionally with conditions on the target).

    Lowered to an ``IN`` / ``NOT IN`` sub-query over the foreign-key
    chain — the only correct lowering for the negated form (an anti-join
    cannot be expressed with inner joins).  This is how ATHENA-style BI
    interpretation expresses "customers that have no orders" [46].
    """

    target_concept: str
    negated: bool = False
    conditions: Tuple[OQLCondition, ...] = ()

    def describe(self) -> str:
        """Readable rendering used in explanations."""
        verb = "has no" if self.negated else "has"
        body = f"{verb} {self.target_concept}"
        if self.conditions:
            body += " with " + " and ".join(c.describe() for c in self.conditions)
        return body


@dataclass(frozen=True)
class OQLOrder:
    """One ORDER BY key (a projection-like item plus a direction)."""

    item: OQLItem
    direction: str = "asc"


@dataclass(frozen=True)
class OQLQuery:
    """A complete ontology-level query.

    ``conditions`` mixes :class:`OQLCondition` (property predicates) and
    :class:`OQLHasCondition` (relationship predicates).
    """

    select: Tuple[OQLItem, ...]
    conditions: Tuple[Union[OQLCondition, "OQLHasCondition"], ...] = ()
    group_by: Tuple[PropertyRef, ...] = ()
    having: Tuple[OQLCondition, ...] = ()
    order_by: Tuple[OQLOrder, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    def concepts(self) -> List[str]:
        """All concepts referenced anywhere in the query (dedup, ordered)."""
        seen: List[str] = []

        def _add(concept: Optional[str]) -> None:
            if concept and concept not in seen:
                seen.append(concept)

        for item in self.select:
            if item.ref:
                _add(item.ref.concept)
            _add(item.concept)
        for cond in self.conditions:
            if isinstance(cond, OQLHasCondition):
                continue  # relationship conditions do not force a join
            if cond.ref:
                _add(cond.ref.concept)
        for ref in self.group_by:
            _add(ref.concept)
        for cond in self.having:
            if cond.ref:
                _add(cond.ref.concept)
        for order in self.order_by:
            if order.item.ref:
                _add(order.item.ref.concept)
        return seen

    def to_english(self) -> str:
        """A NaLIR-style natural-language explanation of the query.

        Entity-based systems explain their interpretation back to the
        user for verification [30-32]; this rendering is what the CLI's
        ``--explain`` and clarification dialogs show.
        """
        ops = {
            "=": "is", "!=": "is not", ">": "is greater than",
            "<": "is less than", ">=": "is at least", "<=": "is at most",
            "like": "matches", "between": "is between", "in": "is one of",
            "not_in": "is none of",
        }
        agg_words = {
            "count": "the number of", "sum": "the total", "avg": "the average",
            "min": "the smallest", "max": "the largest",
        }

        def item_text(item: OQLItem) -> str:
            if item.count_all:
                return f"how many {item.concept or 'rows'}(s) there are"
            assert item.ref is not None
            if item.aggregate:
                return f"{agg_words[item.aggregate]} {item.ref.prop} of each {item.ref.concept}"
            return f"the {item.ref.prop} of each {item.ref.concept}"

        def cond_text(cond) -> str:
            if isinstance(cond, OQLHasCondition):
                verb = "it has no" if cond.negated else "it has some"
                body = f"{verb} {cond.target_concept}"
                if cond.conditions:
                    body += " whose " + " and ".join(
                        cond_text(c).replace(f"{cond.target_concept}'s ", "", 1)
                        for c in cond.conditions
                    )
                return body
            lhs = f"{cond.ref.concept}'s {cond.ref.prop}" if cond.ref else "the value"
            if cond.subquery is not None:
                return f"{lhs} {ops.get(cond.op, cond.op)} ({cond.subquery.to_english()})"
            if cond.op == "between":
                return f"{lhs} is between {cond.value} and {cond.value2}"
            return f"{lhs} {ops.get(cond.op, cond.op)} {cond.value!r}"

        sentence = "find " + " and ".join(item_text(i) for i in self.select)
        if self.conditions:
            sentence += ", where " + " and ".join(cond_text(c) for c in self.conditions)
        if self.group_by:
            sentence += ", grouped by " + ", ".join(r.prop for r in self.group_by)
        if self.order_by:
            directions = {"asc": "ascending", "desc": "descending"}
            sentence += ", ordered by " + ", ".join(
                f"{o.item.describe()} ({directions[o.direction]})" for o in self.order_by
            )
        if self.limit is not None:
            sentence += f", keeping the top {self.limit}"
        return sentence

    def describe(self) -> str:
        """One-line readable form for logs and clarification dialogs."""
        parts = ["select " + ", ".join(i.describe() for i in self.select)]
        if self.conditions:
            parts.append("where " + " and ".join(c.describe() for c in self.conditions))
        if self.group_by:
            parts.append("group by " + ", ".join(map(str, self.group_by)))
        if self.having:
            parts.append("having " + " and ".join(c.describe() for c in self.having))
        if self.order_by:
            parts.append(
                "order by "
                + ", ".join(f"{o.item.describe()} {o.direction}" for o in self.order_by)
            )
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True)
class OQLUnionQuery:
    """A disjunctive ontology query: the union of branch readings.

    ATHENA-style interpretation builds one conjunctive tree per query;
    "projects with status X or with owner Y" does not fit a single tree
    when the disjuncts constrain *different* properties.  The union form
    keeps one branch per disjunct and lowers to a SQL compound
    (``UNION``, duplicate-eliminating, NULLs comparing equal in dedup).
    """

    branches: Tuple[OQLQuery, ...]

    def __post_init__(self):
        if len(self.branches) < 2:
            raise ValueError("a union query needs at least two branches")

    def concepts(self) -> List[str]:
        """All concepts referenced by any branch (dedup, ordered)."""
        seen: List[str] = []
        for branch in self.branches:
            for concept in branch.concepts():
                if concept not in seen:
                    seen.append(concept)
        return seen

    def to_english(self) -> str:
        """Natural-language rendering: branch sentences joined by or."""
        sentences = [b.to_english() for b in self.branches]
        rest = [s[len("find ") :] if s.startswith("find ") else s for s in sentences[1:]]
        return sentences[0] + "".join(f", or {s}" for s in rest)

    def describe(self) -> str:
        """One-line readable form for logs and clarification dialogs."""
        return " union ".join(b.describe() for b in self.branches)


# --------------------------------------------------------------------------
# Compilation to SQL
# --------------------------------------------------------------------------


class OQLCompiler:
    """Lowers OQL queries to SQL ASTs through an ontology mapping."""

    def __init__(self, ontology: Ontology, mapping: OntologyMapping):
        self.ontology = ontology
        self.mapping = mapping
        self.reasoner = Reasoner(ontology, mapping)

    def compile(self, query: OQLQuery) -> SelectStatement:
        """Compile ``query`` into a :class:`SelectStatement`.

        Join structure: the Steiner tree over the query's concepts is
        walked breadth-first; each hop contributes the FK chain of the
        relation used, which may pass through junction tables not in the
        ontology.
        """
        concepts = query.concepts()
        if not concepts:
            raise CompilationError("OQL query references no concepts")
        try:
            from_table, joins, table_order = self._build_joins(concepts)
        except OntologyError as exc:
            raise CompilationError(str(exc)) from exc

        select_items = tuple(
            SelectItem(self._item_expr(item), item.alias) for item in query.select
        )
        where_parts: List[Optional[Expr]] = []
        for cond in query.conditions:
            if isinstance(cond, OQLHasCondition):
                where_parts.append(self._has_condition_expr(cond, concepts[0]))
            else:
                where_parts.append(self._condition_expr(cond))
        where = self._conjunction(where_parts)
        having = self._conjunction([self._condition_expr(c) for c in query.having])
        group_by = tuple(self._ref_expr(ref) for ref in query.group_by)
        order_by = tuple(
            OrderItem(self._item_expr(o.item), o.direction) for o in query.order_by
        )
        return SelectStatement(
            select_items=select_items,
            from_table=from_table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=query.limit,
            distinct=query.distinct,
        )

    def compile_union(self, query: OQLUnionQuery) -> SetOperation:
        """Compile a disjunctive query into a left-associated ``UNION``.

        Duplicate-eliminating by design: a row satisfying several
        disjuncts must appear once, which is exactly compound ``UNION``
        dedup (where NULL keys compare equal).
        """
        blocks = [self.compile(branch) for branch in query.branches]
        widths = {len(b.select_items) for b in blocks}
        if len(widths) > 1:
            raise CompilationError(
                "union branches project different column counts: "
                + ", ".join(str(len(b.select_items)) for b in blocks)
            )
        stmt: Statement = blocks[0]
        for block in blocks[1:]:
            stmt = SetOperation("union", stmt, block)
        return stmt

    # -- join construction -------------------------------------------------------

    def _build_joins(
        self, concepts: Sequence[str]
    ) -> Tuple[TableRef, Tuple[Join, ...], List[str]]:
        root_table = self.mapping.table_of(concepts[0])
        tables = [root_table]
        joins: List[Join] = []
        if len(set(concepts)) > 1:
            ordered = self.reasoner.join_concepts(list(concepts))
            visited_concepts = {self.ontology.concept(concepts[0]).name}
            # join_concepts starts BFS from concepts[0]
            for concept_name, relation in ordered:
                if relation is None:
                    visited_concepts.add(concept_name)
                    continue
                # orient the FK chain from an already-joined concept
                src = relation.src if relation.src in visited_concepts else relation.dst
                dst = relation.dst if src == relation.src else relation.src
                chain = self.mapping.fk_chain_of(relation.name, src, dst)
                for fk in chain:
                    next_table = (
                        fk.dst_table if fk.src_table in tables else fk.src_table
                    )
                    near_table = fk.src_table if next_table == fk.dst_table else fk.dst_table
                    near_col = fk.src_column if next_table == fk.dst_table else fk.dst_column
                    far_col = fk.dst_column if next_table == fk.dst_table else fk.src_column
                    if next_table in tables:
                        continue
                    condition = BinaryOp(
                        "=",
                        ColumnRef(near_col, table=near_table),
                        ColumnRef(far_col, table=next_table),
                    )
                    joins.append(Join(TableRef(next_table), condition))
                    tables.append(next_table)
                visited_concepts.add(concept_name)
        return TableRef(root_table), tuple(joins), tables

    # -- expression lowering ---------------------------------------------------------

    def _ref_expr(self, ref: PropertyRef) -> Expr:
        table, column = self.mapping.column_of(ref.concept, ref.prop)
        return ColumnRef(column, table=table)

    def _item_expr(self, item: OQLItem) -> Expr:
        if item.count_all:
            return FuncCall("count", (Star(),))
        if item.ref is None:
            raise CompilationError("projection item lacks a property reference")
        base = self._ref_expr(item.ref)
        if item.aggregate:
            return FuncCall(item.aggregate.lower(), (base,), distinct=item.distinct)
        return base

    def _condition_expr(self, cond: OQLCondition) -> Expr:
        if cond.op in ("exists", "not_exists"):
            if cond.subquery is None:
                raise CompilationError("EXISTS condition requires a subquery")
            sub = self.compile(cond.subquery)
            kind = "not_exists" if (cond.op == "not_exists" or cond.negated) else "exists"
            return SubqueryExpr(kind, sub)
        if cond.ref is None:
            raise CompilationError(f"condition {cond.op!r} lacks a property reference")
        lhs: Expr
        if cond.op in ("having_count",):
            lhs = FuncCall("count", (Star(),))
            expr: Expr = BinaryOp(cond.value2 or ">", lhs, Literal(cond.value))
            return expr
        lhs = self._ref_expr(cond.ref)
        if cond.subquery is not None:
            sub = self.compile(cond.subquery)
            if cond.op in ("in", "not_in"):
                kind = "not_in" if (cond.op == "not_in" or cond.negated) else "in"
                return SubqueryExpr(kind, sub, operand=lhs)
            expr = SubqueryExpr("scalar", sub, operand=lhs, op=cond.op)
            return UnaryOp("NOT", expr) if cond.negated else expr
        if cond.op == "between":
            return Between(lhs, Literal(cond.value), Literal(cond.value2), negated=cond.negated)
        if cond.op in ("in", "not_in"):
            # Strip NULLs: a NULL literal never matches, and under
            # three-valued logic ``x NOT IN (…, NULL)`` is never true —
            # one stray NULL would silently empty the negated result.
            values = [v for v in (cond.value or []) if v is not None]
            items = tuple(Literal(v) for v in values)
            return InList(lhs, items, negated=(cond.op == "not_in" or cond.negated))
        if cond.op == "like":
            expr = BinaryOp("LIKE", lhs, Literal(cond.value))
            return UnaryOp("NOT", expr) if cond.negated else expr
        if cond.op in ("=", "!=", "<", "<=", ">", ">="):
            op = cond.op
            if cond.negated and op == "=":
                op = "!="
                expr = BinaryOp(op, lhs, Literal(cond.value))
                return expr
            expr = BinaryOp(op, lhs, Literal(cond.value))
            return UnaryOp("NOT", expr) if cond.negated else expr
        # aggregate HAVING conditions carry the aggregate in `value2`
        if cond.op in ("count>", "count<", "count="):
            func = FuncCall("count", (Star(),))
            return BinaryOp(cond.op[-1], func, Literal(cond.value))
        raise CompilationError(f"unsupported OQL operator {cond.op!r}")

    def _has_condition_expr(self, cond: OQLHasCondition, primary: str) -> Expr:
        """Lower a relationship condition to an ``IN`` / ``NOT IN``
        sub-query along the foreign-key chain from target to primary."""
        try:
            chain = self.reasoner.fk_chain(cond.target_concept, primary)
        except OntologyError as exc:
            raise CompilationError(str(exc)) from exc
        if not chain:
            raise CompilationError(
                f"no relationship between {primary!r} and {cond.target_concept!r}"
            )
        last = chain[-1]
        outer = ColumnRef(last.dst_column, table=last.dst_table)
        inner_col = ColumnRef(last.src_column, table=last.src_table)
        from_table = TableRef(chain[0].src_table)
        joins: List[Join] = []
        for fk in chain[:-1]:
            joins.append(
                Join(
                    TableRef(fk.dst_table),
                    BinaryOp(
                        "=",
                        ColumnRef(fk.src_column, table=fk.src_table),
                        ColumnRef(fk.dst_column, table=fk.dst_table),
                    ),
                )
            )
        inner_parts: List[Optional[Expr]] = [
            self._condition_expr(c) for c in cond.conditions
        ]
        if cond.negated:
            # keep NULL foreign keys out of the NOT IN set
            inner_parts.append(IsNull(inner_col, negated=True))
        subquery = SelectStatement(
            select_items=(SelectItem(inner_col),),
            from_table=from_table,
            joins=tuple(joins),
            where=self._conjunction(inner_parts),
        )
        kind = "not_in" if cond.negated else "in"
        return SubqueryExpr(kind, subquery, operand=outer)

    @staticmethod
    def _conjunction(exprs: List[Optional[Expr]]) -> Optional[Expr]:
        present = [e for e in exprs if e is not None]
        if not present:
            return None
        out = present[0]
        for expr in present[1:]:
            out = BinaryOp("AND", out, expr)
        return out


def compile_oql(
    query: Union[OQLQuery, OQLUnionQuery],
    ontology: Ontology,
    mapping: OntologyMapping,
) -> Statement:
    """Convenience wrapper around :class:`OQLCompiler`."""
    compiler = OQLCompiler(ontology, mapping)
    if isinstance(query, OQLUnionQuery):
        return compiler.compile_union(query)
    return compiler.compile(query)
