"""The system interface and per-database interpretation context.

`NLIDBSystem` is the single interface every surveyed approach implements
in this reproduction — the survey's own framing (§4: systems differ in
*interpretation method*, not in what they must produce).  The
:class:`NLIDBContext` bundles the per-database resources interpretation
needs (indexes, ontology, reasoner) so they are built once and shared by
all systems under comparison.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.nlp.thesaurus import DEFAULT_THESAURUS, Thesaurus
from repro.ontology.builder import build_ontology
from repro.ontology.mapping import OntologyMapping
from repro.ontology.model import Ontology
from repro.ontology.reasoner import Reasoner
from repro.perf.cache import InterpretationCache
from repro.perf.profiler import profile_stage
from repro.sqldb.database import Database
from repro.sqldb.executor import Executor
from repro.sqldb.index import DatabaseIndex
from repro.sqldb.relation import Relation

from .interpretation import Interpretation
from .ranking import apply_static_analysis
from .schema_index import PruningCounters, SchemaIndex


class NLIDBContext:
    """Shared per-database resources for interpretation.

    Building the value index and the ontology is linear in the data; the
    context makes that a one-time cost per database, mirroring how real
    systems build their indexes offline.
    """

    def __init__(
        self,
        database: Database,
        ontology: Optional[Ontology] = None,
        mapping: Optional[OntologyMapping] = None,
        thesaurus: Optional[Thesaurus] = None,
        use_planner: bool = True,
        interpretation_cache: Optional[InterpretationCache] = None,
        use_schema_index: bool = True,
    ):
        self.database = database
        self.index = DatabaseIndex(database)
        if ontology is None or mapping is None:
            ontology, mapping = build_ontology(database)
        self.ontology = ontology
        self.mapping = mapping
        self.reasoner = Reasoner(ontology, mapping)
        self.thesaurus = thesaurus or DEFAULT_THESAURUS
        self.executor = Executor(database, use_planner=use_planner)
        #: optional memo of ranked interpretation lists, consulted by
        #: :meth:`interpret`; keyed on the database's data version so
        #: mutations invalidate automatically
        self.interpretation_cache = interpretation_cache
        #: per-query ExecutionStats of the most recent execute() call
        self.last_stats = None
        #: escape hatch: ``False`` forces brute-force evidence matching
        self.use_schema_index = use_schema_index
        self._schema_index: Optional[SchemaIndex] = None
        self._register_schema_synonyms()

    def _register_schema_synonyms(self) -> None:
        """Feed schema-declared synonyms into the thesaurus so string
        and semantic matching agree with the catalog.

        The thesaurus is copied before the first mutation (copy-on-write):
        contexts usually share the module-level ``DEFAULT_THESAURUS``, and
        registering one database's synonyms into it would leak them into
        every other context in the process.
        """
        rings = []
        for table in self.database.tables:
            if table.schema.synonyms:
                rings.append([table.name, *table.schema.synonyms])
            for column in table.schema:
                if column.synonyms:
                    rings.append([column.name, *column.synonyms])
        if not rings:
            return
        self.thesaurus = self.thesaurus.copy()
        for ring in rings:
            self.thesaurus.add_synonyms(ring)

    @property
    def schema_index(self) -> Optional[SchemaIndex]:
        """The context's compressed schema index, or ``None`` when the
        ``use_schema_index`` escape hatch disabled it.

        Built lazily on first access; the lexicon and value buckets
        inside rebuild themselves when ``catalog_version`` /
        ``data_version`` move, so the index is always current.
        """
        if not self.use_schema_index:
            return None
        if self._schema_index is None:
            self._schema_index = SchemaIndex(
                self.ontology, self.thesaurus, self.database, self.mapping
            )
        return self._schema_index

    def schema_index_counters(self) -> Optional[PruningCounters]:
        """Live pruning counters, or ``None`` while no index exists yet.

        Deliberately does *not* build the index — the harness peeks at
        this around every example to attribute pruning deltas.
        """
        if not self.use_schema_index or self._schema_index is None:
            return None
        return self._schema_index.pruning

    def interpret(self, system: "NLIDBSystem", question: str) -> List[Interpretation]:
        """Run (or replay) ``system``'s interpretation of ``question``.

        When an :class:`InterpretationCache` is attached, a repeat of the
        same normalized question against the same database version is
        served from the cache; the entry is deep-copied on both sides, so
        callers may mutate the result freely.
        """
        cache = self.interpretation_cache
        if cache is None:
            return system.interpret(question, self)
        version = self.database.data_version
        found = cache.get(system.name, question, version)
        if found is not None:
            return found
        interpretations = system.interpret(question, self)
        cache.put(system.name, question, version, interpretations)
        return interpretations

    def execute(self, interpretation: Interpretation) -> Relation:
        """Compile (if needed) and run an interpretation.

        The executed query's counters land in ``self.last_stats``
        (:class:`~repro.sqldb.planner.ExecutionStats`).
        """
        with profile_stage("compile"):
            stmt = interpretation.to_sql(self.ontology, self.mapping)
        with profile_stage("execute"):
            result = self.executor.execute(stmt)
        self.last_stats = self.executor.last_stats
        return result

    def explain(self, interpretation: Interpretation) -> str:
        """EXPLAIN-style plan description for an interpretation's SQL."""
        stmt = interpretation.to_sql(self.ontology, self.mapping)
        return self.executor.explain(stmt)

    def analyze(self, interpretation: Interpretation):
        """Static-analyzer verdict on an interpretation's compiled SQL.

        Returns the executor's cached
        :class:`~repro.sqldb.analyzer.AnalysisResult`, or ``None`` when
        the interpretation cannot be compiled at all (nothing to
        analyze).  No rows are touched.
        """
        try:
            stmt = interpretation.to_sql(self.ontology, self.mapping)
        except Exception:
            return None
        return self.executor.analysis_for(stmt)


class NLIDBSystem(abc.ABC):
    """Base class for every NLIDB system in the reproduction."""

    #: short identifier used in benchmark tables
    name: str = "base"
    #: which interpretation family the survey places this system in
    family: str = "entity"  # "entity" | "ml" | "hybrid"

    @abc.abstractmethod
    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        """Produce ranked candidate interpretations for ``question``.

        An empty list means the system cannot interpret the question at
        all (counted as abstention by the precision/recall metrics).
        """

    def answer(self, question: str, context: NLIDBContext) -> Optional[Relation]:
        """Interpret and execute the best *statically valid* candidate.

        Candidates whose compiled SQL fails semantic analysis are pruned
        before selection — the executor pre-flight would reject them
        anyway, so a lower-ranked but valid reading can still answer.
        Returns ``None`` when nothing survives or execution fails.
        """
        interpretations = context.interpret(self, question)
        if not interpretations:
            return None
        candidates = apply_static_analysis(interpretations, context.analyze)
        if not candidates:
            return None
        try:
            return context.execute(candidates[0])
        except Exception:
            return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} family={self.family!r}>"
