"""Query-complexity taxonomy (§3 of the survey).

The survey classifies generated queries into four tiers:

1. ``SELECTION`` — simple selection on a single table,
2. ``AGGREGATION`` — aggregation / GROUP BY / ORDER BY on a single table,
3. ``JOIN`` — queries involving multiple tables,
4. ``NESTED`` — BI/analytic queries with nested sub-queries.

`classify` assigns a tier to any SQL statement; the benchmark harness
uses it both to stratify workloads and to report per-tier capability
(experiment E1).
"""

from __future__ import annotations

import enum
from typing import Union

from repro.sqldb.ast import (
    SelectStatement,
    SetOperation,
    Statement,
    WindowFunction,
)
from repro.sqldb.parser import parse_select


class ComplexityTier(enum.IntEnum):
    """The survey's four complexity tiers (ordered)."""

    SELECTION = 1
    AGGREGATION = 2
    JOIN = 3
    NESTED = 4

    @property
    def label(self) -> str:
        """Readable name used in benchmark tables."""
        return {
            ComplexityTier.SELECTION: "simple selection",
            ComplexityTier.AGGREGATION: "aggregation",
            ComplexityTier.JOIN: "multi-table join",
            ComplexityTier.NESTED: "nested (BI)",
        }[self]


def _has_window(stmt: SelectStatement) -> bool:
    """Whether any select-list or ORDER BY expression contains a window
    function call."""
    exprs = [item.expr for item in stmt.select_items]
    exprs.extend(order.expr for order in stmt.order_by)
    return any(
        isinstance(node, WindowFunction) for expr in exprs for node in expr.walk()
    )


def classify(query: Union[str, Statement]) -> ComplexityTier:
    """Classify SQL text or an AST into a :class:`ComplexityTier`.

    Nesting dominates joins, which dominate aggregation: a nested query
    with joins is ``NESTED``; a single-table ``GROUP BY`` is
    ``AGGREGATION``.  Compound queries (``UNION``/``EXCEPT``/
    ``INTERSECT``) and window functions are BI/analytic shapes, so both
    land in ``NESTED`` alongside sub-queries.
    """
    stmt = parse_select(query) if isinstance(query, str) else query
    if isinstance(stmt, SetOperation):
        return ComplexityTier.NESTED
    if stmt.subqueries() or _has_window(stmt):
        return ComplexityTier.NESTED
    if len(stmt.referenced_tables()) > 1:
        return ComplexityTier.JOIN
    if stmt.has_aggregate() or stmt.group_by or stmt.order_by:
        return ComplexityTier.AGGREGATION
    return ComplexityTier.SELECTION


def tier_at_most(query: Union[str, Statement], tier: ComplexityTier) -> bool:
    """Whether ``query`` is within (at or below) ``tier``."""
    return classify(query) <= tier


def spider_hardness(query: Union[str, Statement]) -> str:
    """Spider-style hardness label: easy / medium / hard / extra.

    Spider [64] buckets queries by counting SQL components; this is the
    same idea expressed over our dialect: nesting or many simultaneous
    components → ``extra``; joins or aggregation-with-grouping-and-
    ordering → ``hard``; single-feature queries → ``medium``; bare
    selections → ``easy``.
    """
    stmt = parse_select(query) if isinstance(query, str) else query
    if isinstance(stmt, SetOperation):
        # Compounds are Spider's hallmark "extra" component.
        return "extra"
    if _has_window(stmt):
        return "extra"
    components = 0
    if stmt.joins:
        components += 1 + max(0, len(stmt.joins) - 1)
    if stmt.has_aggregate():
        components += 1
    if stmt.group_by:
        components += 1
    if stmt.order_by:
        components += 1
    if stmt.limit is not None:
        components += 1
    nested = bool(stmt.subqueries())
    if nested and components >= 1:
        return "extra"
    if nested or components >= 3:
        return "extra" if nested else "hard"
    if stmt.joins or components == 2:
        return "hard"
    if components == 1:
        return "medium"
    return "easy"
