"""System registry.

The benchmark harness compares systems by name; the registry decouples
"which systems exist" from "which systems this experiment runs".
Factories (not instances) are registered because some systems carry
trained state and must be constructed per experiment.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .pipeline import NLIDBSystem

_FACTORIES: Dict[str, Callable[[], NLIDBSystem]] = {}


def register(name: str, factory: Callable[[], NLIDBSystem]) -> None:
    """Register a system factory under ``name`` (overwrites silently)."""
    _FACTORIES[name.lower()] = factory


def create(name: str) -> NLIDBSystem:
    """Instantiate the system registered under ``name``."""
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise KeyError(f"no NLIDB system registered as {name!r}; have {available()}")
    return factory()


def available() -> List[str]:
    """Sorted names of all registered systems."""
    return sorted(_FACTORIES)


def registered(name: str) -> Callable[[Callable[[], NLIDBSystem]], Callable[[], NLIDBSystem]]:
    """Decorator form: ``@registered("soda")`` on a factory callable."""

    def wrap(factory: Callable[[], NLIDBSystem]) -> Callable[[], NLIDBSystem]:
        register(name, factory)
        return factory

    return wrap
