"""Candidate interpretations of a question.

A question is ambiguous; every system therefore produces a *ranked list*
of :class:`Interpretation` objects.  An interpretation carries either an
OQL query (entity-based systems) or a raw SQL AST (neural systems), the
evidence trail that produced it, a confidence, and optional clarification
hooks for interactive systems (NaLIR [31], DialSQL [22]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Union

from repro.ontology.mapping import OntologyMapping
from repro.ontology.model import Ontology
from repro.sqldb.ast import Statement

from .errors import CompilationError
from .evidence import EvidenceAnnotation
from .intermediate import OQLQuery, OQLUnionQuery, compile_oql


@dataclass
class Interpretation:
    """One candidate reading of the question.

    Exactly one of ``oql`` / ``sql`` is set at construction; ``to_sql``
    lowers OQL lazily (and caches) when the ontology context is given.
    """

    system: str
    confidence: float
    oql: Optional[Union[OQLQuery, OQLUnionQuery]] = None
    sql: Optional[Statement] = None
    evidence: List[EvidenceAnnotation] = field(default_factory=list)
    explanation: str = ""
    clarifications: List[Any] = field(default_factory=list)

    def __post_init__(self):
        if (self.oql is None) == (self.sql is None):
            raise ValueError("an interpretation needs exactly one of oql or sql")

    def to_sql(
        self,
        ontology: Optional[Ontology] = None,
        mapping: Optional[OntologyMapping] = None,
    ) -> Statement:
        """The SQL statement of this interpretation.

        OQL-backed interpretations need ``ontology`` and ``mapping`` on
        the first call; the compiled statement is cached.
        """
        if self.sql is not None:
            return self.sql
        if ontology is None or mapping is None:
            raise CompilationError(
                "OQL interpretation needs ontology+mapping to compile"
            )
        assert self.oql is not None
        self.sql = compile_oql(self.oql, ontology, mapping)
        return self.sql

    def describe(self) -> str:
        """Readable multi-line explanation of this interpretation."""
        lines = [f"system={self.system} confidence={self.confidence:.3f}"]
        if self.explanation:
            lines.append(self.explanation)
        if self.oql is not None:
            lines.append("OQL: " + self.oql.describe())
        if self.sql is not None:
            lines.append("SQL: " + self.sql.to_sql())
        for evidence in self.evidence:
            lines.append("  " + evidence.describe())
        return "\n".join(lines)


def best(interpretations: Sequence[Interpretation]) -> Optional[Interpretation]:
    """Highest-confidence interpretation, or ``None`` if empty."""
    if not interpretations:
        return None
    return max(interpretations, key=lambda i: i.confidence)
