"""Evidence annotations: how question tokens map to query elements.

Every entity-based system in the survey (§4.1) works by *annotating*
spans of the question with the database/ontology elements they evoke —
SODA's index hits, NaLIR's parse-node mappings, ATHENA's ontology
evidence.  :class:`EvidenceAnnotation` is the shared record; the ranker
scores interpretations by how much of the question their evidence covers
and how confident each piece is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class EvidenceAnnotation:
    """One span → element mapping.

    Attributes:
        start: first token index of the span (inclusive).
        end: one past the last token index.
        kind: what was matched — ``"concept"``, ``"property"``,
            ``"relation"``, ``"table"``, ``"column"``, ``"value"``,
            ``"operator"``, ``"aggregation"``, ``"pattern"``.
        target: readable identity of the matched element
            (``"customer.city"``, ``"value 'Berlin' in customers.city"``).
        score: match confidence in (0, 1].
        payload: optional machine payload (e.g. the matched value).
    """

    start: int
    end: int
    kind: str
    target: str
    score: float = 1.0
    payload: Any = None

    @property
    def span(self) -> Tuple[int, int]:
        """(start, end) token span."""
        return (self.start, self.end)

    def overlaps(self, other: "EvidenceAnnotation") -> bool:
        """Whether two annotations claim overlapping spans."""
        return self.start < other.end and other.start < self.end

    def describe(self) -> str:
        """Readable line for explanations."""
        return f"[{self.start}:{self.end}] {self.kind} -> {self.target} ({self.score:.2f})"


def covered_tokens(annotations: Sequence[EvidenceAnnotation]) -> Set[int]:
    """Set of token indices claimed by any annotation."""
    covered: Set[int] = set()
    for ann in annotations:
        covered.update(range(ann.start, ann.end))
    return covered


def coverage(
    annotations: Sequence[EvidenceAnnotation], content_token_indices: Sequence[int]
) -> float:
    """Fraction of content tokens covered by evidence (in [0, 1])."""
    if not content_token_indices:
        return 1.0
    covered = covered_tokens(annotations)
    hit = sum(1 for i in content_token_indices if i in covered)
    return hit / len(content_token_indices)


def resolve_overlaps(
    annotations: Sequence[EvidenceAnnotation],
) -> List[EvidenceAnnotation]:
    """Greedy overlap resolution by composite score.

    This is the standard annotation-selection step (SODA/ATHENA): a
    phrase match ("order date") beats the word matches it subsumes —
    but only when its match quality holds up.  Longer spans earn a small
    per-token bonus rather than absolute priority, so a strong word match
    ("grade" → the adjacent table's column, exact + context-boosted) can
    still beat a mediocre phrase reading ("average grade" → gpa).
    """
    def composite(a: EvidenceAnnotation) -> float:
        return a.score + 0.05 * (a.end - a.start - 1)

    ranked = sorted(
        annotations, key=lambda a: (-composite(a), a.start, a.kind, a.target)
    )
    kept: List[EvidenceAnnotation] = []
    # Token-index set instead of an any(overlaps) scan over `kept`: two
    # non-empty annotations overlap exactly when they share a token
    # index, so the check is O(span length) per candidate instead of
    # O(|kept|) — the difference between linear and quadratic resolution
    # under the candidate floods wide catalogs produce.  Degenerate
    # empty spans (start == end, which no producer emits) claim no
    # tokens and conflict with nothing.
    covered: Set[int] = set()
    for ann in ranked:
        span = range(ann.start, ann.end)
        if any(i in covered for i in span):
            continue
        covered.update(span)
        kept.append(ann)
    kept.sort(key=lambda a: a.start)
    return kept
