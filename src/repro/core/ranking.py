"""Interpretation ranking.

SODA [15] ranks candidate interpretations "based on an aggregation of the
scores associated with each lookup result"; NaLIR and ATHENA do the same
with parse/ontology evidence.  `score_interpretation` implements that
shared recipe — evidence quality × question coverage — and `rank` orders
a candidate list, optionally re-normalizing confidences.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

from repro.nlp.stopwords import is_stopword
from repro.nlp.tokenizer import Token
from repro.perf.profiler import profile_stage
from repro.sqldb.analyzer import AnalysisResult

from .evidence import EvidenceAnnotation, coverage
from .interpretation import Interpretation


def evidence_score(annotations: Sequence[EvidenceAnnotation]) -> float:
    """Geometric mean of evidence scores (1.0 when there is none).

    The geometric mean punishes a single weak link harder than the
    arithmetic mean — one dubious mapping should sink the whole
    interpretation, which is what makes entity-based ranking precise.
    """
    if not annotations:
        return 1.0
    logs = sum(math.log(min(max(a.score, 1e-6), 1.0)) for a in annotations)
    return math.exp(logs / len(annotations))


def content_indices(tokens: Sequence[Token]) -> List[int]:
    """Indices of tokens that matter for coverage (non-stopword words,
    numbers, dates, quoted values)."""
    out = []
    for i, token in enumerate(tokens):
        if token.kind == "punct":
            continue
        if token.kind == "word" and is_stopword(token.norm):
            continue
        out.append(i)
    return out


def score_interpretation(
    interpretation: Interpretation, tokens: Sequence[Token]
) -> float:
    """Composite score: evidence quality × coverage of content tokens."""
    ev = evidence_score(interpretation.evidence)
    cov = coverage(interpretation.evidence, content_indices(tokens))
    return ev * (0.4 + 0.6 * cov)


def rank(
    interpretations: List[Interpretation],
    tokens: Sequence[Token],
    rescore: bool = True,
) -> List[Interpretation]:
    """Order interpretations best-first.

    With ``rescore`` (the default) each interpretation's confidence is
    replaced by the composite score; otherwise existing confidences are
    used only for ordering.
    """
    with profile_stage("rank"):
        if rescore:
            for interpretation in interpretations:
                interpretation.confidence = score_interpretation(
                    interpretation, tokens
                )
        return sorted(interpretations, key=lambda i: -i.confidence)


#: per-warning confidence multiplier used by :func:`apply_static_analysis`
WARNING_PENALTY = 0.9


def apply_static_analysis(
    interpretations: Sequence[Interpretation],
    analyze: Callable[[Interpretation], Optional[AnalysisResult]],
    warning_penalty: float = WARNING_PENALTY,
) -> List[Interpretation]:
    """Prune statically invalid candidates and penalize warned ones.

    ``analyze`` maps a candidate to the analyzer verdict on its compiled
    SQL (``None`` when the candidate cannot even be compiled — such
    candidates are kept; compilation failures are the executor's
    problem).  Candidates whose SQL carries *error* diagnostics are
    dropped outright: the executor pre-flight would reject them anyway,
    so spending rank on them only displaces viable readings.  Each
    *warning* (always-false comparison, ungrouped bare column, …)
    multiplies confidence by ``warning_penalty`` — dubious readings sink
    below clean ones of comparable evidence but stay available.
    """
    kept: List[Interpretation] = []
    for interpretation in interpretations:
        result = analyze(interpretation)
        if result is not None:
            if result.errors:
                continue
            if result.warnings:
                interpretation.confidence *= warning_penalty ** len(result.warnings)
        kept.append(interpretation)
    return sorted(kept, key=lambda i: -i.confidence)
