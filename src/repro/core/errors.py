"""Errors raised by the core NLIDB framework."""

from __future__ import annotations


class NLIDBError(Exception):
    """Base class for interpretation-framework errors."""


class InterpretationError(NLIDBError):
    """Raised when a question cannot be interpreted at all.

    Systems normally return an empty interpretation list instead; this
    exception is reserved for *structural* failures (e.g. compiling an
    OQL query whose concepts are disconnected).
    """


class CompilationError(NLIDBError):
    """Raised when an OQL query cannot be compiled to SQL."""
