"""Errors raised by the core NLIDB framework.

All framework errors inherit :class:`repro.errors.ReproError`, so they
carry a stable ``code`` attribute in the same style as the SQL engine's
diagnostic codes (``SQLxxx``); framework codes use the ``NLQ5xx`` range.
"""

from __future__ import annotations

from repro.errors import ReproError


class NLIDBError(ReproError):
    """Base class for interpretation-framework errors."""

    code = "NLQ500"


class InterpretationError(NLIDBError):
    """Raised when a question cannot be interpreted at all.

    Systems normally return an empty interpretation list instead; this
    exception is reserved for *structural* failures (e.g. compiling an
    OQL query whose concepts are disconnected).
    """

    code = "NLQ510"


class CompilationError(NLIDBError):
    """Raised when an OQL query cannot be compiled to SQL."""

    code = "NLQ520"
