"""User-feedback hooks: clarification questions and simulated users.

The survey highlights interactive disambiguation as a recurring device:
NaLIR asks the user to pick among candidate mappings [31], DialSQL asks
multi-choice validation questions [22], QUICK lets users select among
suggested interpretations [66].  This module defines the shared
clarification protocol plus two resolvers:

- :class:`FirstOptionUser` — the non-interactive default (always takes
  the top-ranked option), and
- :class:`SimulatedOracle` — a benchmark user that answers according to
  gold knowledge, used to measure the *value of interaction*
  (experiment E8's clarification on/off ablation).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, List, Sequence


@dataclass
class ClarificationOption:
    """One choice in a clarification dialog."""

    label: str
    payload: Any = None


@dataclass
class ClarificationRequest:
    """A multi-choice question posed to the user.

    ``topic`` identifies what is being disambiguated (e.g. the ambiguous
    question token); ``options`` are ordered best-first by the system.
    """

    question: str
    options: List[ClarificationOption]
    topic: str = ""


class ClarificationUser(abc.ABC):
    """Someone (or something) that answers clarification requests."""

    @abc.abstractmethod
    def choose(self, request: ClarificationRequest) -> int:
        """Return the index of the chosen option."""


class FirstOptionUser(ClarificationUser):
    """Always accepts the system's top suggestion (non-interactive)."""

    def choose(self, request: ClarificationRequest) -> int:
        return 0


class ScriptedUser(ClarificationUser):
    """Answers from a prerecorded list of indices (for tests)."""

    def __init__(self, answers: Sequence[int]):
        self._answers = list(answers)
        self._cursor = 0

    def choose(self, request: ClarificationRequest) -> int:
        if self._cursor >= len(self._answers):
            return 0
        answer = self._answers[self._cursor]
        self._cursor += 1
        return min(answer, len(request.options) - 1)


class SimulatedOracle(ClarificationUser):
    """A benchmark user that knows the gold answer.

    ``judge`` receives each option's payload and returns a goodness
    score; the oracle picks the argmax.  Benchmarks construct the judge
    from gold SQL (e.g. "does this option's column appear in the gold
    query?"), simulating a cooperative user as DialSQL's evaluation does.
    """

    def __init__(self, judge: Callable[[Any], float]):
        self.judge = judge
        self.questions_asked = 0

    def choose(self, request: ClarificationRequest) -> int:
        self.questions_asked += 1
        scores = [self.judge(opt.payload) for opt in request.options]
        best = max(range(len(scores)), key=lambda i: scores[i])
        return best
