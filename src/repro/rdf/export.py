"""Relational → RDF export.

The survey's RDF-side systems (BELA, QUICK, TR Discover) need a graph;
real deployments lift relational data into RDF through an ontology-based
mapping, and so do we: every row becomes an entity typed by its concept,
every mapped data property a literal triple, every relation an object
triple, and every text display value an ``rdfs:label`` (which is what
BELA's inverted index is built from).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.pipeline import NLIDBContext
from repro.sqldb.types import DataType

from .triples import RDF_TYPE, RDFS_LABEL, TripleStore


def class_uri(concept: str) -> str:
    """URI of a concept class."""
    return "class:" + concept.replace(" ", "_")


def property_uri(concept: str, prop: str) -> str:
    """URI of a data property."""
    return f"prop:{concept.replace(' ', '_')}.{prop.replace(' ', '_')}"


def relation_uri(name: str) -> str:
    """URI of an object property (relation)."""
    return "rel:" + name.replace(" ", "_")


def entity_uri(table: str, row_index: int) -> str:
    """URI of the entity for one table row."""
    return f"ent:{table}/{row_index}"


def export_rdf(context: NLIDBContext) -> TripleStore:
    """Lift ``context``'s database into a :class:`TripleStore`.

    Primary-key values anchor entity identity so foreign keys can be
    resolved to object triples; the first text property of each concept
    doubles as the entity's ``rdfs:label``.
    """
    store = TripleStore(context.database.name + "-rdf")
    ontology, mapping = context.ontology, context.mapping

    # entity URIs keyed by (table, primary-key value)
    entity_ids: Dict[Tuple[str, Any], str] = {}
    for concept in ontology.concepts.values():
        table_name = mapping.table_of(concept.name)
        table = context.database.table(table_name)
        pk = table.schema.primary_key
        pk_index = table.schema.column_index(pk[0].name) if pk else None
        for row_index, row in enumerate(table.rows):
            uri = entity_uri(table_name, row_index)
            if pk_index is not None:
                entity_ids[(table_name.lower(), row[pk_index])] = uri

    for concept in ontology.concepts.values():
        table_name = mapping.table_of(concept.name)
        table = context.database.table(table_name)
        label_done = False
        for row_index, row in enumerate(table.rows):
            uri = entity_uri(table_name, row_index)
            store.add(uri, RDF_TYPE, class_uri(concept.name))
            labeled = False
            for prop in concept.properties.values():
                _, column = mapping.column_of(concept.name, prop.name)
                value = row[table.schema.column_index(column)]
                if value is None:
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float, str)):
                    value = str(value)
                store.add(uri, property_uri(concept.name, prop.name), value)
                if not labeled and prop.dtype is DataType.TEXT:
                    store.add(uri, RDFS_LABEL, str(value))
                    labeled = True

    for relation in ontology.relations:
        try:
            chain = mapping.fk_chain_of(relation.name, relation.src, relation.dst)
        except Exception:
            continue
        if len(chain) == 1:
            fk = chain[0]
            src_table = context.database.table(fk.src_table)
            fk_index = src_table.schema.column_index(fk.src_column)
            for row_index, row in enumerate(src_table.rows):
                target_key = row[fk_index]
                if target_key is None:
                    continue
                target = entity_ids.get((fk.dst_table.lower(), target_key))
                if target is None:
                    continue
                store.add(
                    entity_uri(fk.src_table, row_index),
                    relation_uri(relation.name),
                    target,
                )
        elif len(chain) == 2:
            # pure junction: src.key <- junction -> dst.key
            first, second = chain
            junction = context.database.table(second.src_table)
            left_index = junction.schema.column_index(first.dst_column)
            right_index = junction.schema.column_index(second.src_column)
            for row in junction.rows:
                src = entity_ids.get((first.src_table.lower(), row[left_index]))
                dst = entity_ids.get((second.dst_table.lower(), row[right_index]))
                if src and dst:
                    store.add(src, relation_uri(relation.name), dst)
    return store
