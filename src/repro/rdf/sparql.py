"""A minimal SPARQL engine: basic graph patterns, FILTER, COUNT.

The RDF-side systems of §4.1 generate SPARQL; this module gives them a
target language and an executor so their output is *runnable* (the same
requirement the SQL systems meet through :mod:`repro.sqldb`).

Supported shape::

    SELECT [DISTINCT] ?x ?y | (COUNT(?x) AS ?n)
    WHERE { ?x rdf:type class:movie . ?x prop:movie.year ?y .
            FILTER(?y > 2000) }
    [LIMIT n]

Evaluation is a backtracking join over triple patterns, most-selective
pattern first.  ``parse_sparql``/``to_sparql`` round-trip the textual
form for exact-match metrics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.sqldb.relation import Relation

from .triples import TripleStore


@dataclass(frozen=True)
class Var:
    """A SPARQL variable (``?name``)."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"?{self.name}"


Term = Union[Var, str, int, float, bool]


@dataclass(frozen=True)
class TriplePattern:
    """One pattern in the WHERE block; any slot may be a :class:`Var`."""

    subject: Term
    predicate: Term
    object: Term

    def variables(self) -> List[str]:
        """Names of variables used by this pattern."""
        return [t.name for t in (self.subject, self.predicate, self.object) if isinstance(t, Var)]

    def to_sparql(self) -> str:
        return f"{_render(self.subject)} {_render(self.predicate)} {_render(self.object)} ."


@dataclass(frozen=True)
class Filter:
    """A comparison filter: ``FILTER(?v op constant)``."""

    var: Var
    op: str  # = != < <= > >=
    value: Any

    def to_sparql(self) -> str:
        return f"FILTER({_render(self.var)} {self.op} {_render(self.value)})"

    def accepts(self, value: Any) -> bool:
        """Whether a bound value passes this filter."""
        other = self.value
        try:
            if self.op == "=":
                return value == other
            if self.op == "!=":
                return value != other
            if isinstance(value, bool) or isinstance(other, bool):
                return False
            if self.op == "<":
                return value < other
            if self.op == "<=":
                return value <= other
            if self.op == ">":
                return value > other
            if self.op == ">=":
                return value >= other
        except TypeError:
            return False
        raise ValueError(f"unknown filter op {self.op!r}")


@dataclass(frozen=True)
class SparqlQuery:
    """A SELECT query over one graph."""

    select: Tuple[Var, ...]
    patterns: Tuple[TriplePattern, ...]
    filters: Tuple[Filter, ...] = ()
    distinct: bool = False
    count: Optional[Var] = None  # SELECT (COUNT(?count) AS ?n)
    limit: Optional[int] = None

    def to_sparql(self) -> str:
        if self.count is not None:
            head = f"(COUNT({_render(self.count)}) AS ?n)"
        else:
            head = " ".join(_render(v) for v in self.select)
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(head)
        body = " ".join(
            [p.to_sparql() for p in self.patterns] + [f.to_sparql() for f in self.filters]
        )
        parts.append("WHERE { " + body + " }")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


def _render(term: Term) -> str:
    if isinstance(term, Var):
        return f"?{term.name}"
    if isinstance(term, bool):
        return "true" if term else "false"
    if isinstance(term, (int, float)):
        return repr(term)
    text = str(term)
    if re.match(r"^[A-Za-z_][\w.-]*:[\w./-]+$", text):
        return text  # prefixed URI
    escaped = text.replace('"', '\\"')
    return f'"{escaped}"'


# --------------------------------------------------------------------------
# Evaluation
# --------------------------------------------------------------------------


def evaluate(store: TripleStore, query: SparqlQuery) -> Relation:
    """Run ``query`` against ``store``; returns a Relation whose columns
    are the selected variable names (or ``n`` for COUNT)."""
    bindings = _join(store, list(query.patterns), {}, list(query.filters))
    rows: List[Tuple[Any, ...]] = []
    if query.count is not None:
        values = [b.get(query.count.name) for b in bindings]
        present = [v for v in values if v is not None]
        if query.distinct:
            seen = []
            for value in present:
                if value not in seen:
                    seen.append(value)
            present = seen
        return Relation(["n"], [(len(present),)])
    for binding in bindings:
        rows.append(tuple(binding.get(v.name) for v in query.select))
    if query.distinct:
        unique: List[Tuple[Any, ...]] = []
        seen = set()
        for row in rows:
            key = tuple(str(type(v)) + str(v) for v in row)
            if key not in seen:
                seen.add(key)
                unique.append(row)
        rows = unique
    if query.limit is not None:
        rows = rows[: query.limit]
    return Relation([v.name for v in query.select], rows)


def _join(
    store: TripleStore,
    patterns: List[TriplePattern],
    binding: Dict[str, Any],
    filters: List[Filter],
) -> List[Dict[str, Any]]:
    ready_filters = [
        f for f in filters if f.var.name in binding
    ]
    for filt in ready_filters:
        if not filt.accepts(binding[filt.var.name]):
            return []
    remaining_filters = [f for f in filters if f.var.name not in binding]
    if not patterns:
        # unbound filter variables mean the query was malformed; treat as failed
        return [] if remaining_filters else [dict(binding)]
    # pick the most-bound pattern next (fewest free variables)
    def free_count(pattern: TriplePattern) -> int:
        return sum(1 for v in pattern.variables() if v not in binding)

    patterns = sorted(patterns, key=free_count)
    pattern, rest = patterns[0], patterns[1:]
    subject = _resolve(pattern.subject, binding)
    predicate = _resolve(pattern.predicate, binding)
    obj = _resolve(pattern.object, binding)
    obj_given = not isinstance(pattern.object, Var) or pattern.object.name in binding
    results: List[Dict[str, Any]] = []
    for triple in store.match(
        subject if not isinstance(subject, Var) else None,
        predicate if not isinstance(predicate, Var) else None,
        obj if obj_given else None,
        obj_given=obj_given,
    ):
        extended = dict(binding)
        if not _bind(pattern.subject, triple.subject, extended):
            continue
        if not _bind(pattern.predicate, triple.predicate, extended):
            continue
        if not _bind(pattern.object, triple.object, extended):
            continue
        results.extend(_join(store, rest, extended, remaining_filters))
    return results


def _resolve(term: Term, binding: Dict[str, Any]):
    if isinstance(term, Var):
        if term.name in binding:
            return binding[term.name]
        return term
    return term


def _bind(term: Term, value: Any, binding: Dict[str, Any]) -> bool:
    if isinstance(term, Var):
        if term.name in binding:
            return binding[term.name] == value
        binding[term.name] = value
        return True
    return term == value


# --------------------------------------------------------------------------
# Parsing (round-trip of to_sparql output)
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""\?(?P<var>\w+)
      | "(?P<string>(?:[^"\\]|\\.)*)"
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<uri>[A-Za-z_][\w.-]*:[\w./-]+)
      | (?P<word>[A-Za-z]+)
      | (?P<punct>[{}().])
      | (?P<op><=|>=|!=|=|<|>)
    """,
    re.VERBOSE,
)


def parse_sparql(text: str) -> SparqlQuery:
    """Parse the subset produced by :meth:`SparqlQuery.to_sparql`."""
    tokens = [
        (m.lastgroup, m.group(m.lastgroup)) for m in _TOKEN_RE.finditer(text)
    ]
    pos = 0

    def peek():
        return tokens[pos] if pos < len(tokens) else ("eof", "")

    def take(expected_kind=None, expected_value=None):
        nonlocal pos
        kind, value = peek()
        if expected_kind and kind != expected_kind:
            raise ValueError(f"expected {expected_kind}, got {kind}:{value}")
        if expected_value and value.lower() != expected_value.lower():
            raise ValueError(f"expected {expected_value!r}, got {value!r}")
        pos += 1
        return kind, value

    take("word", "SELECT")
    distinct = False
    if peek() == ("word", "DISTINCT"):
        take()
        distinct = True
    select: List[Var] = []
    count: Optional[Var] = None
    if peek()[1] == "(":
        take("punct", "(")
        take("word", "COUNT")
        take("punct", "(")
        count = Var(take("var")[1])
        take("punct", ")")
        take("word", "AS")
        take("var")
        take("punct", ")")
    else:
        while peek()[0] == "var":
            select.append(Var(take("var")[1]))
    take("word", "WHERE")
    take("punct", "{")
    patterns: List[TriplePattern] = []
    filters: List[Filter] = []
    while peek()[1] != "}":
        kind, value = peek()
        if kind == "word" and value.upper() == "FILTER":
            take()
            take("punct", "(")
            var = Var(take("var")[1])
            op = take("op")[1]
            filters.append(Filter(var, op, _term_value(*take())))
            take("punct", ")")
            continue
        terms = [_term(*take()) for _ in range(3)]
        take("punct", ".")
        patterns.append(TriplePattern(*terms))
    take("punct", "}")
    limit = None
    if peek() == ("word", "LIMIT"):
        take()
        limit = int(take("number")[1])
    return SparqlQuery(
        select=tuple(select),
        patterns=tuple(patterns),
        filters=tuple(filters),
        distinct=distinct,
        count=count,
        limit=limit,
    )


def _term(kind: str, value: str) -> Term:
    if kind == "var":
        return Var(value)
    return _term_value(kind, value)


def _term_value(kind: str, value: str) -> Any:
    if kind == "string":
        return value.replace('\\"', '"')
    if kind == "number":
        return float(value) if "." in value else int(value)
    if kind == "word" and value in ("true", "false"):
        return value == "true"
    return value  # uri
