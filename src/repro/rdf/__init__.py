"""RDF substrate: triple store, relational→RDF export, SPARQL engine.

The survey spans both "generated SQL and SPARQL queries" (§1); this
package is the SPARQL side: :mod:`~repro.rdf.triples` stores the graph,
:mod:`~repro.rdf.export` lifts a relational database into it through the
ontology mapping, and :mod:`~repro.rdf.sparql` executes the SPARQL
subset the BELA-style system (:mod:`repro.systems.sparql_bela`) emits.
"""

from .export import class_uri, entity_uri, export_rdf, property_uri, relation_uri
from .sparql import Filter, SparqlQuery, TriplePattern, Var, evaluate, parse_sparql
from .triples import RDF_TYPE, RDFS_LABEL, Triple, TripleStore

__all__ = [
    "Triple", "TripleStore", "RDF_TYPE", "RDFS_LABEL",
    "export_rdf", "class_uri", "property_uri", "relation_uri", "entity_uri",
    "Var", "TriplePattern", "Filter", "SparqlQuery", "evaluate", "parse_sparql",
]
