"""A minimal in-memory RDF triple store.

Several systems the survey covers target RDF rather than relational data
— BELA [53] over DBpedia, QUICK [66] over semantic-web data, TR Discover
[49] over interlinked datasets.  This store is their substrate: triples
``(subject, predicate, object)`` with the three classic permutation
indexes (SPO / POS / OSP) so every single-wildcard lookup is a hash probe.

Terms are plain Python values: URIs are strings (by convention prefixed
``"<ns>:<local>"``), literals are str/int/float/bool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: well-known predicates
RDF_TYPE = "rdf:type"
RDFS_LABEL = "rdfs:label"


@dataclass(frozen=True)
class Triple:
    """One RDF statement."""

    subject: str
    predicate: str
    object: Any

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))


class TripleStore:
    """Indexed triple set with wildcard matching."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self._triples: List[Triple] = []
        self._spo: Dict[str, Dict[str, Set[int]]] = {}
        self._pos: Dict[str, Dict[Any, Set[int]]] = {}
        self._osp: Dict[Any, Dict[str, Set[int]]] = {}

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def add(self, subject: str, predicate: str, obj: Any) -> Triple:
        """Insert one triple (duplicates are kept out)."""
        triple = Triple(subject, predicate, obj)
        existing = self._match_ids(subject, predicate, obj)
        if existing:
            return triple
        idx = len(self._triples)
        self._triples.append(triple)
        self._spo.setdefault(subject, {}).setdefault(predicate, set()).add(idx)
        self._pos.setdefault(predicate, {}).setdefault(_key(obj), set()).add(idx)
        self._osp.setdefault(_key(obj), {}).setdefault(subject, set()).add(idx)
        return triple

    def extend(self, triples: Iterable[Tuple[str, str, Any]]) -> int:
        """Insert many (s, p, o) tuples; returns how many were given."""
        count = 0
        for subject, predicate, obj in triples:
            self.add(subject, predicate, obj)
            count += 1
        return count

    # -- matching -----------------------------------------------------------------

    def match(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        obj: Any = None,
        obj_given: bool = False,
    ) -> List[Triple]:
        """Triples matching the given pattern (``None`` = wildcard).

        Because ``None``-like objects could be literals, pass
        ``obj_given=True`` to force the object slot to be a constraint.
        """
        ids = self._match_ids(subject, predicate, obj if (obj is not None or obj_given) else _WILD)
        return [self._triples[i] for i in sorted(ids)]

    def _match_ids(self, subject, predicate, obj) -> Set[int]:
        candidates: Optional[Set[int]] = None
        if subject is not None:
            rows = self._spo.get(subject, {})
            subject_ids: Set[int] = set()
            if predicate is not None:
                subject_ids = set(rows.get(predicate, set()))
            else:
                for ids in rows.values():
                    subject_ids |= ids
            candidates = subject_ids
        if predicate is not None and candidates is None:
            rows = self._pos.get(predicate, {})
            predicate_ids: Set[int] = set()
            if obj is not _WILD:
                predicate_ids = set(rows.get(_key(obj), set()))
            else:
                for ids in rows.values():
                    predicate_ids |= ids
            candidates = predicate_ids
        if candidates is None:
            if obj is not _WILD:
                rows = self._osp.get(_key(obj), {})
                candidates = set()
                for ids in rows.values():
                    candidates |= ids
            else:
                return set(range(len(self._triples)))
        # final filtering for constraints not used to seed the candidate set
        out = set()
        for i in candidates:
            triple = self._triples[i]
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not _WILD and _key(triple.object) != _key(obj):
                continue
            out.add(i)
        return out

    # -- convenience -----------------------------------------------------------

    def subjects_of_type(self, class_uri: str) -> List[str]:
        """All subjects with ``rdf:type class_uri``."""
        return [t.subject for t in self.match(None, RDF_TYPE, class_uri)]

    def label_index(self) -> Dict[str, List[str]]:
        """label (lower-cased) → subjects carrying it (BELA's inverted
        index over entity names)."""
        index: Dict[str, List[str]] = {}
        for triple in self.match(None, RDFS_LABEL):
            key = str(triple.object).lower()
            index.setdefault(key, []).append(triple.subject)
        return index

    def predicates(self) -> List[str]:
        """All distinct predicates."""
        return sorted(self._pos)


class _Wild:
    __slots__ = ()


_WILD = _Wild()


def _key(obj: Any) -> Any:
    """Hashable comparison key for object terms (bool ≠ int)."""
    if isinstance(obj, bool):
        return ("bool", obj)
    if isinstance(obj, (int, float)):
        return ("num", float(obj))
    return (type(obj).__name__, obj)
