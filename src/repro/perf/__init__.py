"""Performance layer: shared caches, per-stage profiling, parallel eval.

``cache``, ``profiler`` and ``partition`` are dependency-free leaves
imported eagerly — the NLP, pipeline and SQL layers use them directly.  ``parallel`` sits on
*top* of the bench harness (which imports core, which imports nlp, which
imports :mod:`repro.perf.cache`), so importing it here eagerly would
create a cycle; its symbols resolve lazily via module ``__getattr__``.
"""

from __future__ import annotations

from typing import Any

from .cache import (
    MISSING,
    CacheStats,
    EvaluationCache,
    InterpretationCache,
    LRUCache,
    all_cache_stats,
    memoize,
    normalize_question,
    reset_cache_stats,
    stats_for,
)
from .partition import DEFAULT_CHUNK_ROWS, chunk_spans, run_partitioned
from .profiler import (
    STAGE_ORDER,
    StageProfiler,
    StageStat,
    active_profiler,
    profile_stage,
)

_PARALLEL_EXPORTS = {
    "ContextSpec",
    "ParallelReport",
    "default_jobs",
    "parallel_compare_systems",
    "parallel_evaluate_system",
    "partition_examples",
}

__all__ = [
    "MISSING",
    "CacheStats",
    "EvaluationCache",
    "InterpretationCache",
    "LRUCache",
    "all_cache_stats",
    "memoize",
    "normalize_question",
    "reset_cache_stats",
    "stats_for",
    "DEFAULT_CHUNK_ROWS",
    "chunk_spans",
    "run_partitioned",
    "STAGE_ORDER",
    "StageProfiler",
    "StageStat",
    "active_profiler",
    "profile_stage",
    *sorted(_PARALLEL_EXPORTS),
]


def __getattr__(name: str) -> Any:
    if name in _PARALLEL_EXPORTS:
        from . import parallel

        return getattr(parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
