"""Process-pool parallel evaluation of NLIDB systems.

``compare_systems`` is the repo's dominant wall-clock cost: many systems
× many examples, every example a full interpret + compile + score pass.
The examples are independent, so the sweep parallelizes by chunking them
over a pool of worker processes, each holding its own
:class:`~repro.core.pipeline.NLIDBContext` (contexts wrap live table
storage and lazily built indexes — cheaper to rebuild per worker from a
small picklable spec than to ship).

Determinism is preserved end to end:

- chunk assignment is a pure function of the example list (repeated
  questions are grouped onto the same worker so its interpretation
  cache sees them — the parallel analogue of a shared cache),
- the merge reassembles outcomes by original example index, and
- workers prefer the ``fork`` start method, which inherits the parent's
  hash seed (``spawn`` re-randomizes it, which can reorder set iteration
  inside system heuristics).

When a pool cannot be created (restricted sandboxes, missing start
methods, unpicklable systems) the same evaluation runs serially in the
parent with identical caches, so callers never need a second code path.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.domains import build_domain
from repro.bench.harness import ComparisonRow, evaluate_system, rows_for_outcomes
from repro.bench.metrics import ExampleOutcome
from repro.bench.workloads import QueryExample
from repro.core.pipeline import NLIDBContext, NLIDBSystem
from repro.core.registry import create

from .cache import CacheStats, EvaluationCache, normalize_question
from .profiler import StageProfiler, StageStat

SystemLike = Union[str, NLIDBSystem]


@dataclass(frozen=True)
class ContextSpec:
    """Picklable recipe for building an :class:`NLIDBContext` in a worker.

    Domain databases are deterministic functions of ``(name, seed,
    scale)``, so the spec rebuilds an identical context in every process
    without shipping table storage across the pipe.  A non-zero
    ``catalog_width`` swaps the single domain for the seeded wide
    catalog of :func:`repro.bench.catalog_gen.build_wide_catalog`
    (equally deterministic, so workers still agree byte-for-byte).
    """

    domain: str
    seed: int = 0
    scale: float = 1.0
    use_planner: bool = True
    #: 0 = build ``domain`` as-is; N ≥ 1 = build an N-table wide catalog
    catalog_width: int = 0
    use_schema_index: bool = True

    def build(self) -> NLIDBContext:
        """Construct the context this spec describes."""
        if self.catalog_width:
            from repro.bench.catalog_gen import build_wide_catalog

            database = build_wide_catalog(
                self.catalog_width, seed=self.seed, scale=self.scale
            )
        else:
            database = build_domain(self.domain, seed=self.seed, scale=self.scale)
        return NLIDBContext(
            database,
            use_planner=self.use_planner,
            use_schema_index=self.use_schema_index,
        )


def _build_context(spec: Any) -> NLIDBContext:
    """Build a context from a spec: anything with ``build()``, a zero-arg
    callable, or an already-built context (useful for serial fallback)."""
    if isinstance(spec, NLIDBContext):
        return spec
    if hasattr(spec, "build"):
        return spec.build()
    if callable(spec):
        return spec()
    raise TypeError(f"cannot build an NLIDBContext from {spec!r}")


@dataclass
class ParallelReport:
    """Everything one parallel (or fallen-back serial) sweep produced."""

    rows: List[ComparisonRow]
    outcomes: Dict[str, List[ExampleOutcome]]
    cache_stats: Dict[str, CacheStats]
    profile: StageProfiler
    wall_s: float
    jobs: int
    #: "parallel" when a pool ran, "serial" when the fallback did
    mode: str = "parallel"
    extras: Dict[str, Any] = field(default_factory=dict)

    def cache_stats_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready cache stats."""
        return {name: s.as_dict() for name, s in self.cache_stats.items()}


# -- deterministic partitioning ------------------------------------------------


def partition_examples(
    examples: Sequence[QueryExample], jobs: int
) -> List[List[int]]:
    """Split example indices into at most ``jobs`` balanced buckets.

    All occurrences of the same (normalized question, gold SQL) pair land
    in the same bucket, so a repeated-question workload hits the worker's
    interpretation cache exactly as it would a shared one.  Groups are
    placed largest-first onto the least-loaded bucket; ties break by
    bucket index, so the partition is a pure function of the input.
    """
    groups: Dict[Tuple[str, str], List[int]] = {}
    for i, example in enumerate(examples):
        key = (normalize_question(example.question), example.sql)
        groups.setdefault(key, []).append(i)
    ordered = sorted(groups.values(), key=lambda idxs: (-len(idxs), idxs[0]))
    jobs = max(1, jobs)
    buckets: List[List[int]] = [[] for _ in range(jobs)]
    loads = [0] * jobs
    for idxs in ordered:
        target = min(range(jobs), key=lambda j: (loads[j], j))
        buckets[target].extend(idxs)
        loads[target] += len(idxs)
    return [sorted(b) for b in buckets if b]


# -- worker side ---------------------------------------------------------------

_WORKER: Dict[str, Any] = {}

_Payload = Tuple[str, Any]


def _system_payloads(systems: Sequence[SystemLike]) -> Optional[List[_Payload]]:
    """Picklable payloads for the pool, or ``None`` if any system can't
    cross a process boundary (triggering the serial fallback)."""
    out: List[_Payload] = []
    for system in systems:
        if isinstance(system, str):
            out.append(("name", system))
            continue
        try:
            out.append(("pickle", pickle.dumps(system)))
        except Exception:
            return None
    return out


def _revive_system(payload: _Payload) -> NLIDBSystem:
    kind, data = payload
    if kind == "name":
        return create(data)
    return pickle.loads(data)


def _worker_init(spec: Any, payloads: List[_Payload], use_cache: bool) -> None:
    import repro.systems  # noqa: F401  (populate the registry)

    _WORKER["context"] = _build_context(spec)
    _WORKER["systems"] = [_revive_system(p) for p in payloads]
    _WORKER["cache"] = EvaluationCache() if use_cache else None


def _run_chunk(
    system_idx: int, indices: List[int], chunk: List[QueryExample]
) -> Tuple[int, List[int], List[ExampleOutcome], Dict[str, CacheStats], Dict[str, StageStat]]:
    """Evaluate one (system, chunk) pair inside a worker.

    Returns stats/profile *deltas* so the parent can attribute work to
    this task even though the worker's cache persists across tasks.
    """
    context: NLIDBContext = _WORKER["context"]
    system: NLIDBSystem = _WORKER["systems"][system_idx]
    cache: Optional[EvaluationCache] = _WORKER["cache"]
    before = cache.snapshot() if cache is not None else {}
    profiler = StageProfiler()
    outcomes = evaluate_system(
        system, context, chunk, cache=cache, profiler=profiler
    )
    delta = cache.delta(before) if cache is not None else {}
    return system_idx, indices, outcomes, delta, profiler.snapshot()


def _make_pool(jobs: int, spec: Any, payloads: List[_Payload], use_cache: bool):
    """A worker pool, preferring ``fork`` (see module docstring), or
    ``None`` when no start method works here."""
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "forkserver", "spawn"):
        if method not in methods:
            continue
        try:
            ctx = multiprocessing.get_context(method)
            return ctx.Pool(
                jobs, initializer=_worker_init, initargs=(spec, payloads, use_cache)
            )
        except Exception:
            continue
    return None


# -- parent side ---------------------------------------------------------------


def _resolve_systems(systems: Sequence[SystemLike]) -> List[NLIDBSystem]:
    return [create(s) if isinstance(s, str) else s for s in systems]


def default_jobs() -> int:
    """Default worker count: the machine's CPU count (min 1)."""
    return max(1, os.cpu_count() or 1)


def _merge_layer_stats(
    total: Dict[str, CacheStats], delta: Dict[str, CacheStats]
) -> None:
    for name, stats in delta.items():
        total.setdefault(name, CacheStats()).merge(stats)


def parallel_compare_systems(
    systems: Sequence[SystemLike],
    spec: Any,
    examples: Sequence[QueryExample],
    jobs: Optional[int] = None,
    split_by_tier: bool = True,
    use_cache: bool = True,
    context: Optional[NLIDBContext] = None,
) -> ParallelReport:
    """Parallel, cache-sharing equivalent of
    :func:`repro.bench.harness.compare_systems`.

    ``spec`` is the picklable context recipe shipped to workers (a
    :class:`ContextSpec` or any object with ``build()``); ``context`` is
    an optional pre-built parent-side context reused by the serial
    fallback so it is not constructed twice.  Rows and outcomes are
    byte-identical to the serial path — chunking, caching and merge
    order never change a verdict, only the wall-clock.
    """
    jobs = default_jobs() if jobs is None else max(1, jobs)
    instances = _resolve_systems(systems)
    names = [s.name for s in instances]
    examples = list(examples)
    start = time.perf_counter()

    report: Optional[ParallelReport] = None
    payloads = _system_payloads(list(systems))
    if jobs > 1 and examples and payloads is not None:
        report = _try_parallel(
            payloads, names, spec, examples, jobs, split_by_tier, use_cache
        )
    if report is None:
        report = _serial_sweep(
            instances,
            context if context is not None else _build_context(spec),
            examples,
            split_by_tier,
            use_cache,
            jobs,
        )
    report.wall_s = time.perf_counter() - start
    return report


def parallel_evaluate_system(
    system: SystemLike,
    spec: Any,
    examples: Sequence[QueryExample],
    jobs: Optional[int] = None,
    use_cache: bool = True,
    context: Optional[NLIDBContext] = None,
) -> List[ExampleOutcome]:
    """Parallel ``evaluate_system`` for a single system.

    Outcomes come back in the original example order, identical to the
    serial path.
    """
    report = parallel_compare_systems(
        [system],
        spec,
        examples,
        jobs=jobs,
        split_by_tier=False,
        use_cache=use_cache,
        context=context,
    )
    return next(iter(report.outcomes.values())) if report.outcomes else []


def _try_parallel(
    payloads: List[_Payload],
    names: List[str],
    spec: Any,
    examples: List[QueryExample],
    jobs: int,
    split_by_tier: bool,
    use_cache: bool,
) -> Optional[ParallelReport]:
    """One pooled sweep; ``None`` when the pool can't run here."""
    buckets = partition_examples(examples, jobs)
    pool = _make_pool(min(jobs, max(1, len(buckets))), spec, payloads, use_cache)
    if pool is None:
        return None
    tasks = [
        (sys_idx, indices, [examples[i] for i in indices])
        for sys_idx in range(len(payloads))
        for indices in buckets
    ]
    try:
        results = pool.starmap(_run_chunk, tasks)
    except Exception:
        return None
    finally:
        pool.close()
        pool.join()

    merged: Dict[int, List[Optional[ExampleOutcome]]] = {
        i: [None] * len(examples) for i in range(len(payloads))
    }
    per_system_stats: Dict[int, Dict[str, CacheStats]] = {}
    per_system_stages: Dict[int, StageProfiler] = {}
    total_stats: Dict[str, CacheStats] = {}
    profile = StageProfiler()
    for sys_idx, indices, outcomes, stats_delta, stages in results:
        for index, outcome in zip(indices, outcomes):
            merged[sys_idx][index] = outcome
        _merge_layer_stats(
            per_system_stats.setdefault(sys_idx, {}), stats_delta
        )
        _merge_layer_stats(total_stats, stats_delta)
        chunk_profiler = StageProfiler()
        chunk_profiler.stages = dict(stages)
        per_system_stages.setdefault(sys_idx, StageProfiler()).merge(chunk_profiler)
        profile.merge(chunk_profiler)

    rows: List[ComparisonRow] = []
    outcome_map: Dict[str, List[ExampleOutcome]] = {}
    for sys_idx, name in enumerate(names):
        outcomes_list = merged[sys_idx]
        if any(o is None for o in outcomes_list):
            return None  # a chunk went missing: let the serial path decide
        outcome_map[name] = outcomes_list  # type: ignore[assignment]
        rows.extend(
            rows_for_outcomes(
                name,
                outcomes_list,  # type: ignore[arg-type]
                split_by_tier=split_by_tier,
                cache_hit_rate=_interp_hit_rate(per_system_stats.get(sys_idx)),
                profiler=per_system_stages.get(sys_idx),
            )
        )
    return ParallelReport(
        rows=rows,
        outcomes=outcome_map,
        cache_stats=total_stats,
        profile=profile,
        wall_s=0.0,
        jobs=jobs,
        mode="parallel",
    )


def _serial_sweep(
    instances: List[NLIDBSystem],
    context: NLIDBContext,
    examples: List[QueryExample],
    split_by_tier: bool,
    use_cache: bool,
    jobs: int,
) -> ParallelReport:
    """The graceful fallback: same caches, same rows, one process."""
    cache = EvaluationCache() if use_cache else None
    profile = StageProfiler()
    rows: List[ComparisonRow] = []
    outcome_map: Dict[str, List[ExampleOutcome]] = {}
    total_stats: Dict[str, CacheStats] = {}
    for system in instances:
        before = cache.snapshot() if cache is not None else {}
        stage_before = profile.snapshot()
        outcomes = evaluate_system(
            system, context, examples, cache=cache, profiler=profile
        )
        delta = cache.delta(before) if cache is not None else {}
        _merge_layer_stats(total_stats, delta)
        outcome_map[system.name] = outcomes
        rows.extend(
            rows_for_outcomes(
                system.name,
                outcomes,
                split_by_tier=split_by_tier,
                cache_hit_rate=_interp_hit_rate(delta),
                profiler=profile.delta(stage_before),
            )
        )
    return ParallelReport(
        rows=rows,
        outcomes=outcome_map,
        cache_stats=total_stats,
        profile=profile,
        wall_s=0.0,
        jobs=jobs,
        mode="serial",
    )


def _interp_hit_rate(stats: Optional[Dict[str, CacheStats]]) -> Optional[float]:
    if not stats:
        return None
    layer = stats.get("interpretations")
    if layer is None or not layer.lookups:
        return None
    return layer.hit_rate
