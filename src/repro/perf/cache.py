"""Shared caches for the evaluation/answer hot path.

The survey's central artifact is a *comparison* — many systems swept
over many benchmark workloads — and real NLIDB traffic repeats itself
(query logs are heavily skewed, which is the premise TEMPLAR [4] builds
on).  Both facts make interpretation memoization profitable: the same
normalized question against the same database state always produces the
same ranked interpretation list, so re-running tokenization, candidate
matching and ranking is pure waste.

Everything here is keyed on the database's monotonic ``data_version``
counter, so any catalog or row mutation invalidates by construction —
a stale entry can never be served, it simply stops being reachable.

Three layers share one bookkeeping vocabulary (:class:`CacheStats`):

- :func:`memoize` — bounded LRU memoization for pure NLP primitives
  (lemmatizer, string similarity); per-instance caches (embeddings,
  thesaurus similarity) report into the same registry via
  :func:`stats_for`.
- :class:`InterpretationCache` — normalized NLQ + system + data version
  → ranked interpretation list, wired into ``NLIDBSystem.answer`` and
  the benchmark harness.
- :class:`EvaluationCache` — the harness-side bundle: interpretations
  plus gold-result, match-verdict and static-analysis memos.

This module deliberately imports nothing from the rest of the package so
the NLP layer can depend on it without cycles.
"""

from __future__ import annotations

import copy
import functools
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple, TypeVar


@dataclass
class CacheStats:
    """Hit/miss/eviction counters shared by every perf-layer cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before the first lookup)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Fold another stats object into this one (for worker merges)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.puts += other.puts

    def snapshot(self) -> "CacheStats":
        """An independent copy (used to compute per-task deltas)."""
        return CacheStats(self.hits, self.misses, self.evictions, self.puts)

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``since`` was snapshotted."""
        return CacheStats(
            self.hits - since.hits,
            self.misses - since.misses,
            self.evictions - since.evictions,
            self.puts - since.puts,
        )

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict for JSON reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Ordered-dict LRU with :class:`CacheStats` bookkeeping.

    ``None`` is a legal cached value; :meth:`get` returns the ``missing``
    sentinel (default ``None``) on a miss, so callers that cache ``None``
    should pass their own sentinel.
    """

    __slots__ = ("maxsize", "stats", "_data")

    def __init__(self, maxsize: int = 1024, stats: Optional[CacheStats] = None):
        self.maxsize = maxsize
        self.stats = stats if stats is not None else CacheStats()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable, missing: Any = None) -> Any:
        try:
            value = self._data.pop(key)
        except KeyError:
            self.stats.misses += 1
            return missing
        self._data[key] = value
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize <= 0:
            return
        self._data.pop(key, None)
        self._data[key] = value
        self.stats.puts += 1
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data


# -- memoization registry -----------------------------------------------------

#: name → stats for every registered memo/cache in this process
_STATS_REGISTRY: Dict[str, CacheStats] = {}


def stats_for(name: str) -> CacheStats:
    """The process-wide :class:`CacheStats` registered under ``name``.

    Created on first use; per-instance caches (embeddings, thesaurus)
    share one stats object per name so the perf report aggregates them.
    """
    stats = _STATS_REGISTRY.get(name)
    if stats is None:
        stats = _STATS_REGISTRY[name] = CacheStats()
    return stats


def all_cache_stats() -> Dict[str, CacheStats]:
    """Every registered stats object, keyed by name (live references)."""
    return dict(_STATS_REGISTRY)


def reset_cache_stats() -> None:
    """Zero every registered counter (kept registered, for benchmarks)."""
    for stats in _STATS_REGISTRY.values():
        stats.hits = stats.misses = stats.evictions = stats.puts = 0


F = TypeVar("F", bound=Callable[..., Any])

#: public miss sentinel for callers whose caches store falsy values
MISSING = object()
_MISS = MISSING


def memoize(name: str, maxsize: int = 16384) -> Callable[[F], F]:
    """Bounded LRU memoization for a pure function of hashable args.

    Results are cached per positional-argument tuple; hit/miss counters
    land in ``stats_for(name)``.  The wrapped function gains
    ``cache_clear()`` and ``cache_stats`` attributes.
    """

    def wrap(fn: F) -> F:
        cache = LRUCache(maxsize, stats_for(name))

        @functools.wraps(fn)
        def wrapper(*args: Any) -> Any:
            value = cache.get(args, _MISS)
            if value is not _MISS:
                return value
            value = fn(*args)
            cache.put(args, value)
            return value

        wrapper.cache_clear = cache.clear  # type: ignore[attr-defined]
        wrapper.cache_stats = cache.stats  # type: ignore[attr-defined]
        wrapper.__wrapped__ = fn
        return wrapper  # type: ignore[return-value]

    return wrap


# -- interpretation cache -----------------------------------------------------

_WS = re.compile(r"\s+")


def normalize_question(question: str) -> str:
    """Canonical cache form of an NLQ: trimmed, whitespace collapsed.

    Case is deliberately *not* folded — quoted values and proper nouns
    can be case-sensitive for value matching, and conflating two
    questions that interpret differently would poison the cache.
    """
    return _WS.sub(" ", question.strip())


class InterpretationCache:
    """LRU of ranked interpretation lists.

    Keyed on ``(system name, normalized question, data version)`` —
    the data version folds catalog shape and row contents into one
    monotonic counter, so an INSERT or a new table can never serve a
    stale reading.  Entries are deep-copied both on put and on get:
    interpretations are mutable (ranking rescoring, static-analysis
    penalties, lazy SQL compilation), and a shared object would let one
    caller's mutation corrupt every later hit.

    ``threadsafe=True`` guards the underlying LRU with a lock so the
    cache can be shared across serving workers: the ordered-dict
    move-to-front and eviction sequences are not atomic, and two
    unsynchronized writers can interleave them into lost entries or an
    eviction underflow.  The deep copies already isolate *values*
    between threads; the lock only protects the bookkeeping.  Single
    threaded users pay nothing by default.
    """

    def __init__(
        self,
        maxsize: int = 2048,
        stats: Optional[CacheStats] = None,
        threadsafe: bool = False,
    ):
        self.stats = stats if stats is not None else CacheStats()
        self._lru = LRUCache(maxsize, self.stats)
        self._lock = threading.Lock() if threadsafe else None

    @staticmethod
    def key(system: str, question: str, version: int) -> Tuple[str, str, int]:
        """The cache key for one lookup."""
        return (system, normalize_question(question), version)

    def get(self, system: str, question: str, version: int) -> Optional[List[Any]]:
        """Cached interpretation list, or ``None`` on a miss.

        An empty list is a valid cached value (the system abstained).
        """
        key = self.key(system, question, version)
        if self._lock is not None:
            with self._lock:
                value = self._lru.get(key, _MISS)
        else:
            value = self._lru.get(key, _MISS)
        if value is _MISS:
            return None
        return copy.deepcopy(value)

    def put(
        self, system: str, question: str, version: int, interpretations: List[Any]
    ) -> None:
        """Store a snapshot of ``interpretations``."""
        key = self.key(system, question, version)
        value = copy.deepcopy(interpretations)
        if self._lock is not None:
            with self._lock:
                self._lru.put(key, value)
        else:
            self._lru.put(key, value)

    def clear(self) -> None:
        if self._lock is not None:
            with self._lock:
                self._lru.clear()
        else:
            self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)


# -- harness-side bundle ------------------------------------------------------


@dataclass
class EvaluationCache:
    """Every memo the benchmark harness shares across examples.

    Besides interpretations, evaluation repeats two pure computations
    per example: executing the *gold* SQL (identical for every system
    under comparison and for every epoch of a repeated workload) and the
    execution-match verdict for a (predicted, gold) pair.  Both are
    deterministic functions of the SQL texts and the database state, so
    they are memoized under the same ``data_version`` key discipline as
    interpretations.
    """

    interpretations: InterpretationCache = field(
        default_factory=lambda: InterpretationCache(maxsize=4096)
    )
    gold_results: LRUCache = field(default_factory=lambda: LRUCache(maxsize=4096))
    match_verdicts: LRUCache = field(default_factory=lambda: LRUCache(maxsize=8192))
    static_analysis: LRUCache = field(default_factory=lambda: LRUCache(maxsize=4096))

    def stats(self) -> Dict[str, CacheStats]:
        """Per-layer stats, keyed by layer name."""
        return {
            "interpretations": self.interpretations.stats,
            "gold_results": self.gold_results.stats,
            "match_verdicts": self.match_verdicts.stats,
            "static_analysis": self.static_analysis.stats,
        }

    def stats_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready nested stats dict."""
        return {name: s.as_dict() for name, s in self.stats().items()}

    def snapshot(self) -> Dict[str, CacheStats]:
        """Copies of every layer's counters (for per-run deltas)."""
        return {name: s.snapshot() for name, s in self.stats().items()}

    def delta(self, since: Dict[str, CacheStats]) -> Dict[str, CacheStats]:
        """Per-layer counters accumulated since ``since``."""
        return {
            name: s.delta(since[name]) for name, s in self.stats().items()
        }

    def merge(self, other_stats: Dict[str, CacheStats]) -> None:
        """Fold per-layer counters from a worker into this bundle."""
        mine = self.stats()
        for name, stats in other_stats.items():
            if name in mine:
                mine[name].merge(stats)

    def clear(self) -> None:
        self.interpretations.clear()
        self.gold_results.clear()
        self.match_verdicts.clear()
        self.static_analysis.clear()
