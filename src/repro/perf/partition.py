"""Fixed-size row-span partitioning with an optional fork-based pool.

The columnar scan path (:mod:`repro.sqldb.columnar`) evaluates predicate
masks per chunk of rows; chunks are independent, so a scan over a large
table can fan out across processes.  This module owns the two pieces the
engine needs:

- :func:`chunk_spans` — deterministic ``[lo, hi)`` spans of a fixed size,
- :func:`run_partitioned` — map a task over spans, optionally in a
  fork-based process pool.

Parallelism here is **fork-only by design**: the shared payload (column
arrays plus a compiled predicate tree) is installed in module globals in
the parent *before* the pool forks, so workers inherit it through
copy-on-write page sharing and nothing large is ever pickled — only the
``(lo, hi)`` span tuples go over the pipe, and only the small per-chunk
result masks come back.  Platforms without ``fork`` (or any pool
failure: sandboxed environments, recursive invocation from a worker)
degrade to an in-process serial loop that computes the identical result,
so parallelism is strictly an optimization and can never change query
output — results are concatenated in span order either way.

Unlike :mod:`repro.perf.parallel` (which parallelizes whole evaluation
harness runs and sits above the bench layer), this module is a
dependency-free leaf that the SQL engine can import without cycles.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

#: Default rows per scan partition.  Large enough that per-chunk numpy
#: dispatch overhead is amortized, small enough that a million-row table
#: yields ~8 chunks to spread across workers.
DEFAULT_CHUNK_ROWS = 131_072

Span = Tuple[int, int]


def chunk_spans(n_rows: int, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> List[Span]:
    """Split ``n_rows`` into contiguous half-open ``[lo, hi)`` spans.

    Every row lands in exactly one span; an empty input yields a single
    empty span so callers can treat "no rows" uniformly.
    """
    if chunk_rows <= 0:
        chunk_rows = DEFAULT_CHUNK_ROWS
    if n_rows <= 0:
        return [(0, 0)]
    return [(lo, min(lo + chunk_rows, n_rows)) for lo in range(0, n_rows, chunk_rows)]


# Shared state for fork workers: set in the parent immediately before the
# pool is created, inherited by child processes at fork time, cleared
# afterwards.  Never populated in the serial path.
_TASK: Any = None
_SHARED: Any = None


def _forked_worker(span: Span) -> Any:
    lo, hi = span
    return _TASK(_SHARED, lo, hi)


def run_partitioned(
    task: Callable[[Any, int, int], Any],
    shared: Any,
    spans: Sequence[Span],
    jobs: int,
) -> List[Any]:
    """Run ``task(shared, lo, hi)`` for every span, returning results in
    span order.

    With ``jobs > 1``, more than one span, and a platform that supports
    the ``fork`` start method, spans are distributed over a process pool;
    otherwise (or on *any* pool failure) the spans run serially in
    process.  Both routes produce the same list.
    """
    global _TASK, _SHARED
    spans = list(spans)
    if jobs <= 1 or len(spans) <= 1:
        return [task(shared, lo, hi) for lo, hi in spans]
    try:
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError("fork start method unavailable")
        ctx = mp.get_context("fork")
        _TASK, _SHARED = task, shared
        try:
            with ctx.Pool(processes=min(jobs, len(spans))) as pool:
                return pool.map(_forked_worker, spans)
        finally:
            _TASK = None
            _SHARED = None
    except Exception:
        # Pool creation or execution failed (sandbox, nested worker,
        # interpreter shutdown…): fall back to the serial loop, which is
        # always correct.
        return [task(shared, lo, hi) for lo, hi in spans]
