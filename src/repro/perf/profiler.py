"""Per-stage wall-clock profiling for the interpret/answer pipeline.

The pipeline decomposes into the stages every surveyed system shares —
tokenize → parse → match → rank → compile → execute — plus two harness
aggregates (``interpret`` spans a system's whole ``interpret()`` call,
``score`` spans gold/predicted execution matching).  Instrumented code
calls :func:`profile_stage(name)`; when no profiler is active the span
is a shared no-op, so the instrumentation costs a dict lookup on the
cold path and nothing is ever recorded.

Activation is scoped, not global: ``with profiler.activate(): ...``
binds the profiler to the current context (via :mod:`contextvars`, so
concurrent threads/tasks don't interleave their spans).

The same span boundaries double as the **stage hook** seam used by the
resilient serving layer (:mod:`repro.serve`): ``with stage_hook(fn):``
arranges for ``fn(stage_name)`` to run every time a stage span opens.
Hooks may raise (fault injection), sleep (latency injection) or check a
deadline (cooperative per-stage timeouts); when no hook is installed the
cost is one contextvar lookup.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

#: canonical display order; unknown stages sort after these, alphabetically
STAGE_ORDER: List[str] = [
    "tokenize",
    "schema_index",
    "parse",
    "match",
    "rank",
    "compile",
    "execute",
    "interpret",
    "score",
]


@dataclass
class StageStat:
    """Accumulated calls and seconds for one stage."""

    calls: int = 0
    seconds: float = 0.0

    def merge(self, other: "StageStat") -> None:
        self.calls += other.calls
        self.seconds += other.seconds


class StageProfiler:
    """Accumulates wall-clock spans per named stage."""

    def __init__(self) -> None:
        self.stages: Dict[str, StageStat] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time one block under ``name`` (nesting is fine; a nested span
        records into its own stage, so sibling stages stay additive but a
        parent stage overlaps its children)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            stat = self.stages.get(name)
            if stat is None:
                stat = self.stages[name] = StageStat()
            stat.calls += 1
            stat.seconds += time.perf_counter() - start

    @contextmanager
    def activate(self) -> Iterator["StageProfiler"]:
        """Bind this profiler as the ambient target for
        :func:`profile_stage` within the block."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "StageProfiler") -> None:
        """Fold another profiler's spans into this one (worker merges)."""
        for name, stat in other.stages.items():
            mine = self.stages.get(name)
            if mine is None:
                mine = self.stages[name] = StageStat()
            mine.merge(stat)

    def snapshot(self) -> Dict[str, StageStat]:
        """Independent copies of the current per-stage counters."""
        return {n: StageStat(s.calls, s.seconds) for n, s in self.stages.items()}

    def delta(self, since: Dict[str, StageStat]) -> "StageProfiler":
        """A profiler holding only spans recorded since ``since``."""
        out = StageProfiler()
        for name, stat in self.stages.items():
            before = since.get(name, StageStat())
            calls = stat.calls - before.calls
            seconds = stat.seconds - before.seconds
            if calls or seconds > 0:
                out.stages[name] = StageStat(calls, seconds)
        return out

    def seconds(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0.0 if never entered)."""
        stat = self.stages.get(name)
        return stat.seconds if stat is not None else 0.0

    def _ordered(self) -> List[str]:
        known = [n for n in STAGE_ORDER if n in self.stages]
        extra = sorted(n for n in self.stages if n not in STAGE_ORDER)
        return known + extra

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Machine-readable report: stage → {calls, seconds, ms_per_call}."""
        out: Dict[str, Dict[str, Any]] = {}
        for name in self._ordered():
            stat = self.stages[name]
            out[name] = {
                "calls": stat.calls,
                "seconds": round(stat.seconds, 6),
                "ms_per_call": round(1000.0 * stat.seconds / stat.calls, 4)
                if stat.calls
                else 0.0,
            }
        return out

    def report(self, title: str = "per-stage profile") -> str:
        """Aligned text table of the recorded stages."""
        lines = [title]
        if not self.stages:
            lines.append("(no spans recorded)")
            return "\n".join(lines)
        width = max(len(n) for n in self.stages)
        lines.append(f"{'stage'.ljust(width)}  {'calls':>7}  {'total s':>9}  {'ms/call':>8}")
        for name in self._ordered():
            stat = self.stages[name]
            per = 1000.0 * stat.seconds / stat.calls if stat.calls else 0.0
            lines.append(
                f"{name.ljust(width)}  {stat.calls:>7}  {stat.seconds:>9.4f}  {per:>8.3f}"
            )
        return "\n".join(lines)


_ACTIVE: ContextVar[Optional[StageProfiler]] = ContextVar(
    "repro_active_profiler", default=None
)


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP = _NoopSpan()


_STAGE_HOOK: ContextVar[Optional[Callable[[str], None]]] = ContextVar(
    "repro_stage_hook", default=None
)


@contextmanager
def stage_hook(hook: Callable[[str], None], chain: bool = False) -> Iterator[None]:
    """Bind ``hook`` to run at every stage-span boundary in the block.

    The serving layer uses this to inject faults and enforce cooperative
    deadlines at exactly the pipeline's instrumented stage boundaries
    (tokenize/parse/match/rank/compile/execute).  A hook that raises
    aborts the stage before it starts.

    ``chain=True`` composes with, rather than replaces, any hook already
    bound in the current context: the *outer* hook fires first, then
    ``hook``.  This is how the concurrent front's preemptive stage guard
    (armed around a whole request) keeps firing while the resilient
    service arms its own per-attempt fault/deadline hook inside —
    guard cancellation outranks fault injection, so a blown deadline
    cancels the remaining stages no matter what the inner hook does.
    """
    if chain:
        outer = _STAGE_HOOK.get()
        if outer is not None:
            hook = _chain_hooks(outer, hook)
    token = _STAGE_HOOK.set(hook)
    try:
        yield
    finally:
        _STAGE_HOOK.reset(token)


def _chain_hooks(
    outer: Callable[[str], None], inner: Callable[[str], None]
) -> Callable[[str], None]:
    """One hook that runs ``outer`` then ``inner`` (outer may raise first)."""

    def chained(stage: str) -> None:
        outer(stage)
        inner(stage)

    return chained


def profile_stage(name: str, fire_hook: bool = True):
    """A timing span on the ambient profiler, or a shared no-op.

    Usage at instrumentation sites::

        with profile_stage("rank"):
            ...

    When no profiler is active (the common case) this returns a shared
    no-op context manager — cheap enough for per-question call sites.
    An installed :func:`stage_hook` fires first (and may raise), so
    injected faults surface even when nothing is being profiled.

    ``fire_hook=False`` records the timing span without firing the
    ambient hook.  Use it for *amortized* work (version-gated cache
    fills like the schema-index lexicon build) where which request pays
    the cost is a scheduling accident: letting fault injection or
    deadline hooks land there would make a request's fault sequence
    depend on worker cache state, breaking per-request replayability.
    """
    if fire_hook:
        hook = _STAGE_HOOK.get()
        if hook is not None:
            hook(name)
    profiler = _ACTIVE.get()
    if profiler is None:
        return _NOOP
    return profiler.span(name)


def active_profiler() -> Optional[StageProfiler]:
    """The profiler bound to the current context, if any."""
    return _ACTIVE.get()
