"""Shared error base for the whole reproduction.

Both exception families — the SQL engine's (:mod:`repro.sqldb.errors`)
and the interpretation framework's (:mod:`repro.core.errors`) — derive
from :class:`ReproError`, so every error the library raises carries a
stable machine-readable ``code``.  The static analyzer
(:mod:`repro.sqldb.analyzer`) reuses the same codes for its diagnostics,
giving a 1:1 mapping between "what the analyzer flags" and "what the
engine would raise": catching code ``SQL211`` statically and catching
:class:`~repro.sqldb.errors.UnknownColumnError` at runtime are the same
event observed at two different times.

This module deliberately has no imports from the rest of the package so
either family can depend on it without cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the reproduction.

    ``code`` is a stable identifier of the error *class* (not the
    instance); subclasses override it.  Codes are grouped by hundreds:
    ``SQL1xx`` parse, ``SQL2xx`` catalog/name resolution, ``SQL3xx``
    types, ``SQL4xx`` execution, ``NLQ5xx`` interpretation framework.
    """

    code: str = "ERR000"

    def describe(self) -> str:
        """``CODE: message`` rendering used by logs and the CLI."""
        return f"{self.code}: {self}"
