"""Tokenization of natural-language questions.

Produces :class:`Token` objects carrying the surface form, a lower-cased
normal form, the character span in the original question, and slots that
downstream stages (POS tagger, lemmatizer) fill in.  Quoted spans ("new
york") are kept as single tokens because NLIDB value references are often
quoted; numbers (including decimals like ``3.5``) and ISO dates stay
intact.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

_TOKEN_RE = re.compile(
    r"""
    "(?P<dquoted>[^"]*)"            # double-quoted phrase
  | '(?P<squoted>[^']*)'            # single-quoted phrase
  | (?P<date>\d{4}-\d{2}-\d{2})     # ISO date
  | (?P<number>\d+(?:\.\d+)?)      # integer or decimal
  | (?P<word>[^\W\d][\w'-]*)       # unicode word (keeps don't, Zürich)
  | (?P<punct>[^\s\w])             # single punctuation character
    """,
    re.VERBOSE,
)


@dataclass
class Token:
    """One token of the question.

    Attributes:
        text: original surface form (without enclosing quotes).
        norm: lower-cased surface form.
        start: character offset in the question.
        end: character offset one past the token.
        kind: ``"word"``, ``"number"``, ``"date"``, ``"quoted"`` or
            ``"punct"``.
        pos: part-of-speech tag, filled by :mod:`repro.nlp.pos`.
        lemma: lemma, filled by :mod:`repro.nlp.lemmatizer`.
    """

    text: str
    norm: str
    start: int
    end: int
    kind: str
    pos: Optional[str] = None
    lemma: Optional[str] = None

    @property
    def is_word(self) -> bool:
        """Whether this token is an alphabetic word."""
        return self.kind == "word"

    @property
    def is_number(self) -> bool:
        """Whether this token is a numeric literal."""
        return self.kind == "number"

    @property
    def numeric_value(self) -> Optional[float]:
        """The numeric value for number tokens, else ``None``."""
        if self.kind != "number":
            return None
        return float(self.text) if "." in self.text else float(int(self.text))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into :class:`Token` objects.

    Quoted phrases become single ``"quoted"`` tokens; everything else
    follows the word/number/date/punct classification.
    """
    tokens: List[Token] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "punct"
        if kind in ("dquoted", "squoted"):
            raw = match.group(kind)
            tokens.append(
                Token(raw, raw.lower(), match.start(), match.end(), "quoted")
            )
            continue
        raw = match.group(0)
        tokens.append(Token(raw, raw.lower(), match.start(), match.end(), kind))
    return tokens


def words(text: str) -> List[str]:
    """Lower-cased word/number/quoted tokens of ``text`` (no punctuation).

    This is the representation used by bag-of-words models and index
    lookups.
    """
    return [t.norm for t in tokenize(text) if t.kind != "punct"]


def detokenize(tokens: List[Token]) -> str:
    """Reassemble tokens into a readable string (spaces between tokens)."""
    return " ".join(t.text for t in tokens)
