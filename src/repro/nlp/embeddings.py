"""Word embeddings without pretrained downloads.

Two providers, both deterministic:

- :class:`HashedEmbeddings` — random-feature vectors seeded by a hash of
  the word, with synonym smoothing: a word's vector is the average of its
  own hash vector and its synonym ring's vectors, so synonyms land close
  in cosine space.  This plays the role word2vec/GloVe play in the
  learned NLIDB systems the survey discusses (§4.2) at zero training
  cost.
- :class:`CooccurrenceEmbeddings` — PPMI + truncated SVD over a training
  corpus, the classic count-based embedding; used by the DBPal-style
  pipeline to learn domain vocabulary from its synthetic corpus.

Both expose ``vector(word)`` and ``sentence_vector(words)`` and are
consumed by the neural models in :mod:`repro.systems.neural`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.perf.cache import stats_for

from .lemmatizer import lemmatize
from .thesaurus import DEFAULT_THESAURUS, Thesaurus


def _hash_seed(word: str) -> int:
    digest = hashlib.sha256(word.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class HashedEmbeddings:
    """Deterministic hash-based embeddings with synonym smoothing.

    With ``smooth=False`` the synonym-ring averaging is skipped and each
    word keeps its own hash vector — useful when nearby-but-distinct cue
    words ("number" vs "amount") must stay separable for a classifier.
    """

    def __init__(
        self,
        dim: int = 64,
        thesaurus: Optional[Thesaurus] = None,
        smooth: bool = True,
    ):
        self.dim = dim
        self.thesaurus = thesaurus or DEFAULT_THESAURUS
        self.smooth = smooth
        self._cache: Dict[str, np.ndarray] = {}

    def _raw_vector(self, word: str) -> np.ndarray:
        rng = np.random.default_rng(_hash_seed(word))
        vec = rng.standard_normal(self.dim)
        return vec / (np.linalg.norm(vec) + 1e-12)

    def vector(self, word: str) -> np.ndarray:
        """Unit-norm vector for ``word``; synonyms share most of it.

        Lookups are cached per instance; hit/miss counters aggregate
        process-wide under the ``nlp.embeddings`` stats name.
        """
        stats = stats_for("nlp.embeddings")
        w = lemmatize(word.lower())
        cached = self._cache.get(w)
        if cached is not None:
            stats.hits += 1
            return cached
        stats.misses += 1
        if not self.smooth:
            vec = self._raw_vector(w)
            self._cache[w] = vec
            return vec
        ring = sorted(lemmatize(s) for s in self.thesaurus.synonyms(w))
        if len(ring) > 1:
            # Anchor on the ring centroid so all synonyms are close, and
            # mix in the word's own vector so they are not identical.
            centroid = np.mean([self._raw_vector(s) for s in ring], axis=0)
            vec = 0.8 * centroid + 0.2 * self._raw_vector(w)
        else:
            vec = self._raw_vector(w)
        vec = vec / (np.linalg.norm(vec) + 1e-12)
        self._cache[w] = vec
        return vec

    def sentence_vector(self, words: Sequence[str]) -> np.ndarray:
        """Mean of word vectors (zero vector for an empty input)."""
        if not words:
            return np.zeros(self.dim)
        return np.mean([self.vector(w) for w in words], axis=0)

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two word vectors."""
        return cosine(self.vector(a), self.vector(b))


class CooccurrenceEmbeddings:
    """PPMI + SVD embeddings trained on a corpus of token lists."""

    def __init__(self, dim: int = 32, window: int = 3, min_count: int = 1):
        self.dim = dim
        self.window = window
        self.min_count = min_count
        self.vocab: Dict[str, int] = {}
        self._vectors: Optional[np.ndarray] = None

    def fit(self, corpus: Iterable[Sequence[str]]) -> "CooccurrenceEmbeddings":
        """Learn embeddings from an iterable of tokenized sentences."""
        sentences = [[w.lower() for w in sent] for sent in corpus]
        counts: Dict[str, int] = {}
        for sent in sentences:
            for word in sent:
                counts[word] = counts.get(word, 0) + 1
        self.vocab = {
            w: i
            for i, w in enumerate(
                sorted(w for w, c in counts.items() if c >= self.min_count)
            )
        }
        size = len(self.vocab)
        if size == 0:
            self._vectors = np.zeros((0, self.dim))
            return self
        matrix = np.zeros((size, size))
        for sent in sentences:
            ids = [self.vocab[w] for w in sent if w in self.vocab]
            for i, center in enumerate(ids):
                lo = max(0, i - self.window)
                hi = min(len(ids), i + self.window + 1)
                for j in range(lo, hi):
                    if j != i:
                        matrix[center, ids[j]] += 1.0
        total = matrix.sum()
        if total == 0:
            self._vectors = np.zeros((size, self.dim))
            return self
        row = matrix.sum(axis=1, keepdims=True)
        col = matrix.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log((matrix * total) / (row @ col))
        pmi[~np.isfinite(pmi)] = 0.0
        ppmi = np.maximum(pmi, 0.0)
        dim = min(self.dim, size)
        u, s, _ = np.linalg.svd(ppmi, full_matrices=False)
        vectors = u[:, :dim] * np.sqrt(s[:dim])
        if dim < self.dim:
            vectors = np.pad(vectors, ((0, 0), (0, self.dim - dim)))
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        self._vectors = vectors / np.maximum(norms, 1e-12)
        return self

    def vector(self, word: str) -> np.ndarray:
        """Vector for ``word``; zero vector when out of vocabulary."""
        if self._vectors is None:
            raise RuntimeError("call fit() before vector()")
        idx = self.vocab.get(word.lower())
        if idx is None:
            return np.zeros(self.dim)
        return self._vectors[idx]

    def sentence_vector(self, words: Sequence[str]) -> np.ndarray:
        """Mean of in-vocabulary word vectors."""
        if not words:
            return np.zeros(self.dim)
        vecs = [self.vector(w) for w in words]
        return np.mean(vecs, axis=0)

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two word vectors."""
        return cosine(self.vector(a), self.vector(b))


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity with zero-vector protection."""
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na < 1e-12 or nb < 1e-12:
        return 0.0
    return float(np.dot(a, b) / (na * nb))
