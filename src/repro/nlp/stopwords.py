"""Stopword list used by keyword lookup and bag-of-words featurisation.

Deliberately *excludes* words that carry query semantics in NLIDB —
"by", "per", "each", "most", "more", "than", "not", "between", "over",
"under", "top" — because the pattern detectors in
:mod:`repro.nlp.patterns` need them.
"""

from __future__ import annotations

from typing import Iterable, List

STOPWORDS = frozenset(
    """
    a an the this that these those there
    i you he she it we they me him her us them my your his its our their
    is are was were be been being am
    do does did done doing
    have has had having
    will would shall should may might can could must
    of in on at to from into onto with without within
    and or but nor so yet
    as if then else when while because since although though
    what which who whom whose where why how
    please show me give get find list display tell return
    all any some
    s t re ve ll d
    """.split()
)

# Words that look like stopwords but are load-bearing for interpretation.
SEMANTIC_KEEPWORDS = frozenset(
    """
    by per each most least more less than not no between over under top
    first last highest lowest largest smallest best worst every
    """.split()
)


def is_stopword(word: str) -> bool:
    """Whether ``word`` should be dropped before index lookup."""
    lowered = word.lower()
    return lowered in STOPWORDS and lowered not in SEMANTIC_KEEPWORDS


def content_words(tokens: Iterable[str]) -> List[str]:
    """Filter an iterable of words down to non-stopwords."""
    return [w for w in tokens if not is_stopword(w)]
