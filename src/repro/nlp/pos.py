"""Rule-based part-of-speech tagger.

Tags :class:`~repro.nlp.tokenizer.Token` lists in place using the
closed-class lexicon (:mod:`repro.nlp.lexicon`), morphological suffix
heuristics, and two context repairs (verb after "to"/modal; noun after a
determiner).  It is a deliberately simple stand-in for the Stanford
tagger used by NaLIR [30-32] — the parse analysis downstream only needs
coarse distinctions (noun vs verb vs wh-word vs comparative).
"""

from __future__ import annotations

from typing import List

from . import lexicon
from .tokenizer import Token, tokenize


def tag(tokens: List[Token]) -> List[Token]:
    """Assign ``token.pos`` for every token; returns the same list."""
    for token in tokens:
        token.pos = _lexical_tag(token)
    _contextual_repair(tokens)
    return tokens


def tag_text(text: str) -> List[Token]:
    """Tokenize and tag in one step."""
    return tag(tokenize(text))


def _lexical_tag(token: Token) -> str:
    if token.kind == "number":
        return "CD"
    if token.kind == "date":
        return "CD"
    if token.kind == "quoted":
        return "NNP"  # quoted spans behave like proper nouns (values)
    if token.kind == "punct":
        return "SYM"
    w = token.norm
    if w in lexicon.DETERMINERS:
        return "DT"
    if w in lexicon.PREPOSITIONS:
        return "IN"
    if w in lexicon.CONJUNCTIONS:
        return "CC"
    if w in lexicon.PRONOUNS:
        return "PRP"
    if w in lexicon.WH_PRONOUNS:
        return "WP"
    if w in lexicon.WH_ADVERBS:
        return "WRB"
    if w in lexicon.MODALS:
        return "MD"
    if w in lexicon.AUX_VERBS:
        return "VB"
    if w in lexicon.SUPERLATIVES:
        return "JJS"
    if w in lexicon.COMPARATIVES:
        return "JJR"
    if w in lexicon.NEGATIONS or w in lexicon.ADVERBS:
        return "RB"
    if w in lexicon.COMMON_VERBS:
        return "VB"
    if w in lexicon.ADJECTIVES:
        return "JJ"
    return _suffix_tag(w)


def _suffix_tag(word: str) -> str:
    if word.endswith("ly") and len(word) > 4:
        return "RB"
    if word.endswith(("est",)) and len(word) > 4:
        return "JJS"
    if word.endswith(("er",)) and len(word) > 4:
        # 'manager', 'customer' are nouns; treat -er as noun unless the
        # stem alone is a known adjective base (cheap+er).
        stem = word[:-2]
        if stem in lexicon.ADJECTIVES or stem + "e" in lexicon.ADJECTIVES:
            return "JJR"
        return "NN"
    if word.endswith(("ing",)) and len(word) > 5:
        return "VBG"
    if word.endswith(("ed",)) and len(word) > 4:
        return "VBD"
    if word.endswith(("ous", "ful", "ive", "able", "ible", "al", "ic")) and len(word) > 4:
        return "JJ"
    if word.endswith("s") and not word.endswith(("ss", "us", "is")) and len(word) > 3:
        return "NNS"
    return "NN"


def _contextual_repair(tokens: List[Token]) -> None:
    for i, token in enumerate(tokens):
        prev_token = tokens[i - 1] if i > 0 else None
        # after a determiner, a VB/VBD-looking word is usually a noun:
        # "the *order*", "the *visit*"
        if prev_token is not None and prev_token.pos == "DT" and token.pos in ("VB", "VBD"):
            token.pos = "NN"
        # after "to" or a modal, prefer verb: "wants to *order*"
        if (
            prev_token is not None
            and (prev_token.norm == "to" or prev_token.pos == "MD")
            and token.pos in ("NN",)
            and token.norm in lexicon.COMMON_VERBS
        ):
            token.pos = "VB"


def is_noun(pos: str) -> bool:
    """Whether the tag denotes a noun (incl. proper and plural)."""
    return pos.startswith("NN")


def is_verb(pos: str) -> bool:
    """Whether the tag denotes a verb form."""
    return pos.startswith("VB")


def is_wh(pos: str) -> bool:
    """Whether the tag denotes a wh-word."""
    return pos in ("WP", "WRB")
