"""Rule-based lemmatizer.

Covers the inflection patterns that matter for matching question words
against schema terms: noun plurals (``employees`` → ``employee``,
``salaries`` → ``salary``, ``branches`` → ``branch``), verb forms
(``earns``/``earned``/``earning`` → ``earn``), and a table of common
irregulars.  The output is used by index lookup, so precision matters
more than linguistic completeness.
"""

from __future__ import annotations

from typing import Dict

from repro.perf.cache import memoize

IRREGULAR: Dict[str, str] = {
    # nouns
    "people": "person",
    "men": "man",
    "women": "woman",
    "children": "child",
    "feet": "foot",
    "teeth": "tooth",
    "mice": "mouse",
    "geese": "goose",
    "criteria": "criterion",
    "data": "datum",
    "indices": "index",
    "analyses": "analysis",
    "countries": "country",
    "cities": "city",
    "companies": "company",
    "salaries": "salary",
    "categories": "category",
    "branches": "branch",
    "movies": "movie",
    "cookies": "cookie",
    "calories": "calorie",
    "species": "species",
    "series": "series",
    # verbs
    "is": "be",
    "are": "be",
    "was": "be",
    "were": "be",
    "been": "be",
    "am": "be",
    "has": "have",
    "had": "have",
    "does": "do",
    "did": "do",
    "went": "go",
    "gone": "go",
    "made": "make",
    "sold": "sell",
    "bought": "buy",
    "spent": "spend",
    "paid": "pay",
    "earned": "earn",
    "got": "get",
    "gave": "give",
    "took": "take",
    "held": "hold",
    "ran": "run",
    "grew": "grow",
    "left": "leave",
    "won": "win",
    "lost": "lose",
}

# Words ending in 's' that are not plurals.
_S_EXCEPTIONS = frozenset(
    "always perhaps status bonus campus census genus bus plus analysis"
    " basis crisis thesis lens boss class gross less miss process address"
    " business species series news".split()
)

_VOWELS = set("aeiou")


@memoize("nlp.lemmatize", maxsize=32768)
def lemmatize(word: str) -> str:
    """Best-effort lemma of ``word`` (lower-cased).

    Memoized process-wide: matching calls this for every (question word,
    schema term) pair, and question/schema vocabularies are tiny relative
    to the call volume.
    """
    w = word.lower()
    if len(w) <= 2:
        return w
    if w in IRREGULAR:
        return IRREGULAR[w]
    if w in _S_EXCEPTIONS:
        return w
    # -ies -> -y  (salaries -> salary)
    if w.endswith("ies") and len(w) > 4:
        return w[:-3] + "y"
    # -sses/-shes/-ches/-xes/-zes -> strip 'es'
    if w.endswith(("sses", "shes", "ches", "xes", "zes")) and len(w) > 4:
        return w[:-2]
    # -oes -> -o  (heroes -> hero); but 'does' handled above
    if w.endswith("oes") and len(w) > 4:
        return w[:-2]
    # -ing -> base (earning -> earn, running -> run, making -> make)
    if w.endswith("ing") and len(w) > 5:
        stem = w[:-3]
        if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
            return stem[:-1]  # running -> run
        if _needs_e(stem):
            return stem + "e"  # making -> make
        return stem
    # -ed -> base (earned -> earn, saved -> save, planned -> plan)
    if w.endswith("ed") and len(w) > 4:
        stem = w[:-2]
        if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
            return stem[:-1]
        if _needs_e(stem):
            return stem + "e"
        return stem
    # plain plural -s (but not -ss, -us, -is)
    if w.endswith("s") and not w.endswith(("ss", "us", "is")):
        return w[:-1]
    return w


def _needs_e(stem: str) -> bool:
    """Heuristic: stems like ``mak``, ``sav``, ``stor`` need a trailing e."""
    if len(stem) < 3:
        return False
    if stem[-1] in _VOWELS or stem[-1] in "wxy":
        return False
    # consonant-vowel-consonant with a 'hard' ending usually re-adds e
    return stem[-2] in _VOWELS and stem[-3] not in _VOWELS and stem[-1] not in "gn"


_NOUN_IRREGULAR = {
    w: lemma
    for w, lemma in IRREGULAR.items()
    # verb irregulars (was->be etc.) must not fire on noun identifiers
    if lemma not in ("be", "have", "do", "go")
}


def singularize(word: str) -> str:
    """Noun-only lemmatization: strips plural suffixes but never verb
    morphology — schema identifiers like ``rating`` or ``opened`` must
    keep their surface form (``lemmatize`` would turn them into ``rate``
    and ``open``)."""
    w = word.lower()
    if len(w) <= 2:
        return w
    if w in _NOUN_IRREGULAR:
        return _NOUN_IRREGULAR[w]
    if w in _S_EXCEPTIONS:
        return w
    if w.endswith("ies") and len(w) > 4:
        return w[:-3] + "y"
    if w.endswith(("sses", "shes", "ches", "xes", "zes")) and len(w) > 4:
        return w[:-2]
    if w.endswith("oes") and len(w) > 4:
        return w[:-2]
    if w.endswith("s") and not w.endswith(("ss", "us", "is")):
        return w[:-1]
    return w


def lemmas_equal(a: str, b: str) -> bool:
    """Whether two words share a lemma (symmetric convenience)."""
    return lemmatize(a) == lemmatize(b)
