"""Blended term matching: string + thesaurus + taxonomy.

`term_similarity` is the single scoring function the entity-based systems
use to decide how well a question word matches a schema term.  It blends
exact/lemma equality, synonym rings, Wu–Palmer taxonomy similarity and
fuzzy string similarity, in that precedence order — mirroring the
WordNet-plus-edit-distance scoring NaLIR describes [30-32].
"""

from __future__ import annotations

from typing import List, Optional

from .lemmatizer import lemmatize
from .similarity import string_similarity
from .thesaurus import DEFAULT_THESAURUS, Thesaurus


def term_similarity(
    question_word: str,
    schema_term: str,
    thesaurus: Optional[Thesaurus] = None,
) -> float:
    """Similarity in [0, 1] between a question word and a schema term.

    Scores: 1.0 exact/lemma match, 0.95 synonym, up to 0.8 for taxonomy
    relatives, and the (damped) string similarity otherwise.  The 0.95 /
    0.8 plateaus keep synonym hits above any fuzzy string hit, which is
    what makes entity-based systems precise (§4.1, §6 of the survey).
    """
    th = thesaurus or DEFAULT_THESAURUS
    q = question_word.lower().strip()
    s = schema_term.lower().strip()
    if not q or not s:
        return 0.0
    if q == s or lemmatize(q) == lemmatize(s):
        return 1.0
    if th.are_synonyms(q, s):
        return 0.95
    wup = th.wup_similarity(q, s)
    string_score = string_similarity(q, s)
    if wup >= 0.5:
        return max(0.8 * wup, string_score * 0.9)
    return string_score * 0.9


def phrase_similarity(
    question_words: List[str],
    schema_term: str,
    thesaurus: Optional[Thesaurus] = None,
) -> float:
    """Best alignment of a multi-word phrase against a schema term.

    A schema term like ``order_date`` is split into words; the phrase
    scores by the average of each schema word's best match among the
    question words, discounted when the phrase leaves schema words
    uncovered or matches them out of order ("average grade" is not
    "grade average").
    """
    from repro.sqldb.index import split_identifier

    schema_words = split_identifier(schema_term) or [schema_term.lower()]
    if not question_words:
        return 0.0
    total = 0.0
    positions: List[int] = []
    for sw in schema_words:
        scores = [term_similarity(qw, sw, thesaurus) for qw in question_words]
        best = max(scores)
        positions.append(scores.index(best))
        total += best
    score = total / len(schema_words)
    if positions != sorted(positions):
        score *= 0.93
    return score
