"""Chunking dependency parser.

A light-weight stand-in for the Stanford dependency parser that NaLIR
[30-32] consumes: the question is chunked into noun phrases, the main
verb becomes the root, noun phrases attach to the verb or to each other
through prepositions, and wh-words mark the question focus.

The produced :class:`ParseTree` supports exactly the analyses the
entity-based systems need:

- ``noun_phrases()`` — candidate entity/value mentions,
- ``focus()`` — the phrase being asked for (head of the SELECT clause),
- ``attachments()`` — (head, preposition, dependent) triples that hint at
  relationships and filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.perf.profiler import profile_stage

from . import pos as pos_mod
from .tokenizer import Token

_NP_TAGS = {"DT", "JJ", "JJR", "JJS", "NN", "NNS", "NNP", "CD", "VBG"}
_NP_HEAD_TAGS = {"NN", "NNS", "NNP", "CD"}


@dataclass
class ParseNode:
    """One node of the parse tree.

    ``label`` is ``"ROOT"``, ``"VP"``, ``"NP"``, ``"WH"`` or ``"PP"``;
    ``relation`` names the grammatical link to the parent (``"subj"``,
    ``"obj"``, ``"prep:<word>"``, ``"mod"``).
    """

    label: str
    tokens: List[Token] = field(default_factory=list)
    children: List["ParseNode"] = field(default_factory=list)
    relation: str = ""

    @property
    def head(self) -> Optional[Token]:
        """Head token: last nominal token for NPs, first token otherwise."""
        if not self.tokens:
            return None
        if self.label == "NP":
            for token in reversed(self.tokens):
                if token.pos in _NP_HEAD_TAGS or token.kind == "quoted":
                    return token
        return self.tokens[-1] if self.label == "NP" else self.tokens[0]

    @property
    def text(self) -> str:
        """Surface text of this node's own tokens."""
        return " ".join(t.text for t in self.tokens)

    @property
    def content_words(self) -> List[str]:
        """Normalized non-determiner words of this node."""
        return [t.norm for t in self.tokens if t.pos not in ("DT", "SYM")]

    def walk(self):
        """Yield this node and all descendants depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        """Indented tree rendering for debugging."""
        line = "  " * indent + f"{self.label}"
        if self.relation:
            line += f"[{self.relation}]"
        if self.tokens:
            line += f": {self.text}"
        lines = [line]
        lines.extend(child.pretty(indent + 1) for child in self.children)
        return "\n".join(lines)


@dataclass
class ParseTree:
    """Root container plus convenience analyses."""

    root: ParseNode
    tokens: List[Token]

    def noun_phrases(self) -> List[ParseNode]:
        """All NP nodes, in question order."""
        return [n for n in self.root.walk() if n.label == "NP"]

    def wh_node(self) -> Optional[ParseNode]:
        """The wh-question node, if any."""
        for node in self.root.walk():
            if node.label == "WH":
                return node
        return None

    def focus(self) -> Optional[ParseNode]:
        """The phrase the question asks for.

        For "what/which X ..." this is the NP right after the wh-word;
        for "show me X ..." it is the first NP; ``None`` when the
        question has no NP at all.
        """
        wh = self.wh_node()
        nps = self.noun_phrases()
        if wh is not None and wh.children:
            for child in wh.children:
                if child.label == "NP":
                    return child
        return nps[0] if nps else None

    def attachments(self) -> List[Tuple[ParseNode, str, ParseNode]]:
        """(head NP/VP, preposition word, dependent NP) triples."""
        out = []
        for node in self.root.walk():
            for child in node.children:
                if child.relation.startswith("prep:") and child.label == "NP":
                    out.append((node, child.relation.split(":", 1)[1], child))
        return out

    def verbs(self) -> List[Token]:
        """Main verb tokens (excluding auxiliaries attached to WH)."""
        return [
            n.tokens[0]
            for n in self.root.walk()
            if n.label == "VP" and n.tokens
        ]

    def pretty(self) -> str:
        """Indented rendering of the whole tree."""
        return self.root.pretty()


def parse(text: str) -> ParseTree:
    """Tokenize, tag and parse ``text`` into a :class:`ParseTree`."""
    with profile_stage("parse"):
        tokens = pos_mod.tag_text(text)
        return parse_tokens(tokens)


def parse_tokens(tokens: List[Token]) -> ParseTree:
    """Parse already-tagged tokens (the tagger must have run)."""
    root = ParseNode("ROOT")
    chunks = _chunk(tokens)
    current_head: Optional[ParseNode] = None  # last NP or VP to attach PPs to
    verb_node: Optional[ParseNode] = None
    wh_node: Optional[ParseNode] = None
    pending_prep: Optional[Token] = None
    pending_cc = False

    for kind, toks in chunks:
        if kind == "WH":
            wh_node = ParseNode("WH", toks, relation="wh")
            root.children.append(wh_node)
            current_head = wh_node
            pending_prep = None
            continue
        if kind == "VP":
            verb_node = ParseNode("VP", toks, relation="pred")
            root.children.append(verb_node)
            current_head = verb_node
            pending_prep = None
            continue
        if kind == "IN":
            pending_prep = toks[0]
            continue
        if kind == "CC":
            pending_cc = True
            continue
        if kind == "NP":
            node = ParseNode("NP", toks)
            if pending_prep is not None:
                node.relation = f"prep:{pending_prep.norm}"
                (current_head or root).children.append(node)
                pending_prep = None
                current_head = node
            elif pending_cc and current_head is not None and current_head.label == "NP":
                node.relation = "conj"
                current_head.children.append(node)
                pending_cc = False
            elif wh_node is not None and not any(
                c.label == "NP" for c in wh_node.children
            ) and verb_node is None:
                node.relation = "focus"
                wh_node.children.append(node)
                current_head = node
            elif verb_node is not None:
                node.relation = "obj" if any(
                    c.label == "NP" for c in verb_node.children
                ) else ("obj" if wh_node is not None else "subj")
                verb_node.children.append(node)
                current_head = node
            else:
                node.relation = "mod"
                root.children.append(node)
                current_head = node
            continue
        # Anything else (adverbs, punctuation) becomes a modifier leaf.
        node = ParseNode("MOD", toks, relation="mod")
        (current_head or root).children.append(node)

    return ParseTree(root, tokens)


def _chunk(tokens: List[Token]) -> List[Tuple[str, List[Token]]]:
    """Group tokens into WH / VP / NP / IN / CC / MOD chunks."""
    chunks: List[Tuple[str, List[Token]]] = []
    i = 0
    n = len(tokens)
    while i < n:
        token = tokens[i]
        pos = token.pos or "NN"
        if pos in ("WP", "WRB"):
            chunks.append(("WH", [token]))
            i += 1
            # Skip auxiliary right after wh ("what is", "how many ... do")
            continue
        if pos in ("VB", "VBD", "MD") and token.norm not in ("is", "are", "was", "were", "do", "does", "did"):
            chunks.append(("VP", [token]))
            i += 1
            continue
        if pos in ("VB",):  # auxiliaries — skip silently
            i += 1
            continue
        if pos == "IN":
            chunks.append(("IN", [token]))
            i += 1
            continue
        if pos == "CC":
            chunks.append(("CC", [token]))
            i += 1
            continue
        if pos in _NP_TAGS or token.kind == "quoted":
            group = [token]
            i += 1
            while i < n and (
                (tokens[i].pos in _NP_TAGS) or tokens[i].kind == "quoted"
            ):
                group.append(tokens[i])
                i += 1
            chunks.append(("NP", group))
            continue
        chunks.append(("MOD", [token]))
        i += 1
    return chunks
