"""Number-word and ordinal parsing.

Questions express numbers three ways — digits ("5"), words ("five"),
ordinals ("fifth" / "twenty-first" / "top five") — and all three must
normalize before they can become SQL literals or LIMIT counts.
Magnitude suffixes ("3.5k", "2m", "1.2bn") common in analytics
questions are expanded to their plain value.
"""

from __future__ import annotations

import re
from typing import Optional

_UNITS = {
    "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
    "eleven": 11, "twelve": 12, "thirteen": 13, "fourteen": 14,
    "fifteen": 15, "sixteen": 16, "seventeen": 17, "eighteen": 18,
    "nineteen": 19,
}

_TENS = {
    "twenty": 20, "thirty": 30, "forty": 40, "fifty": 50,
    "sixty": 60, "seventy": 70, "eighty": 80, "ninety": 90,
}

_SCALES = {"hundred": 100, "thousand": 1000, "million": 1000000, "billion": 1000000000}

_ORDINALS = {
    "first": 1, "second": 2, "third": 3, "fourth": 4, "fifth": 5,
    "sixth": 6, "seventh": 7, "eighth": 8, "ninth": 9, "tenth": 10,
    "eleventh": 11, "twelfth": 12, "thirteenth": 13, "fourteenth": 14,
    "fifteenth": 15, "sixteenth": 16, "seventeenth": 17,
    "eighteenth": 18, "nineteenth": 19,
    "twentieth": 20, "thirtieth": 30, "fortieth": 40, "fiftieth": 50,
    "sixtieth": 60, "seventieth": 70, "eightieth": 80, "ninetieth": 90,
    "hundredth": 100, "thousandth": 1000,
}

#: magnitude suffixes appended to digit strings ("3.5k", "2m", "1.2bn")
_MAGNITUDE_SUFFIXES = {"k": 1_000, "m": 1_000_000, "b": 1_000_000_000, "bn": 1_000_000_000}

_SUFFIXED_RE = re.compile(r"^(\d+(?:\.\d+)?)(k|m|b|bn)$")


def word_to_number(word: str) -> Optional[int]:
    """Parse a single number word; ``None`` if it is not one."""
    w = word.lower()
    if w in _UNITS:
        return _UNITS[w]
    if w in _TENS:
        return _TENS[w]
    if w in _SCALES:
        return _SCALES[w]
    return None


def ordinal_to_number(word: str) -> Optional[int]:
    """Parse an ordinal word ("fifth"), a hyphenated compound
    ("twenty-first"), or a digit-ordinal ("3rd"); ``None`` otherwise."""
    w = word.lower()
    if w in _ORDINALS:
        return _ORDINALS[w]
    for suffix in ("st", "nd", "rd", "th"):
        if w.endswith(suffix) and w[: -len(suffix)].isdigit():
            return int(w[: -len(suffix)])
    # Hyphenated (or spaced) compound: every part but the last is a
    # cardinal ("twenty", "one hundred"), the last is an ordinal unit.
    parts = [p for p in w.replace("-", " ").split() if p != "and"]
    if len(parts) >= 2 and parts[-1] in _ORDINALS:
        prefix = parse_number(" ".join(parts[:-1]))
        tail = _ORDINALS[parts[-1]]
        if prefix is not None and prefix == int(prefix):
            return int(prefix) + tail
    return None


def parse_number(text: str) -> Optional[float]:
    """Parse digits, decimals, number words, magnitude suffixes or short
    compounds.

    Handles "5", "4.5", "five", "twenty five", "2 million", "3.5k",
    "1.2bn".  Returns ``None`` when the text is not numeric.
    """
    t = text.strip().lower().replace(",", "")
    if not t:
        return None
    try:
        return float(t)
    except ValueError:
        pass
    suffixed = _SUFFIXED_RE.match(t)
    if suffixed:
        return float(suffixed.group(1)) * _MAGNITUDE_SUFFIXES[suffixed.group(2)]
    total = 0.0
    current = 0.0
    any_word = False
    for word in t.replace("-", " ").split():
        if word == "and":
            continue
        suffixed = _SUFFIXED_RE.match(word)
        if suffixed:
            current += float(suffixed.group(1)) * _MAGNITUDE_SUFFIXES[suffixed.group(2)]
            any_word = True
            continue
        try:
            current = float(word) if current == 0 else current
            if word.replace(".", "", 1).isdigit():
                current = float(word)
                any_word = True
                continue
        except ValueError:
            pass
        value = word_to_number(word)
        if value is None:
            return None
        any_word = True
        if word in _SCALES:
            current = (current or 1) * value
            if value >= 1000:
                total += current
                current = 0
        else:
            current += value
    if not any_word:
        return None
    return total + current
