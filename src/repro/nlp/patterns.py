"""Natural-language pattern detectors.

Pattern-based NLIDB systems (SQAK [51] and kin — §3 of the survey) go
beyond keyword lookup by recognizing *fixed linguistic patterns* that
signal SQL clauses: "total"/"average" → aggregation, "by"/"per"/"for
each" → GROUP BY, "top N"/"highest" → ORDER BY + LIMIT, "more than" →
comparison predicates.  This module centralizes those detectors; the
pattern-based system and the sketch featurisers of the neural models both
consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .numbers import ordinal_to_number, word_to_number
from .tokenizer import Token, tokenize

AGGREGATION_CUES = {
    "total": "sum",
    "sum": "sum",
    "overall": "sum",
    "combined": "sum",
    "average": "avg",
    "mean": "avg",
    "avg": "avg",
    "typical": "avg",
    "maximum": "max",
    "max": "max",
    "highest": "max",
    "largest": "max",
    "greatest": "max",
    "biggest": "max",
    "most": "max",
    "latest": "max",
    "newest": "max",
    "oldest": "min",
    "minimum": "min",
    "min": "min",
    "lowest": "min",
    "smallest": "min",
    "least": "min",
    "fewest": "min",
    "earliest": "min",
    "cheapest": "min",
}

COUNT_PHRASES = (
    ("how", "many"),
    ("number", "of"),
    ("count", "of"),
    ("total", "number"),
)

GROUPBY_CUES = ("by", "per")
GROUPBY_PHRASES = (("for", "each"), ("for", "every"), ("in", "each"), ("grouped", "by"), ("broken", "down", "by"))

_GT_PHRASES = (
    ("more", "than"), ("greater", "than"), ("higher", "than"), ("larger", "than"),
    ("bigger", "than"), ("above",), ("over",), ("exceeding",), ("after",), ("beyond",),
)
_GTE_PHRASES = (("at", "least"), ("no", "less", "than"), ("minimum", "of"), ("or", "more"))
_LT_PHRASES = (
    ("less", "than"), ("fewer", "than"), ("lower", "than"), ("smaller", "than"),
    ("below",), ("under",), ("before",), ("cheaper", "than"),
)
_LTE_PHRASES = (("at", "most"), ("no", "more", "than"), ("maximum", "of"), ("or", "less"))
_NEQ_PHRASES = (("not", "equal"), ("other", "than"), ("except",), ("excluding",), ("besides",))

SORT_DESC_CUES = ("descending", "decreasing", "highest", "largest", "most", "top", "best", "latest", "newest")
SORT_ASC_CUES = ("ascending", "increasing", "lowest", "smallest", "least", "bottom", "worst", "earliest", "oldest", "cheapest")


@dataclass(frozen=True)
class PatternMatch:
    """One detected pattern.

    ``kind`` names the pattern family (``"aggregation"``, ``"count"``,
    ``"group_by"``, ``"comparison"``, ``"superlative"``, ``"limit"``,
    ``"negation"``, ``"order"``); ``value`` carries the payload (e.g. the
    aggregate function name or comparison operator); ``start``/``end``
    delimit the matched token span.
    """

    kind: str
    value: str
    start: int
    end: int


def _match_phrase(norms: List[str], i: int, phrase: Tuple[str, ...]) -> bool:
    return tuple(norms[i : i + len(phrase)]) == phrase


def detect_patterns(tokens: List[Token]) -> List[PatternMatch]:
    """Scan tagged/untagged tokens for all pattern families.

    Matches are returned in token order; overlapping matches are allowed
    (the consumer decides precedence — e.g. "how many" wins over a bare
    "many").
    """
    norms = [t.norm for t in tokens]
    matches: List[PatternMatch] = []
    n = len(norms)

    consumed_count_positions = set()
    for i in range(n):
        for phrase in COUNT_PHRASES:
            if _match_phrase(norms, i, phrase):
                matches.append(PatternMatch("count", "count", i, i + len(phrase)))
                consumed_count_positions.update(range(i, i + len(phrase)))
    for i, word in enumerate(norms):
        # bare verb "count" ("count the employees by title")
        if word == "count" and i not in consumed_count_positions:
            matches.append(PatternMatch("count", "count", i, i + 1))
            consumed_count_positions.add(i)

    for i, word in enumerate(norms):
        if i in consumed_count_positions:
            continue
        func = AGGREGATION_CUES.get(word)
        if func:
            matches.append(PatternMatch("aggregation", func, i, i + 1))

    for i in range(n):
        for phrase in GROUPBY_PHRASES:
            if _match_phrase(norms, i, phrase):
                matches.append(PatternMatch("group_by", "group", i, i + len(phrase)))
    for i, word in enumerate(norms):
        if word in GROUPBY_CUES:
            # "by"/"per" only signals GROUP BY when followed by a word
            # (not "by 2019", which is a filter).
            if i + 1 < n and tokens[i + 1].kind == "word":
                matches.append(PatternMatch("group_by", "group", i, i + 1))

    for i in range(n):
        for phrases, op in (
            (_GTE_PHRASES, ">="),
            (_LTE_PHRASES, "<="),
            (_GT_PHRASES, ">"),
            (_LT_PHRASES, "<"),
            (_NEQ_PHRASES, "!="),
        ):
            for phrase in phrases:
                if _match_phrase(norms, i, phrase):
                    matches.append(
                        PatternMatch("comparison", op, i, i + len(phrase))
                    )
        if norms[i] == "between":
            matches.append(PatternMatch("comparison", "between", i, i + 1))

    for i, word in enumerate(norms):
        if word in ("not", "no", "never") and i not in consumed_count_positions:
            matches.append(PatternMatch("negation", "not", i, i + 1))

    matches.extend(_detect_limits(tokens))

    for i, word in enumerate(norms):
        if word in SORT_DESC_CUES:
            matches.append(PatternMatch("order", "desc", i, i + 1))
        elif word in SORT_ASC_CUES:
            matches.append(PatternMatch("order", "asc", i, i + 1))

    matches.sort(key=lambda m: (m.start, m.end))
    return matches


def _detect_limits(tokens: List[Token]) -> List[PatternMatch]:
    """Detect "top N" / "N highest" / "first N" limit patterns."""
    norms = [t.norm for t in tokens]
    out: List[PatternMatch] = []
    for i, word in enumerate(norms):
        if word in ("top", "first", "bottom", "last"):
            count = 1
            end = i + 1
            if i + 1 < len(norms):
                nxt = tokens[i + 1]
                value = (
                    int(nxt.numeric_value)
                    if nxt.is_number
                    else (word_to_number(nxt.norm) or ordinal_to_number(nxt.norm))
                )
                if value:
                    count = int(value)
                    end = i + 2
            direction = "asc" if word in ("bottom", "last") else "desc"
            out.append(PatternMatch("limit", f"{count}:{direction}", i, end))
    return out


def detect_text(text: str) -> List[PatternMatch]:
    """Convenience: tokenize then detect."""
    return detect_patterns(tokenize(text))


def aggregation_of(matches: List[PatternMatch]) -> Optional[str]:
    """First aggregate function implied by the matches (count wins)."""
    for match in matches:
        if match.kind == "count":
            return "count"
    for match in matches:
        if match.kind == "aggregation":
            return match.value
    return None


def has_group_by(matches: List[PatternMatch]) -> bool:
    """Whether any GROUP BY cue fired."""
    return any(m.kind == "group_by" for m in matches)
