"""String similarity measures.

Entity-based systems match question tokens against schema terms and data
values with fuzzy string similarity (NaLIR uses WordNet-based similarity
plus string distance; SODA uses exact/fuzzy index lookup).  This module
provides the string-level half; the semantic half lives in
:mod:`repro.nlp.thesaurus`.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.perf.cache import memoize


def levenshtein(a: str, b: str) -> int:
    """Optimal-string-alignment edit distance.

    Insert/delete/substitute cost 1, and — because keyboard typos are the
    dominant error source in NLIDB value matching — an adjacent
    *transposition* also costs 1 (Damerau/OSA variant).
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    rows = [list(range(len(b) + 1))]
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            best = min(rows[i - 1][j] + 1, current[j - 1] + 1, rows[i - 1][j - 1] + cost)
            if i > 1 and j > 1 and ca == b[j - 2] and a[i - 2] == cb:
                best = min(best, rows[i - 2][j - 2] + 1)
            current.append(best)
        rows.append(current)
    return rows[-1][-1]


def edit_similarity(a: str, b: str) -> float:
    """Normalized edit similarity in [0, 1]."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def trigrams(text: str) -> Set[str]:
    """Character trigrams of ``text`` with boundary padding."""
    padded = f"  {text.lower()} "
    return {padded[i : i + 3] for i in range(len(padded) - 2)}


def trigram_similarity(a: str, b: str) -> float:
    """Jaccard similarity of character trigram sets."""
    ta, tb = trigrams(a), trigrams(b)
    if not ta and not tb:
        return 1.0
    return len(ta & tb) / len(ta | tb)


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two token sets."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)


def prefix_bonus(a: str, b: str) -> float:
    """Small boost when one string prefixes the other (``sal`` ~ ``salary``)."""
    a, b = a.lower(), b.lower()
    if not a or not b:
        return 0.0
    if a.startswith(b) or b.startswith(a):
        return min(len(a), len(b)) / max(len(a), len(b))
    return 0.0


@memoize("nlp.similarity", maxsize=65536)
def string_similarity(a: str, b: str) -> float:
    """Blended string similarity in [0, 1].

    Exact match scores 1.0; otherwise a weighted mix of edit and trigram
    similarity with a prefix bonus, which behaves well on both short
    column names and longer values.  Memoized process-wide: a pure
    function of its arguments, called in the matcher's inner loop.
    """
    a_l, b_l = a.lower().strip(), b.lower().strip()
    if a_l == b_l:
        return 1.0
    edit = edit_similarity(a_l, b_l)
    blended = 0.5 * edit + 0.4 * trigram_similarity(a_l, b_l) + 0.1 * prefix_bonus(a_l, b_l)
    # Near-miss typos (1-2 edits) should stay strong even when trigram
    # overlap collapses, so the edit channel alone can carry the score.
    return min(max(blended, 0.9 * edit), 0.99)
