"""Natural-language processing substrate.

Everything the surveyed NLIDB systems need from NLP, self-contained:

- :mod:`~repro.nlp.tokenizer` — tokens with spans, quoted-phrase support.
- :mod:`~repro.nlp.stopwords` — NLIDB-aware stopword list.
- :mod:`~repro.nlp.lemmatizer` — rule-based lemmas.
- :mod:`~repro.nlp.pos` — rule-based POS tagging.
- :mod:`~repro.nlp.parser` — chunking dependency parser (NaLIR-style
  parse trees).
- :mod:`~repro.nlp.similarity` / :mod:`~repro.nlp.thesaurus` /
  :mod:`~repro.nlp.matching` — string, synonym and Wu–Palmer similarity,
  blended into one ``term_similarity``.
- :mod:`~repro.nlp.embeddings` — deterministic hashed embeddings and
  PPMI+SVD co-occurrence embeddings (numpy).
- :mod:`~repro.nlp.patterns` — detectors for aggregation / group-by /
  comparison / limit / negation cues.
- :mod:`~repro.nlp.numbers` — number-word and ordinal parsing.
"""

from .embeddings import CooccurrenceEmbeddings, HashedEmbeddings, cosine
from .lemmatizer import lemmatize, lemmas_equal
from .matching import phrase_similarity, term_similarity
from .numbers import ordinal_to_number, parse_number, word_to_number
from .parser import ParseNode, ParseTree, parse, parse_tokens
from .patterns import (
    PatternMatch,
    aggregation_of,
    detect_patterns,
    detect_text,
    has_group_by,
)
from .pos import tag, tag_text
from .similarity import (
    edit_similarity,
    jaccard,
    levenshtein,
    string_similarity,
    trigram_similarity,
)
from .stopwords import STOPWORDS, content_words, is_stopword
from .thesaurus import DEFAULT_THESAURUS, Thesaurus, are_synonyms, synonyms, wup_similarity
from .tokenizer import Token, detokenize, tokenize, words

__all__ = [
    "Token", "tokenize", "words", "detokenize",
    "STOPWORDS", "is_stopword", "content_words",
    "lemmatize", "lemmas_equal",
    "tag", "tag_text",
    "ParseNode", "ParseTree", "parse", "parse_tokens",
    "levenshtein", "edit_similarity", "trigram_similarity", "jaccard",
    "string_similarity",
    "Thesaurus", "DEFAULT_THESAURUS", "synonyms", "are_synonyms", "wup_similarity",
    "term_similarity", "phrase_similarity",
    "HashedEmbeddings", "CooccurrenceEmbeddings", "cosine",
    "PatternMatch", "detect_patterns", "detect_text", "aggregation_of", "has_group_by",
    "parse_number", "word_to_number", "ordinal_to_number",
]
