"""Built-in thesaurus: synonym sets and a small IS-A taxonomy.

This stands in for WordNet in NaLIR's node-mapping step [30-32] and for
the domain vocabularies entity-based systems consume (§4.1).  Two
services are provided:

- synonym lookup (``synonyms("salary")`` → {"pay", "wage", ...}), and
- Wu–Palmer similarity [58] over the taxonomy, the same measure NaLIR
  uses to score mappings from parse-tree nodes to schema elements.

Domains can extend both at runtime — the ontology layer injects its own
vocabulary when a database declares synonyms.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.perf.cache import MISSING, LRUCache, stats_for

from .lemmatizer import lemmatize

# Synonym rings: every word in a ring is a synonym of every other.
_SYNONYM_RINGS: List[Set[str]] = [
    {"salary", "pay", "wage", "compensation", "earnings", "income"},
    {"employee", "worker", "staff", "personnel"},
    {"department", "division", "unit", "dept"},
    {"company", "firm", "corporation", "business", "employer"},
    {"customer", "client", "buyer", "shopper", "purchaser"},
    {"product", "item", "goods", "merchandise", "article"},
    {"order", "purchase", "transaction"},
    {"price", "cost", "amount", "value", "charge"},
    {"revenue", "sales", "turnover", "proceeds"},
    {"profit", "gain", "margin"},
    {"quantity", "count", "number", "amount"},
    {"city", "town", "municipality"},
    {"country", "nation", "state"},
    {"doctor", "physician", "clinician", "practitioner"},
    {"patient", "case"},
    {"disease", "illness", "condition", "disorder", "ailment"},
    {"drug", "medication", "medicine", "prescription", "pharmaceutical"},
    {"hospital", "clinic", "facility"},
    {"movie", "film", "picture", "feature"},
    {"director", "filmmaker"},
    {"actor", "performer", "star", "cast"},
    {"rating", "score", "grade"},
    {"year", "yr"},
    {"date", "day", "time"},
    {"name", "title", "label"},
    {"big", "large", "huge", "major"},
    {"small", "little", "minor", "tiny"},
    {"average", "mean", "typical"},
    {"total", "sum", "overall", "aggregate", "combined"},
    {"maximum", "max", "largest", "highest", "greatest", "biggest", "most"},
    {"minimum", "min", "smallest", "lowest", "least", "fewest"},
    {"show", "display", "list", "give", "find", "get", "return"},
    {"make", "manufacture", "produce", "build"},
    {"buy", "purchase", "acquire"},
    {"branch", "office", "location", "outlet", "store", "shop"},
    {"manager", "supervisor", "boss", "head", "lead"},
    {"teacher", "instructor", "professor", "lecturer"},
    {"student", "pupil", "learner"},
    {"grade", "mark", "score"},
    {"author", "writer"},
    {"song", "track", "tune"},
    {"genre", "category", "type", "kind", "class"},
    {"age", "years"},
    {"live", "reside", "stay", "dwell"},
    {"work", "serve"},
    {"earn", "make", "receive", "get"},
]

# IS-A edges (child -> parent) forming a small concept taxonomy.
_HYPERNYMS: Dict[str, str] = {
    "employee": "person",
    "manager": "employee",
    "customer": "person",
    "doctor": "person",
    "patient": "person",
    "teacher": "person",
    "student": "person",
    "actor": "person",
    "director": "person",
    "author": "person",
    "person": "entity",
    "company": "organization",
    "department": "organization",
    "hospital": "organization",
    "branch": "organization",
    "school": "organization",
    "organization": "entity",
    "product": "artifact",
    "drug": "artifact",
    "movie": "artifact",
    "song": "artifact",
    "book": "artifact",
    "artifact": "entity",
    "order": "event",
    "transaction": "event",
    "visit": "event",
    "admission": "event",
    "event": "entity",
    "salary": "money",
    "price": "money",
    "revenue": "money",
    "profit": "money",
    "budget": "money",
    "money": "quantity",
    "quantity": "attribute",
    "rating": "attribute",
    "age": "attribute",
    "attribute": "entity",
    "city": "place",
    "country": "place",
    "region": "place",
    "place": "entity",
    "disease": "condition",
    "condition": "state",
    "state": "entity",
}

_ROOT = "entity"


class Thesaurus:
    """Synonym + taxonomy service with runtime extension.

    Synonymy is *one-hop*: two words are synonyms when they share at
    least one declared ring, not when a chain of rings connects them.
    Transitive merging would let domain-schema synonyms (``amount`` ↔
    ``sum``) collapse unrelated rings (``sum`` ↔ ``total``) into one
    giant equivalence class — precisely the over-generalization the
    survey warns domain vocabularies against.
    """

    def __init__(self):
        self._rings: List[Set[str]] = []
        self._syn_index: Dict[str, List[int]] = {}
        for ring in _SYNONYM_RINGS:
            self._add_ring(set(ring))
        self._hypernyms: Dict[str, str] = dict(_HYPERNYMS)
        self._init_memos()

    def _init_memos(self) -> None:
        # Similarity lookups are the matcher's inner loop (thousands of
        # (question word, schema term) pairs per query); both memos are
        # pure functions of the thesaurus contents, so any mutation
        # clears them.  Stats aggregate process-wide under one name.
        stats = stats_for("nlp.thesaurus")
        self._syn_memo = LRUCache(maxsize=16384, stats=stats)
        self._wup_memo = LRUCache(maxsize=16384, stats=stats)
        self._ring_lemmas: Optional[List[Set[str]]] = None

    def _invalidate_memos(self) -> None:
        self._syn_memo.clear()
        self._wup_memo.clear()
        self._ring_lemmas = None

    def copy(self) -> "Thesaurus":
        """An independent clone; mutating it never touches the original.

        Used copy-on-write by ``NLIDBContext`` so schema-declared
        synonyms stay private to the context that registered them.
        """
        clone = Thesaurus.__new__(Thesaurus)
        clone._rings = [set(ring) for ring in self._rings]
        clone._syn_index = {w: list(ids) for w, ids in self._syn_index.items()}
        clone._hypernyms = dict(self._hypernyms)
        clone._init_memos()
        return clone

    def _add_ring(self, ring: Set[str]) -> None:
        ring = {w.lower() for w in ring}
        index = len(self._rings)
        self._rings.append(ring)
        for word in ring:
            self._syn_index.setdefault(word, []).append(index)

    def add_synonyms(self, words: Iterable[str]) -> None:
        """Declare all ``words`` mutual synonyms (a new ring; existing
        rings are left untouched — synonymy stays one-hop)."""
        self._add_ring(set(words))
        self._invalidate_memos()

    def add_hypernym(self, child: str, parent: str) -> None:
        """Add an IS-A edge ``child -> parent`` to the taxonomy."""
        self._hypernyms[child.lower()] = parent.lower()
        self._invalidate_memos()

    def synonyms(self, word: str) -> Set[str]:
        """All synonyms of ``word`` (including itself), lemma-aware."""
        w = word.lower()
        ring_ids = self._syn_index.get(w)
        if ring_ids is None:
            ring_ids = self._syn_index.get(lemmatize(w), [])
        out = {w}
        for ring_id in ring_ids:
            out |= self._rings[ring_id]
        return out

    def are_synonyms(self, a: str, b: str) -> bool:
        """Whether two words share a synonym ring (or a lemma)."""
        key = (a, b)
        cached = self._syn_memo.get(key, MISSING)
        if cached is not MISSING:
            return cached
        verdict = self._are_synonyms_impl(a, b)
        self._syn_memo.put(key, verdict)
        return verdict

    def _are_synonyms_impl(self, a: str, b: str) -> bool:
        a_l, b_l = a.lower(), b.lower()
        if a_l == b_l or lemmatize(a_l) == lemmatize(b_l):
            return True
        return lemmatize(b_l) in {lemmatize(s) for s in self.synonyms(a_l)}

    # -- index-side expansion -------------------------------------------------

    def _ring_lemma_sets(self) -> List[Set[str]]:
        """Lemma sets of every ring, cached until the next mutation."""
        cached = self._ring_lemmas
        if cached is None or len(cached) != len(self._rings):
            cached = [{lemmatize(w) for w in ring} for ring in self._rings]
            self._ring_lemmas = cached
        return cached

    def ring_mates(self, term: str) -> Set[str]:
        """Every word whose synonym lookup can reach ``term``.

        Inverted-index construction helper (see
        :mod:`repro.core.schema_index`): ``are_synonyms(q, term)`` holds
        only when ``q`` (or its lemma) is a member of a ring whose lemma
        set contains ``lemmatize(term)``.  The raw members of those
        rings, plus the lemma itself, are therefore a complete key set
        for the synonym channel — any question word that can score 0.95
        against ``term`` maps onto one of these keys.
        """
        lemma = lemmatize(term.lower())
        out: Set[str] = {lemma}
        for ring, lemmas in zip(self._rings, self._ring_lemma_sets()):
            if lemma in lemmas:
                out |= ring
        return out

    def taxonomy_mates(self, term: str, min_wup: float) -> Set[str]:
        """Every word whose Wu–Palmer similarity with ``term`` can reach
        ``min_wup`` through the taxonomy channel.

        A question word only gets a nonzero wup score when its canonical
        form sits in the taxonomy (otherwise both ancestry chains meet at
        the root and the depth guard zeroes the score) or trivially
        equals ``term``'s canonical form.  Enumerating the taxonomy's
        nodes with ``wup >= min_wup`` against ``term`` and expanding each
        qualifying node through the synonym rings that canonicalize to it
        yields a complete, conservative key set.
        """
        ct = self._canonical(term)
        nodes = set(self._hypernyms) | set(self._hypernyms.values()) | {_ROOT}
        nodes.add(ct)
        lemma_sets = self._ring_lemma_sets()
        out: Set[str] = set()
        for node in nodes:
            if self._wup_canonical(node, ct) < min_wup:
                continue
            out.add(node)
            for ring, lemmas in zip(self._rings, lemma_sets):
                if node in lemmas:
                    out |= ring
        return out

    # -- taxonomy -----------------------------------------------------------

    def _ancestry(self, word: str) -> List[str]:
        chain = [word]
        seen = {word}
        current = word
        while current in self._hypernyms:
            current = self._hypernyms[current]
            if current in seen:  # defensive: no cycles
                break
            seen.add(current)
            chain.append(current)
        if chain[-1] != _ROOT:
            chain.append(_ROOT)
        return chain

    def _canonical(self, word: str) -> str:
        w = lemmatize(word.lower())
        if w in self._hypernyms or w == _ROOT:
            return w
        for syn in self.synonyms(w):
            s = lemmatize(syn)
            if s in self._hypernyms:
                return s
        return w

    def wup_similarity(self, a: str, b: str) -> float:
        """Wu–Palmer similarity in (0, 1]; 1.0 for synonyms.

        ``wup = 2 * depth(lcs) / (depth(a) + depth(b))`` with depth
        counted from the taxonomy root.  Words outside the taxonomy get
        0.0 unless they are synonyms.
        """
        key = (a, b)
        cached = self._wup_memo.get(key, MISSING)
        if cached is not MISSING:
            return cached
        score = self._wup_impl(a, b)
        self._wup_memo.put(key, score)
        return score

    def _wup_impl(self, a: str, b: str) -> float:
        if self.are_synonyms(a, b):
            return 1.0
        return self._wup_canonical(self._canonical(a), self._canonical(b))

    def _wup_canonical(self, ca: str, cb: str) -> float:
        """Wu–Palmer over two already-canonicalized taxonomy terms.

        Shared by :meth:`wup_similarity` and the schema index's
        taxonomy-mates enumeration, so the index's notion of "reachable
        through the taxonomy" is the scoring math itself, not a copy.
        """
        if ca == cb:
            return 1.0
        chain_a = self._ancestry(ca)
        chain_b = self._ancestry(cb)
        if len(chain_a) == 1 and chain_a[0] == _ROOT and ca != _ROOT:
            return 0.0
        set_b = {node: i for i, node in enumerate(chain_b)}
        for i, node in enumerate(chain_a):
            if node in set_b:
                # depth counted from the root (root depth = 1)
                d_lcs = len(chain_a) - i
                d_a = len(chain_a)
                d_b = len(chain_b)
                # only count if either side actually sits in the taxonomy
                if d_lcs <= 1 and (ca not in self._hypernyms or cb not in self._hypernyms):
                    return 0.0
                return 2.0 * d_lcs / (d_a + d_b)
        return 0.0


# Module-level default instance used across the library.
DEFAULT_THESAURUS = Thesaurus()


def synonyms(word: str) -> Set[str]:
    """Synonyms of ``word`` from the default thesaurus."""
    return DEFAULT_THESAURUS.synonyms(word)


def are_synonyms(a: str, b: str) -> bool:
    """Synonym test on the default thesaurus."""
    return DEFAULT_THESAURUS.are_synonyms(a, b)


def wup_similarity(a: str, b: str) -> float:
    """Wu–Palmer similarity on the default thesaurus."""
    return DEFAULT_THESAURUS.wup_similarity(a, b)
