"""Closed-class word lists and POS lexicon for the rule-based tagger.

The tag set is a compact subset of Penn Treebank tags sufficient for the
NaLIR-style parse analysis the survey describes (§4.1):

``DT`` determiner, ``IN`` preposition, ``CC`` conjunction, ``PRP``
pronoun, ``WP``/``WRB`` wh-words, ``VB`` verb, ``MD`` modal, ``NN`` noun,
``NNS`` plural noun, ``JJ`` adjective, ``JJR`` comparative, ``JJS``
superlative, ``RB`` adverb, ``CD`` number, ``SYM`` punctuation/symbol.
"""

from __future__ import annotations

DETERMINERS = frozenset("a an the this that these those each every all any some no".split())

PREPOSITIONS = frozenset(
    """
    of in on at to from into onto with without within by per for between
    over under above below after before during since until through across
    against about
    """.split()
)

CONJUNCTIONS = frozenset("and or but nor".split())

PRONOUNS = frozenset("i you he she it we they me him her us them".split())

WH_PRONOUNS = frozenset("what which who whom whose".split())

WH_ADVERBS = frozenset("where when why how".split())

MODALS = frozenset("will would shall should may might can could must".split())

AUX_VERBS = frozenset("is are was were be been being am do does did have has had".split())

COMMON_VERBS = frozenset(
    """
    show list find give get display return tell count earn work live make
    sell buy pay cost order ship manage belong contain include exceed
    average compare rank sort group filter play direct act release star
    treat diagnose prescribe visit admit supply produce employ hire
    """.split()
)

COMPARATIVES = frozenset(
    "more less greater fewer higher lower larger smaller older younger newer "
    "bigger earlier later longer shorter cheaper".split()
)

SUPERLATIVES = frozenset(
    "most least highest lowest largest smallest oldest youngest newest biggest "
    "earliest latest longest shortest cheapest best worst top bottom maximum minimum".split()
)

ADVERBS = frozenset("not only also very too just at_least at_most".split())

ADJECTIVES = frozenset(
    """
    total average minimum maximum distinct different recent new old big small
    high low good bad male female active inactive open closed same current
    """.split()
)

NEGATIONS = frozenset("not no never without except excluding".split())
