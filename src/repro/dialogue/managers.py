"""Dialogue management: finite-state, frame-based and agent-based (§5).

The survey contrasts three approaches: rule-based finite-state systems
("simple to construct ... but restrict user input to predetermined words
and phrases"), frame-based systems ("enable the user to provide more
information than required by the system's question"), and agent-based
systems ("statistical models trained on corpora ... the most flexible
form of dialogue management, and hence suitable for iterative data
exploration").

All three implement the same :class:`DialogueManager` protocol — given
the current state and an utterance, decide the next
:class:`DialogueAction` — so experiment E12's ablations can swap them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nlp.tokenizer import words

from .state import DialogueState


@dataclass(frozen=True)
class DialogueAction:
    """What the manager wants to do next.

    ``kind`` ∈ {``answer``, ``ask_slot``, ``clarify``, ``reject``,
    ``reset``}; ``payload`` carries the slot name or prompt text.
    """

    kind: str
    payload: str = ""
    prompt: str = ""


class DialogueManager(abc.ABC):
    """Chooses the next dialogue action."""

    name = "manager"

    @abc.abstractmethod
    def decide(self, state: DialogueState, utterance: str) -> DialogueAction:
        """Decide how to respond to ``utterance`` given ``state``."""


# --------------------------------------------------------------------------
# Finite-state
# --------------------------------------------------------------------------


@dataclass
class FSMTransition:
    """One allowed transition: keywords that move the machine along."""

    source: str
    target: str
    keywords: Tuple[str, ...]
    action: DialogueAction


class FiniteStateManager(DialogueManager):
    """A fixed state graph; input must contain the expected keywords.

    Faithful to the rule-based systems [35, 37]: robust inside the
    script, lost outside it — utterances matching no outgoing transition
    are rejected.
    """

    name = "finite-state"

    def __init__(self, start: str = "start"):
        self.state_name = start
        self.transitions: List[FSMTransition] = []

    def add_transition(
        self, source: str, target: str, keywords: Sequence[str], action: DialogueAction
    ) -> None:
        """Declare an edge of the dialogue graph."""
        self.transitions.append(
            FSMTransition(source, target, tuple(k.lower() for k in keywords), action)
        )

    def decide(self, state: DialogueState, utterance: str) -> DialogueAction:
        tokens = set(words(utterance))
        for transition in self.transitions:
            if transition.source != self.state_name:
                continue
            if all(k in tokens for k in transition.keywords):
                self.state_name = transition.target
                return transition.action
        return DialogueAction("reject", prompt="Sorry, I did not understand that.")


# --------------------------------------------------------------------------
# Frame-based
# --------------------------------------------------------------------------


@dataclass
class FrameSlot:
    """A required piece of information with its extraction function."""

    name: str
    prompt: str
    extractor: Callable[[str], Optional[str]]
    value: Optional[str] = None


class FrameManager(DialogueManager):
    """Slot filling with over-answering.

    Every utterance is run through *all* empty slots' extractors — the
    frame-based property that "the user [may] provide more information
    than required by the system's question" [13, 19, 21].  When slots
    remain, the manager asks for the first missing one; when the frame is
    complete it answers.
    """

    name = "frame"

    def __init__(self, slots: Sequence[FrameSlot]):
        self.slots = list(slots)

    def decide(self, state: DialogueState, utterance: str) -> DialogueAction:
        for slot in self.slots:
            if slot.value is None:
                extracted = slot.extractor(utterance)
                if extracted is not None:
                    slot.value = extracted
        missing = [s for s in self.slots if s.value is None]
        if missing:
            return DialogueAction("ask_slot", payload=missing[0].name, prompt=missing[0].prompt)
        return DialogueAction("answer")

    def values(self) -> Dict[str, str]:
        """Filled slot values."""
        return {s.name: s.value for s in self.slots if s.value is not None}

    def reset(self) -> None:
        """Clear all slots."""
        for slot in self.slots:
            slot.value = None


# --------------------------------------------------------------------------
# Agent-based (statistical)
# --------------------------------------------------------------------------


class AgentManager(DialogueManager):
    """Statistical policy over dialogue acts [14, 40, 60].

    A softmax policy over hand-countable state features, trained on a
    corpus of (state-features, correct action) pairs — the scaled-down
    analogue of POMDP policies "trained on corpora of real human computer
    dialogue".  Unlike the FSM it accepts any input; unlike frames it can
    decide to clarify, answer, or hand control to the user drill-down.
    """

    name = "agent"

    ACTIONS = ("answer", "ask_slot", "clarify", "reset")

    def __init__(self, seed: int = 0):
        from repro.systems.neural.nn import MLPClassifier

        self._clf = MLPClassifier(6, len(self.ACTIONS), hidden=16, seed=seed)
        self.trained = False

    @staticmethod
    def featurize(state: DialogueState, utterance: str) -> np.ndarray:
        """Dialogue-act features: coverage, ambiguity, history length."""
        tokens = words(utterance)
        return np.array(
            [
                min(len(tokens) / 12.0, 1.0),
                1.0 if state.current_query is not None else 0.0,
                min(state.turn_count / 6.0, 1.0),
                1.0 if state.pending_clarification is not None else 0.0,
                1.0 if any(w in ("start", "restart", "reset", "over") for w in tokens) else 0.0,
                1.0 if any(w in ("which", "what", "did", "mean") for w in tokens) else 0.0,
            ]
        )

    def fit(self, corpus: Sequence[Tuple[np.ndarray, str]]) -> "AgentManager":
        """Train on (features, action-name) pairs."""
        xs = np.stack([f for f, _ in corpus])
        ys = np.array([self.ACTIONS.index(a) for _, a in corpus])
        self._clf.fit(xs, ys, epochs=60)
        self.trained = True
        return self

    def decide(self, state: DialogueState, utterance: str) -> DialogueAction:
        if not self.trained:
            return DialogueAction("answer")
        features = self.featurize(state, utterance)
        action = self.ACTIONS[int(self._clf.predict(features)[0])]
        return DialogueAction(action)
