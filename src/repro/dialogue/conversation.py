"""The conversational NLIDB: §5's extension of one-shot querying.

Ties the dialogue pieces together into a data-exploration chatbot:

- fresh questions go through an entity-based interpreter (ATHENA-style),
- elliptical follow-ups are resolved by *editing* the previous query
  (:class:`~repro.dialogue.followup.FollowupResolver`, per [67]),
- ambiguity can be routed through clarification
  (:class:`~repro.dialogue.clarify.ClarifyingSystem`, per [22]),
- intents are classified with ontology-bootstrapped artifacts ([42]),
- everything is recorded in a :class:`~repro.dialogue.state.DialogueState`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.intermediate import compile_oql
from repro.core.pipeline import NLIDBContext, NLIDBSystem
from repro.systems.ontology_athena import AthenaSystem

from .bootstrap import bootstrap_artifacts
from .followup import FollowupResolver
from .intents import IntentClassifier
from .state import DialogueState, Turn


class ConversationalNLIDB:
    """A multi-turn natural-language interface over one database."""

    def __init__(
        self,
        context: NLIDBContext,
        base_system: Optional[NLIDBSystem] = None,
        use_intents: bool = True,
        clarify_user=None,
        max_clarification_rounds: int = 2,
    ):
        self.context = context
        self.base_system = base_system or AthenaSystem()
        if clarify_user is not None:
            from .clarify import ClarifyingSystem

            self.base_system = ClarifyingSystem(
                self.base_system,
                user=clarify_user,
                max_rounds=max_clarification_rounds,
            )
        self.resolver = FollowupResolver()
        self.state = DialogueState()
        self.intent_classifier: Optional[IntentClassifier] = None
        if use_intents:
            artifacts = bootstrap_artifacts(context)
            if artifacts.intents:
                self.intent_classifier = IntentClassifier().fit(artifacts.intents)

    # -- main entry -------------------------------------------------------------

    RESET_PHRASES = ("start over", "start again", "reset", "never mind", "forget it", "new question")

    def ask(self, utterance: str) -> Turn:
        """Process one user turn end to end."""
        turn = Turn(utterance=utterance)
        lowered = utterance.lower().strip()
        if any(lowered.startswith(p) or lowered == p for p in self.RESET_PHRASES):
            self.reset()
            turn.intent = "reset"
            turn.response = "Okay, starting fresh — what would you like to know?"
            return turn
        if self.intent_classifier is not None:
            intent, _ = self.intent_classifier.classify(utterance)
            turn.intent = intent or ""

        edited, move = self.resolver.resolve(
            utterance, self.state.last_query(), self.context
        )
        if edited is not None:
            turn.query = edited
            turn.intent = move  # the follow-up move is the real intent
        else:
            interpretations = self.base_system.interpret(utterance, self.context)
            if interpretations:
                top = max(interpretations, key=lambda i: i.confidence)
                turn.query = top.oql
                if turn.query is None:
                    # Neural systems return raw SQL; keep it for execution.
                    turn.sql = top.to_sql().to_sql()

        self._execute(turn)
        self.state.record(turn)
        return turn

    def _execute(self, turn: Turn) -> None:
        try:
            if turn.query is not None:
                stmt = compile_oql(turn.query, self.context.ontology, self.context.mapping)
                turn.sql = stmt.to_sql()
                result = self.context.executor.execute(stmt)
            elif turn.sql:
                result = self.context.executor.execute_sql(turn.sql)
            else:
                turn.response = "I could not interpret that — could you rephrase?"
                return
        except Exception as exc:
            turn.response = f"That query failed: {exc}"
            return
        turn.result_rows = len(result)
        preview = result.to_text(max_rows=5)
        turn.response = f"{len(result)} row(s):\n{preview}"

    def reset(self) -> None:
        """Start a fresh conversation."""
        self.state.reset()
