"""Ontology-driven conversation bootstrap (Quamar et al. [42], §5).

"Ontologies provide a powerful abstraction for representing domain
knowledge ... This can be used to bootstrap conversation systems to
minimize the required manual labor."  Quamar et al. "demonstrate the
effectiveness of capturing patterns in the expected workload, mapping
these patterns against the domain ontology to generate artifacts (i.e.,
intents, training examples, entities), and supporting dialogue."

:func:`bootstrap_artifacts` is that generator: given an ontology (plus
the database for entity values), it emits

- one intent per workload pattern × concept (lookup / filter / count /
  aggregate / relate),
- training utterances instantiated from the ontology vocabulary
  (names *and synonyms* — the linguistic-variability infusion §5 notes),
- entity dictionaries (concept → known values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.pipeline import NLIDBContext
from repro.ontology.builder import pluralize
from repro.sqldb.types import DataType

from .intents import Intent


@dataclass
class ConversationArtifacts:
    """Everything needed to instantiate a conversational interface."""

    intents: List[Intent] = field(default_factory=list)
    entities: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def training_examples(self) -> int:
        """Total generated utterances across intents."""
        return sum(len(i.examples) for i in self.intents)


def bootstrap_artifacts(
    context: NLIDBContext,
    max_values_per_entity: int = 30,
    use_synonyms: bool = True,
) -> ConversationArtifacts:
    """Generate intents, training examples and entity lists from the
    ontology and data of ``context``.

    ``use_synonyms=False`` is the E12 ablation: without the ontology's
    vocabulary the training examples lose linguistic variability and
    intent accuracy on paraphrased user input drops.
    """
    ontology = context.ontology
    artifacts = ConversationArtifacts()

    for concept in ontology.concepts.values():
        names = [concept.name]
        if use_synonyms:
            names.extend(s for s in concept.synonyms)
        plural_forms = [pluralize(n) for n in names]
        text_props = [
            p for p in concept.properties.values() if p.dtype is DataType.TEXT
        ]
        numeric_props = [
            p for p in concept.properties.values() if p.dtype.is_numeric and p.name != "id"
        ]

        lookup = Intent(
            f"lookup_{_slug(concept.name)}",
            description=f"List or show {pluralize(concept.name)}",
        )
        for plural in plural_forms:
            lookup.add_example(f"show me all {plural}")
            lookup.add_example(f"list the {plural}")
            lookup.add_example(f"what {plural} are there")
        artifacts.intents.append(lookup)

        if text_props:
            filter_intent = Intent(
                f"filter_{_slug(concept.name)}",
                description=f"Filter {pluralize(concept.name)} by an attribute",
            )
            for prop in text_props[:3]:
                prop_names = [prop.name] + (list(prop.synonyms) if use_synonyms else [])
                for pname in prop_names:
                    for plural in plural_forms[:2]:
                        filter_intent.add_example(f"show {plural} with {pname} X")
                        filter_intent.add_example(f"which {plural} have {pname} X")
            artifacts.intents.append(filter_intent)

        count_intent = Intent(
            f"count_{_slug(concept.name)}",
            description=f"Count {pluralize(concept.name)}",
        )
        for plural in plural_forms:
            count_intent.add_example(f"how many {plural} are there")
            count_intent.add_example(f"number of {plural}")
            count_intent.add_example(f"count the {plural}")
        artifacts.intents.append(count_intent)

        if numeric_props:
            agg_intent = Intent(
                f"aggregate_{_slug(concept.name)}",
                description=f"Aggregate a measure of {pluralize(concept.name)}",
            )
            for prop in numeric_props[:3]:
                prop_names = [prop.name] + (list(prop.synonyms) if use_synonyms else [])
                for pname in prop_names[:3]:
                    for plural in plural_forms[:2]:
                        agg_intent.add_example(f"what is the average {pname} of {plural}")
                        agg_intent.add_example(f"total {pname} of {plural}")
                        agg_intent.add_example(f"highest {pname} among {plural}")
            artifacts.intents.append(agg_intent)

        # entity dictionary: known values of the concept's text properties
        values: List[str] = []
        table = context.mapping.table_of(concept.name)
        for prop in text_props:
            _, column = context.mapping.column_of(concept.name, prop.name)
            values.extend(
                str(v)
                for v in context.database.table(table).distinct_values(column)[
                    :max_values_per_entity
                ]
            )
        if values:
            artifacts.entities[concept.name] = values[:max_values_per_entity]

    for relation in ontology.relations:
        relate = Intent(
            f"relate_{_slug(relation.src)}_{_slug(relation.dst)}",
            description=f"Navigate from {relation.src} to {relation.dst}",
        )
        src_plural = pluralize(relation.src)
        dst_plural = pluralize(relation.dst)
        relate.add_example(f"which {src_plural} have {dst_plural}")
        relate.add_example(f"show the {dst_plural} of each {relation.src}")
        relate.add_example(f"{src_plural} and their {dst_plural}")
        artifacts.intents.append(relate)

    return artifacts


def _slug(name: str) -> str:
    return name.lower().replace(" ", "_")
