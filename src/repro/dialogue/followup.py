"""Follow-up resolution: edit the previous query instead of restating it.

Zhang et al. [67] "propose SQL query generation by editing the query in
the previous turn ... This sequence editing mechanism models token-level
changes and is thus robust to error propagation."  At the OQL level the
same idea becomes structural edits; :class:`FollowupResolver` recognizes
the follow-up move expressed by an utterance and applies it to the
previous turn's query:

- ``change_value`` — "what about Paris" (swap a filter value),
- ``add_filter`` — "only the ones with price over 100",
- ``group_swap`` — "break that down by region",
- ``agg_change`` — "make that the average" / "the maximum instead",
- ``top_k`` — "just the top 3",
- ``add_projection`` — "also show their city",
- ``new_query`` — anything that reads like a fresh question.

The resolver is deliberately rule-based — the survey's point (§5) is the
*capability* of context carry-over; E7 measures its value against
context-blind re-interpretation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.core.intermediate import (
    OQLCondition,
    OQLItem,
    OQLOrder,
    OQLQuery,
    PropertyRef,
)
from repro.core.pipeline import NLIDBContext

from repro.systems.base import EntityAnnotator

_FRESH_LEADS = ("show", "list", "what", "which", "how", "who", "give", "find", "count")
_FOLLOWUP_LEADS = (
    "what about", "how about", "and", "also", "only", "just", "instead",
    "break", "group", "sort", "order", "now", "same", "of those",
    "among those", "make",
)


class FollowupResolver:
    """Applies follow-up edits to the previous OQL query."""

    def __init__(self, annotator: Optional[EntityAnnotator] = None):
        self.annotator = annotator or EntityAnnotator(similarity_threshold=0.75)

    # -- move detection ---------------------------------------------------------

    def is_followup(self, utterance: str) -> bool:
        """Heuristic: does this utterance depend on previous context?"""
        lowered = utterance.lower().strip()
        if any(lowered.startswith(lead) for lead in _FOLLOWUP_LEADS):
            return True
        words = lowered.split()
        # Very short utterances ("by region", "the average?") are
        # elliptical by construction.
        if len(words) <= 3 and not lowered.startswith(_FRESH_LEADS):
            return True
        return False

    def resolve(
        self,
        utterance: str,
        previous: Optional[OQLQuery],
        context: NLIDBContext,
    ) -> Tuple[Optional[OQLQuery], str]:
        """Return (edited query, move name); (None, "new_query") when the
        utterance should be interpreted from scratch."""
        if previous is None or not self.is_followup(utterance):
            return None, "new_query"
        if not isinstance(previous, OQLQuery):
            # Compound (union) queries have no single conjunctive tree to
            # edit; follow-ups on them re-interpret from scratch.
            return None, "new_query"
        annotated = self.annotator.annotate(utterance, context)
        annotated = self._prefer_context_concepts(annotated, previous)
        tokens = annotated.tokens
        patterns = annotated.patterns
        lowered = utterance.lower()

        value_anns = annotated.annotations_of("value")
        prop_anns = annotated.annotations_of("property")
        limit_patterns = [p for p in patterns if p.kind == "limit"]
        group_patterns = [p for p in patterns if p.kind == "group_by"]
        agg_patterns = [p for p in patterns if p.kind in ("aggregation", "count")]
        comparison_patterns = [p for p in patterns if p.kind == "comparison"]

        if limit_patterns and not value_anns:
            return self._apply_topk(previous, limit_patterns[0], prop_anns, context), "top_k"
        if group_patterns and prop_anns:
            # the group key is the property mentioned AFTER the cue
            # ("group it by name" — not a cue word that happens to match
            # a column synonym)
            cue_end = group_patterns[-1].end
            after = [a for a in prop_anns if a.start >= cue_end]
            edited = self._apply_group_swap(previous, after or prop_anns, context)
            if edited is not None:
                return edited, "group_swap"
        if agg_patterns and not value_anns and not comparison_patterns:
            edited = self._apply_agg_change(previous, agg_patterns[0].value, prop_anns)
            if edited is not None:
                return edited, "agg_change"
        if comparison_patterns and not value_anns:
            edited = self._apply_numeric_filter(
                previous, tokens, comparison_patterns[0], prop_anns
            )
            if edited is not None:
                return edited, "add_filter"
        if value_anns:
            if lowered.startswith(("what about", "how about", "and for", "and in")):
                return self._apply_change_value(previous, value_anns), "change_value"
            return self._apply_add_filter(previous, value_anns), "add_filter"
        if prop_anns and any(w in lowered for w in ("also", "show", "add", "their")):
            return self._apply_add_projection(previous, prop_anns), "add_projection"
        return None, "new_query"

    def _prefer_context_concepts(self, annotated, previous: OQLQuery):
        """Re-map ambiguous annotations onto the previous query's concepts.

        An elliptical follow-up ("group it by name") names no concept, so
        the annotator cannot disambiguate "name"; the dialogue context can
        — the conversation is still about the previous query's entities.
        """
        context_concepts = set(previous.concepts())
        if not context_concepts:
            return annotated
        current = annotated
        for annotation in list(annotated.annotations):
            concept = None
            if annotation.kind == "property":
                concept = annotation.payload.concept
            elif annotation.kind == "value":
                concept = annotation.payload[0].concept
            if concept is None or concept in context_concepts:
                continue
            for alternative in annotated.alternatives_for(annotation, margin=0.4):
                alt_concept = None
                if alternative.kind == "property":
                    alt_concept = alternative.payload.concept
                elif alternative.kind == "value":
                    alt_concept = alternative.payload[0].concept
                if alt_concept in context_concepts:
                    current = current.replace(annotation, alternative)
                    break
        return current

    # -- edits -----------------------------------------------------------------

    def _apply_change_value(self, previous: OQLQuery, value_anns) -> OQLQuery:
        ref, value = value_anns[0].payload
        conditions = list(previous.conditions)
        replaced = False
        for i, cond in enumerate(conditions):
            if (
                isinstance(cond, OQLCondition)
                and cond.ref is not None
                and cond.ref.prop == ref.prop
                and cond.op == "="
            ):
                conditions[i] = replace(cond, ref=ref, value=value)
                replaced = True
                break
        if not replaced:
            conditions.append(OQLCondition(ref, "=", value))
        return replace(previous, conditions=tuple(conditions))

    def _apply_add_filter(self, previous: OQLQuery, value_anns) -> OQLQuery:
        ref, value = value_anns[0].payload
        condition = OQLCondition(ref, "=", value)
        if condition in previous.conditions:
            return previous
        return replace(previous, conditions=(*previous.conditions, condition))

    def _apply_numeric_filter(
        self, previous: OQLQuery, tokens, comparison, prop_anns
    ) -> Optional[OQLQuery]:
        number = None
        for token in tokens[comparison.end :]:
            if token.is_number:
                number = float(token.numeric_value)
                break
        if number is None or comparison.value not in (">", "<", ">=", "<="):
            return None
        ref = None
        for ann in prop_anns:

            ref = ann.payload
            break
        if ref is None:
            # fall back to the measure the previous query aggregates/orders
            ref = self._previous_measure(previous)
        if ref is None:
            return None
        condition = OQLCondition(ref, comparison.value, number)
        return replace(previous, conditions=(*previous.conditions, condition))

    def _apply_group_swap(
        self, previous: OQLQuery, prop_anns, context: NLIDBContext
    ) -> Optional[OQLQuery]:
        ref: PropertyRef = prop_anns[0].payload
        agg_items = tuple(
            item for item in previous.select if item.aggregate or item.count_all
        )
        if not agg_items:
            # grouping a plain listing means counting per group
            agg_items = (OQLItem(count_all=True, concept=previous.concepts()[0] if previous.concepts() else None),)
        select = (OQLItem(ref=ref), *agg_items)
        return replace(
            previous,
            select=select,
            group_by=(ref,),
            order_by=(),
            limit=None,
            distinct=False,
        )

    def _apply_agg_change(
        self, previous: OQLQuery, new_agg: str, prop_anns
    ) -> Optional[OQLQuery]:
        target: Optional[PropertyRef] = None
        if prop_anns:
            target = prop_anns[0].payload
        else:
            target = self._previous_measure(previous)
        if new_agg == "count":
            concept = previous.concepts()[0] if previous.concepts() else None
            new_item = OQLItem(count_all=True, concept=concept)
        else:
            if target is None:
                return None
            new_item = OQLItem(ref=target, aggregate=new_agg)
        select = list(previous.select)
        for i, item in enumerate(select):
            if item.aggregate or item.count_all:
                select[i] = new_item
                break
        else:
            select = [new_item]
            if previous.group_by:
                select = [OQLItem(ref=previous.group_by[0]), new_item]
        return replace(previous, select=tuple(select), distinct=False)

    def _apply_topk(
        self, previous: OQLQuery, limit_pattern, prop_anns, context: NLIDBContext
    ) -> OQLQuery:
        count_text, direction = limit_pattern.value.split(":")
        order_ref = None
        if prop_anns:
            order_ref = prop_anns[0].payload
        else:
            order_ref = self._previous_measure(previous)
        order_by = previous.order_by
        if order_ref is not None:
            agg = next(
                (i.aggregate for i in previous.select if i.ref == order_ref and i.aggregate),
                None,
            )
            order_by = (OQLOrder(OQLItem(ref=order_ref, aggregate=agg), direction),)
        elif previous.select and (previous.select[-1].aggregate or previous.select[-1].count_all):
            order_by = (OQLOrder(previous.select[-1], direction),)
        return replace(previous, order_by=order_by, limit=int(count_text))

    def _apply_add_projection(self, previous: OQLQuery, prop_anns) -> OQLQuery:
        ref = prop_anns[0].payload
        if any(item.ref == ref for item in previous.select):
            return previous
        return replace(previous, select=(*previous.select, OQLItem(ref=ref)))

    @staticmethod
    def _previous_measure(previous: OQLQuery) -> Optional[PropertyRef]:
        for item in previous.select:
            if item.aggregate and item.ref is not None:
                return item.ref
        for order in previous.order_by:
            if order.item.ref is not None:
                return order.item.ref
        for cond in previous.conditions:
            if isinstance(cond, OQLCondition) and cond.ref is not None and cond.op in (">", "<", ">=", "<="):
                return cond.ref
        return None
