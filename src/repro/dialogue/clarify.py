"""DialSQL-style clarification [22] (§4.2/§5).

DialSQL "is capable of identifying potential errors in a generated SQL
query and asking users for validation via simple multi-choice questions.
User feedback is then leveraged to revise the query."

:class:`ClarifyingSystem` wraps any entity-pipeline system (one exposing
``annotator`` + ``interpreter``):

1. interpret the question,
2. find *suspect* spans — evidence whose score is low or which has a
   close alternative candidate,
3. for each suspect (bounded by ``max_rounds``), pose a multi-choice
   :class:`~repro.core.feedback.ClarificationRequest`,
4. re-interpret with the user's choices substituted.

With a :class:`~repro.core.feedback.SimulatedOracle` as the user, E8
measures the accuracy gained per clarification round.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.feedback import (
    ClarificationOption,
    ClarificationRequest,
    ClarificationUser,
    FirstOptionUser,
)
from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext, NLIDBSystem


class ClarifyingSystem(NLIDBSystem):
    """Multi-choice error-repair wrapper around an entity system."""

    family = "hybrid"

    def __init__(
        self,
        base: NLIDBSystem,
        user: Optional[ClarificationUser] = None,
        max_rounds: int = 3,
        suspicion_threshold: float = 0.9,
        margin: float = 0.25,
        name: Optional[str] = None,
    ):
        if not hasattr(base, "annotator") or not hasattr(base, "interpreter"):
            raise TypeError("ClarifyingSystem needs an entity-pipeline system")
        self.base = base
        self.user = user or FirstOptionUser()
        self.max_rounds = max_rounds
        self.suspicion_threshold = suspicion_threshold
        self.margin = margin
        self.name = name or f"{base.name}+clarify"
        self.questions_asked = 0

    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        annotated = self.base.annotator.annotate(question, context)
        rounds = 0
        for annotation in list(annotated.annotations):
            if rounds >= self.max_rounds:
                break
            if annotation.kind not in ("property", "value", "concept"):
                continue
            alternatives = annotated.alternatives_for(annotation, margin=self.margin)
            suspicious = annotation.score < self.suspicion_threshold or alternatives
            if not suspicious:
                continue
            options = [ClarificationOption(annotation.describe(), annotation)]
            options.extend(
                ClarificationOption(alt.describe(), alt) for alt in alternatives[:3]
            )
            if len(options) < 2:
                continue
            span_text = " ".join(
                t.text for t in annotated.tokens[annotation.start : annotation.end]
            )
            request = ClarificationRequest(
                f"I interpreted {span_text!r} as {options[0].label}; is that right?",
                options,
                topic=span_text,
            )
            rounds += 1
            self.questions_asked += 1
            choice = self.user.choose(request)
            chosen = options[choice].payload
            if chosen != annotation:
                annotated = annotated.replace(annotation, chosen)
        return self.base.interpreter.interpret(annotated, context)
