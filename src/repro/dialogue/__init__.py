"""Extension to dialogue (§5 of the survey).

- :mod:`~repro.dialogue.state` — multi-turn context persistence.
- :mod:`~repro.dialogue.intents` — intents + trainable classifier.
- :mod:`~repro.dialogue.managers` — finite-state, frame-based and
  agent-based dialogue management.
- :mod:`~repro.dialogue.followup` — edit-based follow-up resolution [67].
- :mod:`~repro.dialogue.clarify` — DialSQL-style multi-choice repair [22].
- :mod:`~repro.dialogue.bootstrap` — ontology-driven artifact generation
  for conversational interfaces [42].
- :mod:`~repro.dialogue.conversation` — the assembled conversational
  NLIDB.
"""

from .bootstrap import ConversationArtifacts, bootstrap_artifacts
from .clarify import ClarifyingSystem
from .conversation import ConversationalNLIDB
from .followup import FollowupResolver
from .intents import Intent, IntentClassifier
from .managers import (
    AgentManager,
    DialogueAction,
    DialogueManager,
    FiniteStateManager,
    FrameManager,
    FrameSlot,
)
from .state import DialogueState, Turn

__all__ = [
    "DialogueState", "Turn",
    "Intent", "IntentClassifier",
    "DialogueManager", "DialogueAction", "FiniteStateManager",
    "FrameManager", "FrameSlot", "AgentManager",
    "FollowupResolver",
    "ClarifyingSystem",
    "ConversationArtifacts", "bootstrap_artifacts",
    "ConversationalNLIDB",
]
