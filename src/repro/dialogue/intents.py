"""Intents: goals expressed in user utterances (§5).

"The set of all possible interactions with a conversational interface is
defined in terms of three main components ... intents, entities, and
dialogue.  Intents are goals/actions that are expressed in the user
utterances."  :class:`IntentClassifier` is the trainable piece chatbot
platforms provide: given labeled example utterances per intent, classify
new utterances — here with embedding centroids plus a logistic layer,
which is faithful to the shallow classifiers those platforms run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nlp.embeddings import HashedEmbeddings, cosine
from repro.nlp.tokenizer import words
from repro.systems.neural.nn import MLPClassifier


@dataclass
class Intent:
    """One dialogue intent with its training utterances."""

    name: str
    examples: List[str] = field(default_factory=list)
    description: str = ""

    def add_example(self, utterance: str) -> None:
        """Attach a training utterance."""
        self.examples.append(utterance)


class IntentClassifier:
    """Centroid + MLP intent classifier over hashed embeddings."""

    def __init__(self, dim: int = 32, threshold: float = 0.25, seed: int = 0):
        self.dim = dim
        self.threshold = threshold
        self.seed = seed
        # Unsmoothed embeddings: a generic chatbot platform knows nothing
        # about the domain vocabulary — synonym coverage must come from
        # the *training examples* (which is exactly what the ontology
        # bootstrap of [42] provides, and what E12 measures).
        self.embeddings = HashedEmbeddings(dim, smooth=False)
        self.intents: List[Intent] = []
        self._centroids: Optional[np.ndarray] = None
        self._mlp: Optional[MLPClassifier] = None

    def _vector(self, utterance: str) -> np.ndarray:
        from repro.nlp.stopwords import content_words

        tokens = content_words(words(utterance)) or words(utterance)
        return self.embeddings.sentence_vector(tokens)

    def fit(self, intents: Sequence[Intent]) -> "IntentClassifier":
        """Train on the given intents' example utterances."""
        self.intents = [i for i in intents if i.examples]
        if not self.intents:
            raise ValueError("no intents with examples to train on")
        self._centroids = np.stack(
            [
                np.mean([self._vector(e) for e in intent.examples], axis=0)
                for intent in self.intents
            ]
        )
        xs, ys = [], []
        for idx, intent in enumerate(self.intents):
            for example in intent.examples:
                xs.append(self._features(self._vector(example)))
                ys.append(idx)
        self._mlp = MLPClassifier(
            self._centroids.shape[0] + self.dim,
            len(self.intents),
            hidden=24,
            seed=self.seed,
        )
        self._mlp.fit(np.array(xs), np.array(ys), epochs=40, seed=self.seed)
        return self

    def _features(self, vec: np.ndarray) -> np.ndarray:
        assert self._centroids is not None
        sims = np.array([cosine(vec, c) for c in self._centroids])
        return np.concatenate([sims, vec])

    def classify(self, utterance: str) -> Tuple[Optional[str], float]:
        """(intent name, confidence); (None, best) below the threshold."""
        if self._mlp is None or self._centroids is None:
            raise RuntimeError("call fit() first")
        vec = self._vector(utterance)
        probs = self._mlp.predict_proba(self._features(vec))[0]
        best = int(np.argmax(probs))
        confidence = float(probs[best])
        sims = [cosine(vec, c) for c in self._centroids]
        if max(sims) < self.threshold:
            return None, confidence
        return self.intents[best].name, confidence

    def accuracy(self, labeled: Sequence[Tuple[str, str]]) -> float:
        """Fraction of (utterance, gold intent) pairs classified right."""
        if not labeled:
            return 0.0
        hits = sum(
            1 for utterance, gold in labeled if self.classify(utterance)[0] == gold
        )
        return hits / len(labeled)
