"""Dialogue state: the persisted context of a conversation (§5).

The survey defines conversational interfaces by their ability to
"persist the context of conversation across multiple turns".
:class:`DialogueState` is that context: the turn history, the current
query (as OQL, so it can be edited), the entities in focus, and any
pending clarification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.feedback import ClarificationRequest
from repro.core.intermediate import OQLQuery, PropertyRef


@dataclass
class Turn:
    """One exchange: what the user said, what the system did."""

    utterance: str
    intent: str = ""
    query: Optional[OQLQuery] = None
    sql: str = ""
    result_rows: int = -1
    response: str = ""


@dataclass
class DialogueState:
    """Mutable conversation context."""

    turns: List[Turn] = field(default_factory=list)
    current_query: Optional[OQLQuery] = None
    focus_concept: Optional[str] = None
    focus_entities: List[Tuple[PropertyRef, Any]] = field(default_factory=list)
    pending_clarification: Optional[ClarificationRequest] = None

    @property
    def turn_count(self) -> int:
        """Number of completed turns."""
        return len(self.turns)

    def record(self, turn: Turn) -> None:
        """Append a completed turn and update the focus."""
        self.turns.append(turn)
        if turn.query is not None:
            self.current_query = turn.query
            concepts = turn.query.concepts()
            if concepts:
                self.focus_concept = concepts[0]

    def last_query(self) -> Optional[OQLQuery]:
        """The most recent successfully interpreted query."""
        return self.current_query

    def remember_entity(self, ref: PropertyRef, value: Any) -> None:
        """Track a value the conversation is 'about' (for coreference)."""
        self.focus_entities = [
            (r, v) for r, v in self.focus_entities if r != ref
        ]
        self.focus_entities.append((ref, value))

    def reset(self) -> None:
        """Forget everything (a "start over" user action)."""
        self.turns.clear()
        self.current_query = None
        self.focus_concept = None
        self.focus_entities.clear()
        self.pending_clarification = None
