"""Reproduction of "State of the Art and Open Challenges in Natural
Language Interfaces to Data" (Özcan et al., SIGMOD 2020).

The survey describes a landscape: four tiers of generated-query
complexity, three families of interpretation approach (entity-based,
machine-learning-based, hybrid), and the extension from one-shot querying
to dialogue.  This package implements one working representative of every
surveyed family, the substrates they require, and the benchmark harness
that turns the survey's qualitative claims into measurements.

Sub-packages:

- :mod:`repro.sqldb` — in-memory SQL engine (catalog, parser, executor).
- :mod:`repro.nlp` — tokenization, tagging, parsing, similarity, embeddings.
- :mod:`repro.ontology` — ontology model, schema→ontology builder, reasoner,
  query relaxation over external knowledge bases.
- :mod:`repro.core` — the unifying NLIDB framework: evidence annotation,
  candidate interpretations, the OQL intermediate language, complexity
  classification, ranking, and the system interface.
- :mod:`repro.systems` — SODA-, SQAK-, NaLIR-, ATHENA-, TEMPLAR-style
  entity-based systems; Seq2SQL-, SQLNet-, TypeSQL-, DBPal-style neural
  systems (pure numpy); QUEST-style and generic hybrids.
- :mod:`repro.dialogue` — intents/entities/dialogue managers, follow-up
  resolution, DialSQL-style clarification, ontology bootstrap.
- :mod:`repro.bench` — domain generators, WikiSQL/Spider/SParC/CoSQL-style
  synthetic datasets, paraphrasing, metrics, and the experiment harness.
"""

__version__ = "1.0.0"
