"""External knowledge bases for query relaxation.

Lei et al. [28] expand query answers on *medical* knowledge bases by
bridging the gap between the precise terminology stored in the KB and the
colloquial, imprecise terms users type.  The paper used real medical KBs
(e.g. UMLS-derived); offline, we build a synthetic KB with the same
*shape*: canonical terms, colloquial aliases, and an IS-A hierarchy whose
siblings/parents drive relaxation.

The substitution preserves the relevant behaviour because the relaxation
algorithm only consumes the alias table and the hierarchy — both present
here — not any property specific to the real ontologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass
class KBEntry:
    """One canonical KB term with colloquial aliases and a parent."""

    canonical: str
    aliases: Tuple[str, ...] = ()
    parent: Optional[str] = None
    category: str = "concept"


class KnowledgeBase:
    """Alias + hierarchy lookup over canonical terms."""

    def __init__(self, name: str = "kb"):
        self.name = name
        self._entries: Dict[str, KBEntry] = {}
        self._alias_index: Dict[str, str] = {}

    def add(
        self,
        canonical: str,
        aliases: Iterable[str] = (),
        parent: Optional[str] = None,
        category: str = "concept",
    ) -> KBEntry:
        """Register a canonical term with its aliases."""
        entry = KBEntry(canonical.lower(), tuple(a.lower() for a in aliases), parent and parent.lower(), category)
        self._entries[entry.canonical] = entry
        self._alias_index[entry.canonical] = entry.canonical
        for alias in entry.aliases:
            self._alias_index[alias] = entry.canonical
        return entry

    def canonicalize(self, term: str) -> Optional[str]:
        """Canonical form of ``term`` (alias-aware), or ``None``."""
        return self._alias_index.get(term.lower())

    def entry(self, term: str) -> Optional[KBEntry]:
        """The entry owning ``term`` (canonical or alias)."""
        canonical = self.canonicalize(term)
        return self._entries.get(canonical) if canonical else None

    def aliases(self, term: str) -> Set[str]:
        """All surface forms of the term's canonical entry."""
        entry = self.entry(term)
        if entry is None:
            return set()
        return {entry.canonical, *entry.aliases}

    def parent(self, term: str) -> Optional[str]:
        """Canonical parent of ``term`` in the hierarchy."""
        entry = self.entry(term)
        return entry.parent if entry else None

    def children(self, term: str) -> List[str]:
        """Canonical children of ``term``."""
        canonical = self.canonicalize(term)
        if canonical is None:
            return []
        return sorted(
            e.canonical for e in self._entries.values() if e.parent == canonical
        )

    def siblings(self, term: str) -> List[str]:
        """Other children of the term's parent."""
        entry = self.entry(term)
        if entry is None or entry.parent is None:
            return []
        return [c for c in self.children(entry.parent) if c != entry.canonical]

    def __len__(self) -> int:
        return len(self._entries)


def build_medical_kb() -> KnowledgeBase:
    """A synthetic medical KB exercising the Lei et al. relaxation path.

    Colloquial aliases ("heart attack") map to canonical clinical terms
    ("myocardial infarction"); the IS-A hierarchy enables parent/sibling
    relaxation when an exact lookup fails.
    """
    kb = KnowledgeBase("medical")
    kb.add("cardiovascular disease", ["heart disease", "heart problems"], category="disease")
    kb.add("myocardial infarction", ["heart attack", "mi", "cardiac arrest"], parent="cardiovascular disease", category="disease")
    kb.add("hypertension", ["high blood pressure", "high bp"], parent="cardiovascular disease", category="disease")
    kb.add("arrhythmia", ["irregular heartbeat"], parent="cardiovascular disease", category="disease")
    kb.add("respiratory disease", ["lung disease", "breathing problems"], category="disease")
    kb.add("asthma", ["wheezing disorder"], parent="respiratory disease", category="disease")
    kb.add("pneumonia", ["lung infection"], parent="respiratory disease", category="disease")
    kb.add("chronic obstructive pulmonary disease", ["copd", "smoker's lung"], parent="respiratory disease", category="disease")
    kb.add("metabolic disorder", [], category="disease")
    kb.add("diabetes mellitus", ["diabetes", "high blood sugar", "sugar disease"], parent="metabolic disorder", category="disease")
    kb.add("hyperlipidemia", ["high cholesterol"], parent="metabolic disorder", category="disease")
    kb.add("neurological disorder", ["brain disorder"], category="disease")
    kb.add("cerebrovascular accident", ["stroke", "brain attack"], parent="neurological disorder", category="disease")
    kb.add("migraine", ["severe headache"], parent="neurological disorder", category="disease")
    kb.add("epilepsy", ["seizure disorder", "seizures"], parent="neurological disorder", category="disease")
    kb.add("infectious disease", ["infection"], category="disease")
    kb.add("influenza", ["flu", "the flu"], parent="infectious disease", category="disease")
    kb.add("gastroenteritis", ["stomach flu", "stomach bug"], parent="infectious disease", category="disease")
    kb.add("renal disease", ["kidney disease", "kidney problems"], category="disease")
    kb.add("chronic kidney disease", ["kidney failure", "ckd"], parent="renal disease", category="disease")

    kb.add("analgesic", ["painkiller", "pain reliever", "pain medication"], category="drug")
    kb.add("acetaminophen", ["paracetamol", "tylenol"], parent="analgesic", category="drug")
    kb.add("ibuprofen", ["advil", "nurofen"], parent="analgesic", category="drug")
    kb.add("antibiotic", ["antibiotics", "anti-bacterial"], category="drug")
    kb.add("amoxicillin", ["amoxil"], parent="antibiotic", category="drug")
    kb.add("azithromycin", ["z-pack", "zithromax"], parent="antibiotic", category="drug")
    kb.add("antihypertensive", ["blood pressure medication", "bp medication"], category="drug")
    kb.add("lisinopril", ["prinivil", "zestril"], parent="antihypertensive", category="drug")
    kb.add("amlodipine", ["norvasc"], parent="antihypertensive", category="drug")
    kb.add("antidiabetic", ["diabetes medication", "sugar medication"], category="drug")
    kb.add("metformin", ["glucophage"], parent="antidiabetic", category="drug")
    kb.add("insulin", ["insulin injection"], parent="antidiabetic", category="drug")
    kb.add("statin", ["cholesterol medication"], category="drug")
    kb.add("atorvastatin", ["lipitor"], parent="statin", category="drug")
    kb.add("simvastatin", ["zocor"], parent="statin", category="drug")

    kb.add("cardiology", ["heart department", "heart unit"], category="specialty")
    kb.add("neurology", ["brain department"], category="specialty")
    kb.add("pulmonology", ["lung department"], category="specialty")
    kb.add("endocrinology", ["hormone department"], category="specialty")
    kb.add("nephrology", ["kidney department"], category="specialty")
    kb.add("pediatrics", ["children's department", "kids department"], category="specialty")
    kb.add("oncology", ["cancer department"], category="specialty")
    return kb
