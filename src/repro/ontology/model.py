"""Ontology model: concepts, data properties, and relations.

ATHENA [44] interprets questions against a *domain ontology* that
abstracts the backend database: concepts (entity types) with data
properties (attributes) connected by named relations, optionally arranged
in an inheritance hierarchy.  The ontology also carries the domain
vocabulary (synonyms per element), which is what makes entity-based
systems easy to enrich with domain knowledge (§4.1 of the survey).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.sqldb.types import DataType


class OntologyError(Exception):
    """Raised for inconsistent ontology definitions or unknown elements."""


@dataclass
class DataProperty:
    """An attribute of a concept (maps to a table column)."""

    name: str
    concept: str
    dtype: DataType
    synonyms: Tuple[str, ...] = ()

    @property
    def qualified_name(self) -> str:
        """``concept.property`` form used in OQL and explanations."""
        return f"{self.concept}.{self.name}"

    def surface_forms(self) -> Set[str]:
        """All names this property answers to (lower-cased)."""
        return {self.name.lower(), *(s.lower() for s in self.synonyms)}


@dataclass
class Relation:
    """A named, directed relation between two concepts."""

    name: str
    src: str
    dst: str
    synonyms: Tuple[str, ...] = ()
    functional: bool = False  # src has at most one dst (N:1)

    def surface_forms(self) -> Set[str]:
        """All names this relation answers to (lower-cased)."""
        return {self.name.lower(), *(s.lower() for s in self.synonyms)}


@dataclass
class Concept:
    """An entity type with attributes and an optional parent concept."""

    name: str
    synonyms: Tuple[str, ...] = ()
    parent: Optional[str] = None
    properties: Dict[str, DataProperty] = field(default_factory=dict)

    def surface_forms(self) -> Set[str]:
        """All names this concept answers to (lower-cased)."""
        return {self.name.lower(), *(s.lower() for s in self.synonyms)}

    def property(self, name: str) -> DataProperty:
        """Look up one data property (case-insensitive)."""
        prop = self.properties.get(name.lower())
        if prop is None:
            raise OntologyError(f"concept {self.name!r} has no property {name!r}")
        return prop


class Ontology:
    """A domain ontology: concepts + relations + inheritance."""

    def __init__(self, name: str = "ontology"):
        self.name = name
        self.concepts: Dict[str, Concept] = {}
        self.relations: List[Relation] = []

    # -- construction -----------------------------------------------------------

    def add_concept(
        self,
        name: str,
        synonyms: Iterable[str] = (),
        parent: Optional[str] = None,
    ) -> Concept:
        """Register a concept; raises on duplicates or missing parent."""
        key = name.lower()
        if key in self.concepts:
            raise OntologyError(f"concept {name!r} already defined")
        if parent is not None and parent.lower() not in self.concepts:
            raise OntologyError(f"parent concept {parent!r} not defined")
        concept = Concept(name, tuple(synonyms), parent)
        self.concepts[key] = concept
        return concept

    def add_property(
        self,
        concept: str,
        name: str,
        dtype: DataType,
        synonyms: Iterable[str] = (),
    ) -> DataProperty:
        """Attach a data property to ``concept``."""
        owner = self.concept(concept)
        prop = DataProperty(name, owner.name, dtype, tuple(synonyms))
        owner.properties[name.lower()] = prop
        return prop

    def add_relation(
        self,
        name: str,
        src: str,
        dst: str,
        synonyms: Iterable[str] = (),
        functional: bool = False,
    ) -> Relation:
        """Add a directed relation ``src -> dst``."""
        relation = Relation(
            name, self.concept(src).name, self.concept(dst).name, tuple(synonyms), functional
        )
        self.relations.append(relation)
        return relation

    # -- lookup ---------------------------------------------------------------

    def concept(self, name: str) -> Concept:
        """Look up a concept by exact name (case-insensitive)."""
        concept = self.concepts.get(name.lower())
        if concept is None:
            raise OntologyError(f"no concept named {name!r}")
        return concept

    def has_concept(self, name: str) -> bool:
        """Whether a concept named ``name`` exists."""
        return name.lower() in self.concepts

    def all_properties(self) -> List[DataProperty]:
        """Every data property across all concepts."""
        out: List[DataProperty] = []
        for concept in self.concepts.values():
            out.extend(concept.properties.values())
        return out

    def find_concepts(self, surface: str) -> List[Concept]:
        """Concepts whose name or synonyms match ``surface`` exactly."""
        s = surface.lower()
        return [c for c in self.concepts.values() if s in c.surface_forms()]

    def find_properties(self, surface: str) -> List[DataProperty]:
        """Properties (of any concept) matching ``surface`` exactly."""
        s = surface.lower()
        return [p for p in self.all_properties() if s in p.surface_forms()]

    def find_relations(self, surface: str) -> List[Relation]:
        """Relations matching ``surface`` exactly."""
        s = surface.lower()
        return [r for r in self.relations if s in r.surface_forms()]

    # -- hierarchy ----------------------------------------------------------------

    def ancestors(self, concept: str) -> List[str]:
        """Parent chain of ``concept``, nearest first."""
        chain: List[str] = []
        current = self.concept(concept)
        seen = {current.name.lower()}
        while current.parent:
            parent_key = current.parent.lower()
            if parent_key in seen:
                break  # defensive: cycles
            chain.append(self.concept(parent_key).name)
            seen.add(parent_key)
            current = self.concept(parent_key)
        return chain

    def descendants(self, concept: str) -> List[str]:
        """All concepts that (transitively) inherit from ``concept``."""
        target = self.concept(concept).name
        out = []
        for other in self.concepts.values():
            if other.name != target and target in self.ancestors(other.name):
                out.append(other.name)
        return out

    def is_a(self, child: str, parent: str) -> bool:
        """Whether ``child`` equals or inherits from ``parent``."""
        child_name = self.concept(child).name
        parent_name = self.concept(parent).name
        return child_name == parent_name or parent_name in self.ancestors(child_name)

    def inherited_properties(self, concept: str) -> List[DataProperty]:
        """Own plus inherited data properties, own first."""
        own = list(self.concept(concept).properties.values())
        for ancestor in self.ancestors(concept):
            own.extend(self.concept(ancestor).properties.values())
        return own

    # -- graph ---------------------------------------------------------------

    def graph(self) -> nx.MultiGraph:
        """Undirected relation graph over concepts (for path search)."""
        graph = nx.MultiGraph()
        graph.add_nodes_from(c.name for c in self.concepts.values())
        for relation in self.relations:
            graph.add_edge(relation.src, relation.dst, relation=relation)
        # inheritance edges connect children to parents with zero cost
        for concept in self.concepts.values():
            if concept.parent:
                graph.add_edge(
                    concept.name, self.concept(concept.parent).name, relation=None
                )
        return graph

    def vocabulary(self) -> Set[str]:
        """Every surface form the ontology knows about."""
        vocab: Set[str] = set()
        for concept in self.concepts.values():
            vocab |= concept.surface_forms()
            for prop in concept.properties.values():
                vocab |= prop.surface_forms()
        for relation in self.relations:
            vocab |= relation.surface_forms()
        return vocab

    def stats(self) -> Dict[str, int]:
        """Element counts (used in benchmark reporting)."""
        return {
            "concepts": len(self.concepts),
            "properties": len(self.all_properties()),
            "relations": len(self.relations),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"Ontology({self.name!r}, {s['concepts']} concepts, "
            f"{s['properties']} properties, {s['relations']} relations)"
        )
