"""Mappings between ontology elements and database schema elements.

ATHENA keeps the ontology abstract and maps it onto the physical schema;
the same pattern appears in the tooling framework of Jammi et al. [24].
An :class:`OntologyMapping` records, for each concept, property and
relation, the table / column / foreign-key-path that realizes it, and is
what the OQL→SQL translation consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sqldb.schema import ForeignKey

from .model import Ontology, OntologyError


@dataclass
class RelationMapping:
    """How one ontology relation is realized: a chain of foreign keys.

    For a direct FK the chain has one element; for a relation through a
    junction table it has two.
    """

    relation_name: str
    fk_chain: Tuple[ForeignKey, ...]


class OntologyMapping:
    """Bidirectional ontology ⇄ schema mapping."""

    def __init__(self, ontology: Ontology):
        self.ontology = ontology
        self._concept_to_table: Dict[str, str] = {}
        self._property_to_column: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self._column_to_property: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self._relation_mappings: Dict[Tuple[str, str, str], RelationMapping] = {}

    # -- registration ------------------------------------------------------------

    def map_concept(self, concept: str, table: str) -> None:
        """Bind a concept to its backing table."""
        name = self.ontology.concept(concept).name
        self._concept_to_table[name.lower()] = table

    def map_property(self, concept: str, prop: str, table: str, column: str) -> None:
        """Bind a data property to a (table, column) pair."""
        owner = self.ontology.concept(concept)
        owner.property(prop)  # validates
        self._property_to_column[(owner.name.lower(), prop.lower())] = (table, column)
        self._column_to_property[(table.lower(), column.lower())] = (owner.name, prop)

    def map_relation(
        self, name: str, src: str, dst: str, fk_chain: Tuple[ForeignKey, ...]
    ) -> None:
        """Bind a relation to the FK chain that joins its endpoint tables."""
        key = (name.lower(), src.lower(), dst.lower())
        self._relation_mappings[key] = RelationMapping(name, fk_chain)

    # -- lookup ---------------------------------------------------------------

    def table_of(self, concept: str) -> str:
        """The table backing ``concept`` (inheriting the parent's table
        when the concept itself is unmapped)."""
        name = self.ontology.concept(concept).name.lower()
        if name in self._concept_to_table:
            return self._concept_to_table[name]
        for ancestor in self.ontology.ancestors(name):
            mapped = self._concept_to_table.get(ancestor.lower())
            if mapped:
                return mapped
        raise OntologyError(f"concept {concept!r} is not mapped to a table")

    def column_of(self, concept: str, prop: str) -> Tuple[str, str]:
        """The (table, column) backing ``concept.prop`` (inheritance-aware)."""
        owner = self.ontology.concept(concept)
        key = (owner.name.lower(), prop.lower())
        if key in self._property_to_column:
            return self._property_to_column[key]
        for ancestor in self.ontology.ancestors(owner.name):
            key = (ancestor.lower(), prop.lower())
            if key in self._property_to_column:
                return self._property_to_column[key]
        raise OntologyError(f"property {concept}.{prop} is not mapped to a column")

    def fk_chain_of(self, name: str, src: str, dst: str) -> Tuple[ForeignKey, ...]:
        """FK chain realizing relation ``name`` from ``src`` to ``dst``.

        Falls back to the reverse orientation with reversed FKs.
        """
        key = (name.lower(), src.lower(), dst.lower())
        mapping = self._relation_mappings.get(key)
        if mapping is not None:
            return mapping.fk_chain
        reverse_key = (name.lower(), dst.lower(), src.lower())
        mapping = self._relation_mappings.get(reverse_key)
        if mapping is not None:
            return tuple(fk.reversed() for fk in reversed(mapping.fk_chain))
        raise OntologyError(f"relation {name!r} ({src} -> {dst}) is not mapped")

    def property_for_column(self, table: str, column: str) -> Optional[Tuple[str, str]]:
        """Reverse lookup: the (concept, property) backed by a column.

        Returns ``None`` for unmapped columns (foreign keys, junction
        payloads) — callers treat such value hits as unusable evidence.
        """
        return self._column_to_property.get((table.lower(), column.lower()))

    def concepts_on_table(self, table: str) -> List[str]:
        """All concepts mapped to ``table``."""
        t = table.lower()
        return [
            self.ontology.concept(c).name
            for c, mapped in self._concept_to_table.items()
            if mapped.lower() == t
        ]
