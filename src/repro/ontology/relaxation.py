"""Query relaxation over external knowledge sources (Lei et al. [28]).

When a question term fails to match any stored value — because the user
typed the colloquial form ("heart attack") while the database stores the
clinical form ("myocardial infarction") — the relaxer proposes
substitutes in widening circles:

1. **canonicalization** — alias → canonical form (confidence 0.95),
2. **alias expansion** — all other aliases of the same entry (0.9),
3. **child expansion** — more specific terms (0.75, the SODA-style
   superclass/subclass extension §4.1),
4. **sibling expansion** — same-parent terms (0.5),
5. **parent expansion** — the broader term itself (0.6).

Each proposal records its provenance so clarification dialogue can ask
the user ("did you mean ...?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.nlp.thesaurus import DEFAULT_THESAURUS, Thesaurus

from .kb import KnowledgeBase


@dataclass(frozen=True)
class RelaxedTerm:
    """One relaxation proposal with provenance and confidence."""

    original: str
    term: str
    source: str  # "canonical" | "alias" | "child" | "sibling" | "parent" | "synonym"
    confidence: float

    def describe(self) -> str:
        """Readable provenance line for explanations and dialogs."""
        return f"{self.original!r} -> {self.term!r} ({self.source}, {self.confidence:.2f})"


class QueryRelaxer:
    """Proposes alternative terms for unmatched question tokens."""

    def __init__(
        self,
        kb: Optional[KnowledgeBase] = None,
        thesaurus: Optional[Thesaurus] = None,
        max_proposals: int = 8,
    ):
        self.kb = kb
        self.thesaurus = thesaurus or DEFAULT_THESAURUS
        self.max_proposals = max_proposals

    def relax(self, term: str) -> List[RelaxedTerm]:
        """All proposals for ``term``, best-confidence first."""
        proposals: List[RelaxedTerm] = []
        t = term.lower().strip()
        if self.kb is not None:
            canonical = self.kb.canonicalize(t)
            if canonical and canonical != t:
                proposals.append(RelaxedTerm(t, canonical, "canonical", 0.95))
            if canonical:
                for alias in sorted(self.kb.aliases(canonical)):
                    if alias not in (t, canonical):
                        proposals.append(RelaxedTerm(t, alias, "alias", 0.9))
                for child in self.kb.children(canonical):
                    proposals.append(RelaxedTerm(t, child, "child", 0.75))
                parent = self.kb.parent(canonical)
                if parent:
                    proposals.append(RelaxedTerm(t, parent, "parent", 0.6))
                for sibling in self.kb.siblings(canonical):
                    proposals.append(RelaxedTerm(t, sibling, "sibling", 0.5))
        for synonym in sorted(self.thesaurus.synonyms(t)):
            if synonym != t and all(p.term != synonym for p in proposals):
                proposals.append(RelaxedTerm(t, synonym, "synonym", 0.85))
        proposals.sort(key=lambda p: (-p.confidence, p.term))
        return proposals[: self.max_proposals]

    def best_match(self, term: str, candidates: Sequence[str]) -> Optional[RelaxedTerm]:
        """The highest-confidence proposal that appears in ``candidates``.

        ``candidates`` is typically the set of values actually stored in
        the database column being filtered; the result, if any, is the
        value the relaxed query should use.
        """
        # Candidate lists come straight from stored column values, which
        # may contain NULLs or non-text values; neither can ever match a
        # relaxed text term, so skip them instead of crashing on .lower().
        available = {c.lower() for c in candidates if isinstance(c, str)}
        t = term.lower().strip()
        if t in available:
            return RelaxedTerm(t, t, "exact", 1.0)
        for proposal in self.relax(t):
            if proposal.term in available:
                return proposal
        return None

    def expand_all(self, term: str) -> List[str]:
        """Every alternative surface form, original first (for recall-
        oriented value matching)."""
        seen = [term.lower()]
        for proposal in self.relax(term):
            if proposal.term not in seen:
                seen.append(proposal.term)
        return seen
