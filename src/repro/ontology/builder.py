"""Automatic ontology generation from a database schema.

The survey notes that ATHENA's ontology "and the mappings to the
underlying data can be either provided manually, or generated
automatically from the database information [24]".  This module is that
generator: every table becomes a concept, every non-FK column a data
property, every foreign key a relation — except *junction tables* (two
FKs and no independent attributes), which collapse into a single
many-to-many relation between the referenced concepts.

Names are humanized (``order_items`` → concept ``order item``) and schema
synonyms flow into the ontology vocabulary, which the interpretation and
dialogue-bootstrap layers then exploit.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.sqldb.database import Database
from repro.sqldb.index import split_identifier
from repro.sqldb.schema import ForeignKey

from .mapping import OntologyMapping
from .model import Ontology


def humanize(identifier: str) -> str:
    """``order_items`` → ``order item`` (singularized last word).

    Uses noun-only singularization: a column named ``rating`` stays
    ``rating`` (full lemmatization would strip its -ing).
    """
    from repro.nlp.lemmatizer import singularize

    words = split_identifier(identifier)
    if not words:
        return identifier.lower()
    words[-1] = singularize(words[-1])
    return " ".join(words)


def pluralize(noun: str) -> str:
    """Plural surface form of a (possibly multi-word) noun."""
    head = noun.split()[-1] if noun else noun
    if head.endswith(("s", "x", "z", "ch", "sh")):
        return noun + "es"
    if head.endswith("y") and len(head) > 1 and head[-2] not in "aeiou":
        return noun[:-1] + "ies"
    return noun + "s"


def build_ontology(database: Database, name: str = "") -> Tuple[Ontology, OntologyMapping]:
    """Derive (ontology, mapping) from ``database``.

    Junction tables are detected and folded into many-to-many relations;
    all other foreign keys produce a functional relation from the
    referencing concept to the referenced one, plus vocabulary taken from
    declared schema synonyms.
    """
    ontology = Ontology(name or f"{database.name}-ontology")
    mapping = OntologyMapping(ontology)

    junctions = {t.name for t in database.tables if _is_junction(database, t.name)}

    fk_columns: Dict[str, Set[str]] = {}
    for fk in database.foreign_keys:
        fk_columns.setdefault(fk.src_table.lower(), set()).add(fk.src_column.lower())

    for table in database.tables:
        if table.name in junctions:
            continue
        concept_name = humanize(table.name)
        concept = ontology.add_concept(concept_name, synonyms=table.schema.synonyms)
        mapping.map_concept(concept_name, table.name)
        skip = fk_columns.get(table.name.lower(), set())
        for column in table.schema:
            if column.name.lower() in skip:
                continue
            prop_name = humanize(column.name)
            ontology.add_property(
                concept_name, prop_name, column.dtype, synonyms=column.synonyms
            )
            mapping.map_property(concept_name, prop_name, table.name, column.name)

    # Direct FK relations between non-junction tables.
    for fk in database.foreign_keys:
        if fk.src_table in junctions or fk.dst_table in junctions:
            continue
        src_concept = humanize(fk.src_table)
        dst_concept = humanize(fk.dst_table)
        relation_name = _relation_name(fk, dst_concept)
        ontology.add_relation(
            relation_name, src_concept, dst_concept, functional=True
        )
        mapping.map_relation(relation_name, src_concept, dst_concept, (fk,))

    # Junction tables: fold two FKs into one many-to-many relation.
    for junction in junctions:
        fks = [f for f in database.foreign_keys if f.src_table == junction]
        if len(fks) != 2:
            continue
        left, right = fks
        src_concept = humanize(left.dst_table)
        dst_concept = humanize(right.dst_table)
        relation_name = humanize(junction)
        ontology.add_relation(relation_name, src_concept, dst_concept)
        # Chain oriented src_concept -> junction -> dst_concept.
        mapping.map_relation(
            relation_name, src_concept, dst_concept, (left.reversed(), right)
        )

    return ontology, mapping


def _is_junction(database: Database, table_name: str) -> bool:
    """A junction table has exactly 2 FKs and *no* payload columns.

    Tables with payload attributes (``order_lines.quantity``,
    ``assignments.hours``) stay first-class concepts — users ask about
    those attributes, so they must be reachable as ontology properties.
    """
    fks = [f for f in database.foreign_keys if f.src_table == table_name]
    if len(fks) != 2:
        return False
    schema = database.schema(table_name)
    fk_cols = {f.src_column.lower() for f in fks}
    non_fk = [
        c
        for c in schema
        if c.name.lower() not in fk_cols and not c.primary_key
    ]
    return len(non_fk) == 0


def _relation_name(fk: ForeignKey, dst_concept: str) -> str:
    """Derive a readable relation name from the FK column.

    ``emp.dept_id -> dept.id`` names the relation "dept" (the column
    stem) falling back to "has <dst>".
    """
    stem_words = split_identifier(fk.src_column)
    if stem_words and stem_words[-1] in ("id", "key", "code", "fk", "no"):
        stem_words = stem_words[:-1]
    if stem_words:
        return " ".join(stem_words)
    return f"has {dst_concept}"
