"""Ontology reasoning: relationship paths and join inference.

The "intelligent domain reasoning" the survey attributes to ATHENA [44]:
given the set of concepts a question mentions, find how they connect.
For two concepts this is a shortest path over the relation graph; for
three or more it is a Steiner tree (computed with networkx's
approximation), whose edges translate — through the ontology mapping —
into the SQL join chain.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import networkx as nx
from networkx.algorithms import approximation as nx_approx

from repro.sqldb.schema import ForeignKey

from .mapping import OntologyMapping
from .model import Ontology, OntologyError, Relation


class Reasoner:
    """Path/tree search over an ontology's relation graph."""

    def __init__(self, ontology: Ontology, mapping: Optional[OntologyMapping] = None):
        self.ontology = ontology
        self.mapping = mapping
        self._graph = ontology.graph()

    def connected(self, concept_a: str, concept_b: str) -> bool:
        """Whether two concepts are connected by any relation path."""
        a = self.ontology.concept(concept_a).name
        b = self.ontology.concept(concept_b).name
        if a == b:
            return True
        return nx.has_path(self._graph, a, b)

    def relation_path(self, src: str, dst: str) -> List[Relation]:
        """Relations along the shortest path ``src`` → ``dst``.

        Inheritance edges contribute no relation (concepts share tables),
        so they are skipped in the output.
        """
        a = self.ontology.concept(src).name
        b = self.ontology.concept(dst).name
        if a == b:
            return []
        try:
            nodes = nx.shortest_path(self._graph, a, b)
        except nx.NetworkXNoPath:
            raise OntologyError(f"concepts {src!r} and {dst!r} are not connected") from None
        return self._edges_to_relations(nodes)

    def steiner_concepts(self, concepts: Sequence[str]) -> List[str]:
        """Minimal connected concept set covering all ``concepts``.

        This is the interpretation-tree selection step of ATHENA: the
        Steiner tree over the mentioned concepts decides which additional
        (unmentioned) concepts must participate in the query so the joins
        close.
        """
        names = sorted({self.ontology.concept(c).name for c in concepts})
        if len(names) <= 1:
            return names
        # steiner_tree requires a Graph (not MultiGraph) — collapse edges.
        simple = nx.Graph()
        simple.add_nodes_from(self._graph.nodes)
        for u, v in self._graph.edges():
            simple.add_edge(u, v)
        for name in names:
            if name not in simple:
                raise OntologyError(f"unknown concept {name!r}")
        tree = nx_approx.steiner_tree(simple, names)
        nodes = sorted(tree.nodes) if tree.number_of_nodes() else names
        return nodes

    def join_concepts(self, concepts: Sequence[str]) -> List[Tuple[str, Relation]]:
        """Order the Steiner concepts into a join sequence.

        Returns ``[(concept, relation-used-to-reach-it), ...]`` starting
        from the first concept (relation ``None`` for the root, omitted).
        """
        nodes = self.steiner_concepts(concepts)
        if not nodes:
            return []
        # Build the induced subgraph and walk it BFS from the first
        # mentioned concept for a deterministic join order.
        sub = self._graph.subgraph(nodes)
        root = self.ontology.concept(concepts[0]).name
        if root not in sub:
            root = nodes[0]
        out: List[Tuple[str, Relation]] = []
        seen = {root}
        frontier = [root]
        while frontier:
            current = frontier.pop(0)
            for neighbor in sorted(sub.neighbors(current)):
                if neighbor in seen:
                    continue
                relation = self._pick_relation(current, neighbor)
                out.append((neighbor, relation))
                seen.add(neighbor)
                frontier.append(neighbor)
        return out

    def oriented_path(self, src: str, dst: str) -> List[Tuple[str, str, Optional[Relation]]]:
        """Shortest path as ``(from_concept, to_concept, relation)`` hops.

        Used to decide join duplication semantics: traversing a
        functional relation from its ``dst`` (one) side to its ``src``
        (many) side fans out, so projections need DISTINCT.
        """
        a = self.ontology.concept(src).name
        b = self.ontology.concept(dst).name
        if a == b:
            return []
        try:
            nodes = nx.shortest_path(self._graph, a, b)
        except nx.NetworkXNoPath:
            raise OntologyError(f"concepts {src!r} and {dst!r} are not connected") from None
        return [
            (u, v, self._pick_relation(u, v)) for u, v in zip(nodes, nodes[1:])
        ]

    def fans_out(self, src: str, dst: str) -> bool:
        """Whether joining from ``src`` toward ``dst`` can duplicate
        ``src`` rows (traverses to a "many" side anywhere on the path)."""
        for u, v, relation in self.oriented_path(src, dst):
            if relation is None:
                continue  # inheritance hop
            if not relation.functional:
                return True  # many-to-many
            if relation.dst == u and relation.src == v:
                return True  # one side -> many side
        return False

    def fk_chain(self, src: str, dst: str) -> List[ForeignKey]:
        """Foreign keys realizing the relation path ``src`` → ``dst``.

        Requires a mapping; inheritance hops contribute nothing.
        """
        if self.mapping is None:
            raise OntologyError("reasoner has no mapping; cannot derive FKs")
        a = self.ontology.concept(src).name
        b = self.ontology.concept(dst).name
        if a == b:
            return []
        nodes = nx.shortest_path(self._graph, a, b)
        chain: List[ForeignKey] = []
        for u, v in zip(nodes, nodes[1:]):
            relation = self._pick_relation(u, v)
            if relation is None:
                continue  # inheritance edge: same table family
            oriented = self.mapping.fk_chain_of(relation.name, u, v)
            chain.extend(oriented)
        return chain

    # -- helpers ----------------------------------------------------------------

    def _edges_to_relations(self, nodes: List[str]) -> List[Relation]:
        out = []
        for u, v in zip(nodes, nodes[1:]):
            relation = self._pick_relation(u, v)
            if relation is not None:
                out.append(relation)
        return out

    def _pick_relation(self, u: str, v: str) -> Optional[Relation]:
        """Deterministically choose one relation between two concepts."""
        data = self._graph.get_edge_data(u, v)
        if not data:
            return None
        relations = [d["relation"] for d in data.values() if d.get("relation")]
        if not relations:
            return None
        return sorted(relations, key=lambda r: r.name)[0]
