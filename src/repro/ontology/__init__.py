"""Ontology layer: domain semantics over the physical schema.

Implements the ontology-driven interpretation stack the survey centres on
ATHENA [44] and its derivatives [24, 28, 29, 42, 46]:

- :mod:`~repro.ontology.model` — concepts, data properties, relations,
  inheritance, and the relation graph.
- :mod:`~repro.ontology.builder` — automatic schema → ontology generation
  (with junction-table folding), per Jammi et al. [24].
- :mod:`~repro.ontology.mapping` — ontology ⇄ schema mappings consumed by
  OQL → SQL translation.
- :mod:`~repro.ontology.reasoner` — relationship paths and Steiner-tree
  join inference.
- :mod:`~repro.ontology.kb` / :mod:`~repro.ontology.relaxation` —
  external knowledge bases and Lei et al. [28] query relaxation.
"""

from .builder import build_ontology, humanize
from .kb import KBEntry, KnowledgeBase, build_medical_kb
from .mapping import OntologyMapping, RelationMapping
from .model import Concept, DataProperty, Ontology, OntologyError, Relation
from .reasoner import Reasoner
from .relaxation import QueryRelaxer, RelaxedTerm

__all__ = [
    "Ontology", "Concept", "DataProperty", "Relation", "OntologyError",
    "OntologyMapping", "RelationMapping",
    "build_ontology", "humanize",
    "Reasoner",
    "KnowledgeBase", "KBEntry", "build_medical_kb",
    "QueryRelaxer", "RelaxedTerm",
]
