"""Command-line interface.

Subcommands exercising the library end to end::

    python -m repro ask "top 3 products by price" --domain retail
    python -m repro ask "..." --system soda --explain --stats
    python -m repro chat --domain retail            # multi-turn REPL
    python -m repro complete "movies with" --domain movies
    python -m repro sql "SELECT ..." --domain retail --explain
    python -m repro systems                         # list registered systems
    python -m repro bench --jobs 4 --profile        # parallel benchmark sweep
    python -m repro serve "..." --inject "execute:error:0.5"   # resilient serving
    python -m repro serve --http 8080 --pool 4                 # HTTP/JSON facade
    python -m repro bench --serve --inject "*:error:0.3"       # availability columns

``sql`` runs raw SQL against a domain database; ``--explain`` prints the
planner's EXPLAIN-style report (hash join vs nested loop, index scan vs
full scan), ``--no-planner`` forces the naive interpreter, ``--stats``
dumps the per-query ExecutionStats counters, and ``--lint`` runs the
static semantic analyzer only, printing coded diagnostics with source
positions instead of executing.

Domains are the built-in benchmark databases
(:mod:`repro.bench.domains`); systems are resolved through the registry
(:mod:`repro.core.registry`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.domains import build_domain, domain_names
from repro.core import NLIDBContext, available, create
from repro.systems import AthenaSystem  # noqa: F401  (imported to populate the registry)


def _build_context(domain: str, seed: int, use_schema_index: bool = True) -> NLIDBContext:
    return NLIDBContext(build_domain(domain, seed=seed), use_schema_index=use_schema_index)


def cmd_ask(args: argparse.Namespace) -> int:
    """One-shot question answering."""
    context = _build_context(
        args.domain, args.seed, use_schema_index=not args.no_schema_index
    )
    system = create(args.system)
    interpretations = system.interpret(args.question, context)
    if not interpretations:
        print("no interpretation (the system abstained)")
        return 1
    top = max(interpretations, key=lambda i: i.confidence)
    try:
        statement = top.to_sql(context.ontology, context.mapping)
        result = context.executor.execute(statement)
    except Exception as exc:
        print(f"interpretation failed to execute: {exc}")
        return 1
    print(f"SQL: {statement.to_sql()}")
    if args.explain:
        print()
        if top.oql is not None:
            print(f"reading: {top.oql.to_english()}")
        print(top.describe())
        print()
    print(result.to_text(max_rows=args.rows))
    if args.stats:
        print()
        _print_stats(context.executor.last_stats)
    return 0


def _print_stats(stats) -> None:
    print("execution stats:")
    for key, value in stats.as_dict().items():
        if value:
            print(f"  {key:24s} {value}")


def cmd_sql(args: argparse.Namespace) -> int:
    """Run raw SQL against a domain database through the planner."""
    from repro.sqldb.executor import Executor

    database = build_domain(args.domain, seed=args.seed)
    if args.lint:
        return _lint_sql(database, args.sql)
    executor = Executor(
        database,
        use_planner=not args.no_planner,
        use_columnar=not args.no_columnar,
        scan_jobs=args.scan_jobs,
        infer=not args.no_infer,
    )
    if args.explain:
        try:
            print(executor.explain_sql(args.sql))
        except Exception as exc:
            print(f"cannot plan: {exc}")
            return 1
        print()
    try:
        result = executor.execute_sql(args.sql)
    except Exception as exc:
        print(f"execution failed: {exc}")
        return 1
    print(result.to_text(max_rows=args.rows))
    if args.stats:
        print()
        _print_stats(executor.last_stats)
    return 0


def _lint_sql(database, sql: str) -> int:
    """Static analysis only: print one diagnostic per line, never execute.

    Exit code 1 when any error-severity diagnostic was found (the
    executor pre-flight would reject the statement), 0 otherwise.
    """
    result = database.analyze_sql(sql)
    if not result.diagnostics:
        print("ok: no diagnostics")
        return 0
    for diag in result.diagnostics:
        print(diag.format())
        if diag.span is not None:
            excerpt = diag.span.excerpt(sql).strip()
            if excerpt:
                print(f"    {excerpt}")
    errors, warnings = len(result.errors), len(result.warnings)
    print(f"{errors} error(s), {warnings} warning(s)")
    return 1 if errors else 0


def cmd_chat(args: argparse.Namespace) -> int:
    """Interactive multi-turn session (§5's conversational extension)."""
    from repro.dialogue import ConversationalNLIDB

    context = _build_context(args.domain, args.seed)
    bot = ConversationalNLIDB(context)
    print(f"connected to {args.domain!r} — ask away (blank line to quit)")
    while True:
        try:
            utterance = input("you> ").strip()
        except EOFError:
            break
        if not utterance:
            break
        turn = bot.ask(utterance)
        if turn.sql:
            print(f"sql> {turn.sql}")
        print(turn.response)
    return 0


def cmd_complete(args: argparse.Namespace) -> int:
    """TR Discover-style auto-completion for a typed prefix."""
    from repro.systems.trdiscover import TRDiscoverCompleter

    context = _build_context(args.domain, args.seed)
    completer = TRDiscoverCompleter(context)
    suggestions = completer.complete(args.prefix)
    if not suggestions:
        query = completer.parse_completed(args.prefix)
        if query is not None:
            from repro.core.intermediate import compile_oql

            statement = compile_oql(query, context.ontology, context.mapping)
            print(f"complete query!  SQL: {statement.to_sql()}")
            print(context.executor.execute(statement).to_text(max_rows=args.rows))
            return 0
        print("(no suggestions)")
        return 1
    for suggestion in suggestions:
        print(f"{suggestion.text:30s} [{suggestion.kind}] {suggestion.score:.4f}")
    return 0


def cmd_systems(args: argparse.Namespace) -> int:
    """List registered systems and available domains."""
    print("systems:", ", ".join(available()))
    print("domains:", ", ".join(domain_names()))
    return 0


def _build_service(context, args):
    """A ResilientService configured from serve/bench CLI flags."""
    from repro.serve import FaultInjector, FaultPlan, NoopInjector, ResilientService

    if args.inject:
        injector = FaultInjector(FaultPlan.parse(args.inject, seed=args.fault_seed))
    else:
        injector = NoopInjector()
    return ResilientService(
        context,
        retries=args.retries,
        backoff_s=args.backoff,
        timeout_s=args.timeout or None,
        injector=injector,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Resilient serving: one question or a workload, optional faults.

    Unlike ``ask``, this never fails with a traceback — faults, timeouts
    and unanswerable questions all degrade along the fallback chain and
    land in the report.  ``--inject`` takes a fault plan like
    ``execute:error:0.5,*:latency:0.2:0.05`` (see
    :mod:`repro.serve.faults`); ``--workload N`` serves a generated
    N-per-tier workload instead of a single question; ``--http PORT``
    starts the concurrent HTTP/JSON facade (``POST /query``,
    ``GET /healthz``) instead of answering inline.
    """
    import json

    from repro.serve import serve_workload

    if args.http:
        return _serve_http(args)
    context = _build_context(
        args.domain, args.seed, use_schema_index=not args.no_schema_index
    )
    service = _build_service(context, args)
    system = args.system or None
    if args.workload:
        from repro.bench.workloads import WorkloadGenerator

        examples = WorkloadGenerator(context.database, seed=args.seed).generate_mixed(
            args.workload
        )
        questions = [example.question for example in examples]
    else:
        if not args.question:
            print("serve: provide a question or --workload N")
            return 2
        questions = [args.question]
    results, summary = serve_workload(service, questions, system=system)
    for result in results:
        _print_serve_result(result, verbose=len(results) == 1, rows=args.rows)
    print()
    print("serve summary:")
    for key, value in summary.as_dict().items():
        print(f"  {key:14s} {value}")
    if args.json:
        payload = {
            "domain": args.domain,
            "fault_plan": args.inject,
            "fault_seed": args.fault_seed,
            "summary": summary.as_dict(),
            "results": [result.as_dict() for result in results],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0 if summary.ok else 1


def _serve_http(args: argparse.Namespace) -> int:
    """Run the concurrent serving front behind the HTTP/JSON facade."""
    from repro.serve import ConcurrentFront, FaultPlan, serve_http

    plan = FaultPlan.parse(args.inject, seed=args.fault_seed) if args.inject else None
    front = ConcurrentFront(
        lambda: _build_context(
            args.domain, args.seed, use_schema_index=not args.no_schema_index
        ),
        pool_size=args.pool,
        queue_depth=args.queue_depth,
        deadline_s=args.deadline or None,
        fault_plan=plan,
        retries=args.retries,
        backoff_s=args.backoff,
        timeout_s=args.timeout or None,
    )
    server = serve_http(front, host=args.host, port=args.http)
    host, port = server.endpoint
    print(f"serving {args.domain!r} on http://{host}:{port}")
    print('  POST /query    {"question": "...", "system": "athena"?}')
    print("  GET  /healthz  pool/queue/breaker snapshot")
    print(
        f"  pool={args.pool} queue_depth={args.queue_depth} "
        f"deadline={args.deadline or 'off'} fault_plan={args.inject or 'none'}"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown()
        front.stop()
    return 0


def _print_serve_result(result, verbose: bool, rows: int) -> None:
    status = "ok" if result.ok else "FAILED"
    via = result.system if result.system else "-"
    degraded = " degraded" if result.degraded else ""
    print(f"[{status}]{degraded} via {via}: {result.question}")
    for name, reason in result.degraded_from:
        print(f"    fell past {name}: {reason}")
    if verbose:
        if result.sql:
            print(f"SQL: {result.sql}")
        if result.answer is not None:
            print(result.answer.to_text(max_rows=rows))
        for event in result.fault_trace:
            print(f"    fault: {event.stage}/{event.kind} {event.detail}")


def cmd_bench(args: argparse.Namespace) -> int:
    """Benchmark systems over a generated workload.

    ``--jobs N`` fans evaluation out over N worker processes (with a
    graceful serial fallback); ``--epochs`` repeats the workload to
    exercise the interpretation cache; ``--profile`` prints the
    per-stage timing table; ``--catalog-width N`` swaps the domain for a
    seeded N-table wide catalog (enterprise-scale matching pressure);
    ``--no-schema-index`` disables the inverted-lexicon candidate
    pruning (brute-force matching, for A/B runs); ``--serve``
    additionally runs each system as the primary of a resilient fallback
    chain over the same questions (honoring ``--inject``) and adds
    availability/degraded/retries columns; ``--json FILE`` writes the
    machine-readable report (rows + cache stats + profile + serve
    summaries).
    """
    import json

    from repro.bench.harness import format_table
    from repro.bench.workloads import WorkloadGenerator
    from repro.perf.cache import all_cache_stats
    from repro.perf.parallel import ContextSpec, parallel_compare_systems

    spec = ContextSpec(
        args.domain,
        seed=args.seed,
        # wide catalogs keep per-table row counts small: the matching
        # cost under benchmark scales with width, not rows
        scale=0.25 if args.catalog_width else 1.0,
        catalog_width=args.catalog_width,
        use_schema_index=not args.no_schema_index,
    )
    context = spec.build()
    examples = WorkloadGenerator(context.database, seed=args.seed).generate_mixed(
        args.per_tier
    )
    examples = examples * max(1, args.epochs)
    names = args.systems.split(",") if args.systems else list(available())
    report = parallel_compare_systems(
        names, spec, examples, jobs=args.jobs, context=context
    )
    serve_summaries = {}
    if args.serve:
        from repro.serve import serve_workload

        service = _build_service(context, args)
        questions = [example.question for example in examples]
        for name in names:
            _, summary = serve_workload(service, questions, system=name)
            serve_summaries[name] = summary
        for row in report.rows:
            if row.system in serve_summaries:
                row.attach_serve(serve_summaries[row.system])
    scope = f"widecat[{args.catalog_width}]" if args.catalog_width else args.domain
    title = (
        f"{scope}: {len(examples)} examples × {len(names)} systems "
        f"({report.mode}, jobs={report.jobs}, {report.wall_s:.2f}s)"
    )
    print(format_table([r.as_dict() for r in report.rows], title))
    print()
    print("cache layers:")
    for layer, stats in sorted(report.cache_stats.items()):
        print(f"  {layer:16s} {stats.as_dict()}")
    if args.profile:
        print()
        print(report.profile.report())
    if args.json:
        payload = {
            "domain": args.domain,
            "catalog_width": args.catalog_width,
            "schema_index": not args.no_schema_index,
            "examples": len(examples),
            "jobs": report.jobs,
            "mode": report.mode,
            "wall_s": round(report.wall_s, 4),
            "rows": [r.as_dict() for r in report.rows],
            "cache_stats": report.cache_stats_dict(),
            "nlp_cache_stats": {
                name: s.as_dict() for name, s in sorted(all_cache_stats().items())
            },
            "profile": report.profile.as_dict(),
        }
        if serve_summaries:
            payload["serve"] = {
                "fault_plan": args.inject,
                "fault_seed": args.fault_seed,
                "summaries": {
                    name: summary.as_dict()
                    for name, summary in serve_summaries.items()
                },
            }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Natural-language interfaces to data — SIGMOD 2020 survey reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ask = sub.add_parser("ask", help="answer one natural-language question")
    ask.add_argument("question")
    ask.add_argument("--domain", default="retail", choices=domain_names())
    ask.add_argument("--system", default="athena")
    ask.add_argument("--seed", type=int, default=0)
    ask.add_argument("--rows", type=int, default=10)
    ask.add_argument("--explain", action="store_true", help="show the evidence trail")
    ask.add_argument(
        "--stats", action="store_true", help="show ExecutionStats counters"
    )
    _add_schema_index_arg(ask)
    ask.set_defaults(func=cmd_ask)

    sql = sub.add_parser("sql", help="run raw SQL against a domain database")
    sql.add_argument("sql")
    sql.add_argument("--domain", default="retail", choices=domain_names())
    sql.add_argument("--seed", type=int, default=0)
    sql.add_argument("--rows", type=int, default=10)
    sql.add_argument(
        "--explain", action="store_true", help="print the EXPLAIN-style plan"
    )
    sql.add_argument(
        "--no-planner", action="store_true", help="use the naive interpreter"
    )
    sql.add_argument(
        "--no-columnar",
        action="store_true",
        help="disable the vectorized columnar scan path",
    )
    sql.add_argument(
        "--scan-jobs",
        type=int,
        default=0,
        help="worker processes for partitioned columnar scans (0 = serial)",
    )
    sql.add_argument(
        "--no-infer",
        action="store_true",
        help="disable the static inference pass (predicate simplification, "
        "two-valued kernels)",
    )
    sql.add_argument(
        "--lint",
        action="store_true",
        help="statically analyze the query and print diagnostics (no execution)",
    )
    sql.add_argument(
        "--stats", action="store_true", help="show ExecutionStats counters"
    )
    sql.set_defaults(func=cmd_sql)

    chat = sub.add_parser("chat", help="interactive multi-turn session")
    chat.add_argument("--domain", default="retail", choices=domain_names())
    chat.add_argument("--seed", type=int, default=0)
    chat.set_defaults(func=cmd_chat)

    complete = sub.add_parser("complete", help="auto-complete a query prefix")
    complete.add_argument("prefix")
    complete.add_argument("--domain", default="movies", choices=domain_names())
    complete.add_argument("--seed", type=int, default=0)
    complete.add_argument("--rows", type=int, default=10)
    complete.set_defaults(func=cmd_complete)

    systems = sub.add_parser("systems", help="list systems and domains")
    systems.set_defaults(func=cmd_systems)

    serve = sub.add_parser(
        "serve", help="resiliently serve questions with fallback and fault injection"
    )
    serve.add_argument("question", nargs="?", default="")
    serve.add_argument("--domain", default="retail", choices=domain_names())
    serve.add_argument(
        "--system", default="", help="primary system (default: head of fallback chain)"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--rows", type=int, default=10)
    serve.add_argument(
        "--workload",
        type=int,
        default=0,
        metavar="N",
        help="serve a generated N-per-tier workload instead of one question",
    )
    serve.add_argument(
        "--json", default="", help="write the machine-readable serve report to FILE"
    )
    serve.add_argument(
        "--http",
        type=int,
        default=0,
        metavar="PORT",
        help="start the concurrent HTTP/JSON facade on PORT instead of "
        "answering inline (POST /query, GET /healthz)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address for --http"
    )
    serve.add_argument(
        "--pool", type=int, default=4, help="worker threads for --http dispatch"
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="admission queue bound for --http (full queue → HTTP 429)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=0.0,
        help="per-request end-to-end deadline seconds for --http (0 disables)",
    )
    _add_schema_index_arg(serve)
    _add_fault_args(serve)
    serve.set_defaults(func=cmd_serve)

    bench = sub.add_parser(
        "bench", help="benchmark systems over a generated workload"
    )
    bench.add_argument("--domain", default="university", choices=domain_names())
    bench.add_argument(
        "--systems",
        default="",
        help="comma-separated system names (default: all registered)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--per-tier", type=int, default=3, help="examples per complexity tier"
    )
    bench.add_argument(
        "--epochs",
        type=int,
        default=1,
        help="repeat the workload N times (exercises the interpretation cache)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: CPU count; 1 forces serial)",
    )
    bench.add_argument(
        "--profile", action="store_true", help="print the per-stage timing table"
    )
    bench.add_argument(
        "--json", default="", help="write the machine-readable report to FILE"
    )
    bench.add_argument(
        "--serve",
        action="store_true",
        help="also run a resilient-serving sweep; adds avail/degraded/retries columns",
    )
    bench.add_argument(
        "--catalog-width",
        type=int,
        default=0,
        metavar="N",
        help="benchmark against a seeded N-table wide catalog instead of "
        "the domain (cloned/permuted domains with overlapping columns)",
    )
    _add_schema_index_arg(bench)
    _add_fault_args(bench)
    bench.set_defaults(func=cmd_bench)
    return parser


def _add_schema_index_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-schema-index",
        action="store_true",
        help="disable the inverted-lexicon candidate pruning (brute-force matching)",
    )


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    """Shared resilient-serving flags (serve and bench --serve)."""
    parser.add_argument(
        "--inject",
        default="",
        metavar="FAULTPLAN",
        help="fault plan, e.g. 'execute:error:0.5,*:latency:0.2:0.05'",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, help="RNG seed for fault injection"
    )
    parser.add_argument(
        "--retries", type=int, default=2, help="retries per system for transient faults"
    )
    parser.add_argument(
        "--backoff", type=float, default=0.05, help="initial retry backoff seconds"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        help="per-attempt deadline seconds (0 disables)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piping into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
