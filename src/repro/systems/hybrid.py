"""Generic precision/recall hybrid combiner (§6 "Hybrid Approach").

The survey's open challenge: "the entity-based approaches provide better
accuracy while the machine learning-based approaches offer greater
flexibility (recall) ... more research is needed on hybrid approach that
leverages the best from both worlds."

:class:`HybridSystem` is the straightforward instantiation: run the
entity-based system first and keep its answer when it is confident;
otherwise fall back to the ML system (which always answers).  Experiment
E5 measures whether this combination dominates both components.
"""

from __future__ import annotations

from typing import List

from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext, NLIDBSystem


class HybridSystem(NLIDBSystem):
    """Entity-first cascade with an ML fallback."""

    family = "hybrid"

    def __init__(
        self,
        entity_system: NLIDBSystem,
        ml_system: NLIDBSystem,
        confidence_threshold: float = 0.85,
        name: str = "hybrid",
    ):
        self.entity_system = entity_system
        self.ml_system = ml_system
        self.confidence_threshold = confidence_threshold
        self.name = name
        #: how often each arm answered (inspection/ablation)
        self.entity_answers = 0
        self.ml_answers = 0

    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        try:
            entity = self.entity_system.interpret(question, context)
        except Exception:
            entity = []
        if entity and max(i.confidence for i in entity) >= self.confidence_threshold:
            self.entity_answers += 1
            return entity
        try:
            fallback = self.ml_system.interpret(question, context)
        except Exception:
            fallback = []
        if fallback:
            self.ml_answers += 1
            return fallback
        if entity:
            # low-confidence entity answer still beats silence for recall
            self.entity_answers += 1
            return entity
        return []
