"""BELA-style layered question answering over RDF [53] (§4.1).

BELA "uses a lexical tree adjoining grammar to parse the input queries
... This parsing results in a set of SPARQL query templates, each
corresponding to a possible interpretation of the given query.  For
filling the unknown slots in the SPARQL queries, an inverted index,
built from DBpedia entity names, is consulted" — and, per its title, it
is an "evaluation of a *layered* approach": each layer applies a more
permissive matcher and the system stops at the first layer that yields
an answer.

Faithful ingredients:

- a fixed template inventory (class lookup/count, property filter,
  property-of-entity, relation traversal) standing in for the grammar's
  parse templates,
- slot filling against an inverted label index over the RDF graph,
- three matching layers: (1) exact lexical, (2) + synonyms/lemmas,
  (3) + fuzzy string similarity — the system answers at the shallowest
  layer that succeeds, trading precision for recall layer by layer
  (ablated by ``max_layer``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.pipeline import NLIDBContext
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.matching import term_similarity
from repro.nlp.similarity import string_similarity
from repro.nlp.stopwords import is_stopword
from repro.nlp.tokenizer import tokenize
from repro.rdf import (
    RDF_TYPE,
    RDFS_LABEL,
    Filter,
    SparqlQuery,
    TriplePattern,
    Var,
    class_uri,
    evaluate,
    export_rdf,
    property_uri,
    relation_uri,
)
from repro.rdf.triples import TripleStore
from repro.sqldb.relation import Relation


@dataclass
class SparqlInterpretation:
    """One BELA reading: the SPARQL query, its confidence, and the layer
    that produced it (1 = exact ... 3 = fuzzy).

    ``consumed`` lists the question words the reading accounted for —
    the layered loop only accepts a reading that covers (most of) the
    question, otherwise it descends to a more permissive layer (BELA's
    per-layer acceptance threshold).
    """

    query: SparqlQuery
    confidence: float
    layer: int
    explanation: str = ""
    consumed: Tuple[str, ...] = ()


class BelaSystem:
    """Template + layered-slot-filling SPARQL generator."""

    name = "bela"
    family = "entity"

    def __init__(self, context: NLIDBContext, max_layer: int = 3):
        self.context = context
        self.max_layer = max_layer
        self.store: TripleStore = export_rdf(context)
        self._labels = self.store.label_index()

    # -- public API -----------------------------------------------------------

    #: minimum coverage-scaled confidence for a layer to be accepted
    acceptance_threshold = 0.7

    def interpret_sparql(self, question: str) -> List[SparqlInterpretation]:
        """Layered interpretation.

        Each reading's confidence is scaled by how much of the question
        it accounts for; the loop returns at the shallowest layer whose
        best reading clears the acceptance threshold, falling back to
        the overall best reading otherwise.
        """
        content = [
            t.norm
            for t in tokenize(question)
            if t.kind != "punct" and not is_stopword(t.norm)
        ]
        best: List[SparqlInterpretation] = []
        for layer in range(1, self.max_layer + 1):
            readings = self._interpret_at(question, layer)
            for i, reading in enumerate(readings):
                readings[i] = SparqlInterpretation(
                    reading.query,
                    reading.confidence * self._coverage(content, reading.consumed),
                    reading.layer,
                    reading.explanation,
                    reading.consumed,
                )
            readings.sort(key=lambda r: -r.confidence)
            if readings and readings[0].confidence >= self.acceptance_threshold:
                return readings
            if readings and (not best or readings[0].confidence > best[0].confidence):
                best = readings
        return best

    @staticmethod
    def _coverage(content: List[str], consumed: Sequence[str]) -> float:
        if not content:
            return 1.0
        consumed_words = set()
        for chunk in consumed:
            consumed_words.update(str(chunk).lower().split())
        covered = sum(1 for w in content if w in consumed_words)
        return covered / len(content)

    def answer(self, question: str) -> Optional[Relation]:
        """Interpret and execute the best reading."""
        readings = self.interpret_sparql(question)
        if not readings:
            return None
        return evaluate(self.store, readings[0].query)

    # -- layered slot matchers -------------------------------------------------

    def _match_concept(self, word: str, layer: int) -> Optional[Tuple[str, float]]:
        best: Optional[Tuple[str, float]] = None
        for concept in self.context.ontology.concepts.values():
            for form in concept.surface_forms():
                score = self._term_score(word, form, layer)
                if score is not None and (best is None or score > best[1]):
                    best = (concept.name, score)
        return best

    def _match_property(
        self, word: str, concept: Optional[str], layer: int
    ) -> Optional[Tuple[str, str, float]]:
        best: Optional[Tuple[str, str, float]] = None
        concepts = (
            [self.context.ontology.concept(concept)]
            if concept
            else list(self.context.ontology.concepts.values())
        )
        for owner in concepts:
            for prop in owner.properties.values():
                for form in prop.surface_forms():
                    score = self._term_score(word, form, layer)
                    if score is not None and (best is None or score > best[2]):
                        best = (owner.name, prop.name, score)
        return best

    def _match_relation(
        self, word: str, concept: Optional[str], layer: int
    ) -> Optional[Tuple[str, str, float]]:
        best: Optional[Tuple[str, str, float]] = None
        for relation in self.context.ontology.relations:
            if concept and relation.src != concept and relation.dst != concept:
                continue
            for form in relation.surface_forms():
                score = self._term_score(word, form, layer)
                if score is not None and (best is None or score > best[2]):
                    best = (relation.name, relation.src, score)
        return best

    def _match_label(self, phrase: str, layer: int) -> Optional[Tuple[str, float]]:
        key = phrase.lower()
        if key in self._labels:
            return key, 1.0
        if layer >= 3:
            best: Optional[Tuple[str, float]] = None
            for label in self._labels:
                if abs(len(label) - len(key)) > 3 or label[:1] != key[:1]:
                    continue
                score = string_similarity(key, label)
                if score >= 0.74 and (best is None or score > best[1]):
                    best = (label, score)
            return best
        return None

    def _term_score(self, word: str, form: str, layer: int) -> Optional[float]:
        w, f = word.lower(), form.lower()
        if w == f or lemmatize(w) == lemmatize(f):
            return 1.0
        if layer >= 2:
            score = term_similarity(w, f, self.context.thesaurus)
            if score >= 0.95:
                return score
        if layer >= 3:
            score = string_similarity(w, f)
            if score >= 0.74:
                return score * 0.9
        return None

    # -- templates --------------------------------------------------------------

    def _interpret_at(self, question: str, layer: int) -> List[SparqlInterpretation]:
        tokens = [t for t in tokenize(question) if t.kind != "punct"]
        words = [t.norm for t in tokens]
        readings: List[SparqlInterpretation] = []
        readings.extend(self._template_count(words, layer))
        readings.extend(self._template_property_filter(tokens, layer))
        readings.extend(self._template_property_of_entity(tokens, layer))
        readings.extend(self._template_relation_traversal(tokens, layer))
        readings.extend(self._template_class_listing(words, layer))
        return readings

    def _find_concept(self, words: Sequence[str], layer: int):
        for i, word in enumerate(words):
            if is_stopword(word):
                continue
            match = self._match_concept(word, layer)
            if match:
                return i, match
        return None

    def _template_count(self, words, layer) -> List[SparqlInterpretation]:
        if not (
            ("how" in words and "many" in words)
            or ("number" in words and "of" in words)
        ):
            return []
        found = self._find_concept(words, layer)
        if not found:
            return []
        concept_pos, (concept, score) = found
        entity = Var("x")
        patterns = [TriplePattern(entity, RDF_TYPE, class_uri(concept))]
        filters, extra_score, consumed = self._value_filters(words, concept, entity, layer)
        consumed = [words[concept_pos], "how", "many", "number", "there", *consumed]
        query = SparqlQuery(
            select=(), patterns=tuple(patterns + filters[0]), filters=tuple(filters[1]),
            count=entity,
        )
        return [
            SparqlInterpretation(
                query, score * extra_score, layer, f"count of {concept}",
                tuple(consumed),
            )
        ]

    def _value_filters(self, words, concept, entity, layer):
        """Detect one '<prop> <value>' or label-value condition.

        Returns ``((patterns, filters), score, consumed_words)``.
        """
        patterns: List[TriplePattern] = []
        filters: List[Filter] = []
        score = 1.0
        consumed: List[str] = []
        # property + literal value ("with genre drama")
        for i, word in enumerate(words[:-1]):
            if is_stopword(word):
                continue
            prop = self._match_property(word, concept, layer)
            if not prop or prop[0] != concept:
                continue
            value_token = words[i + 1]
            if is_stopword(value_token):
                continue
            value: Any = value_token
            try:
                value = float(value_token)
                if value.is_integer():
                    value = int(value)
            except ValueError:
                pass
            var = Var("v0")
            patterns.append(TriplePattern(entity, property_uri(concept, prop[1]), var))
            filters.append(Filter(var, "=", value))
            score = prop[2]
            consumed = [word, value_token]
            break
        return (patterns, filters), score, consumed

    def _template_class_listing(self, words, layer) -> List[SparqlInterpretation]:
        found = self._find_concept(words, layer)
        if not found:
            return []
        concept_pos, (concept, score) = found
        entity, label = Var("x"), Var("label")
        (extra_patterns, extra_filters), extra_score, consumed = self._value_filters(
            words, concept, entity, layer
        )
        if not extra_patterns:
            return []  # bare listings are not questions
        patterns = [
            TriplePattern(entity, RDF_TYPE, class_uri(concept)),
            TriplePattern(entity, RDFS_LABEL, label),
            *extra_patterns,
        ]
        query = SparqlQuery(
            select=(label,), patterns=tuple(patterns), filters=tuple(extra_filters)
        )
        return [
            SparqlInterpretation(
                query, 0.9 * score * extra_score, layer, f"listing of {concept}",
                tuple([words[concept_pos], "show", "list", *consumed]),
            )
        ]

    def _template_property_filter(self, tokens, layer) -> List[SparqlInterpretation]:
        # "<class> with <prop> (over|under)? <number>"
        words = [t.norm for t in tokens]
        found = self._find_concept(words, layer)
        if not found:
            return []
        _, (concept, concept_score) = found
        for i, token in enumerate(tokens):
            if not token.is_number:
                continue
            op = "="
            if i > 0 and words[i - 1] in ("over", "above", "than", "exceeding"):
                op = ">"
            elif i > 0 and words[i - 1] in ("under", "below", "fewer"):
                op = "<"
            prop = None
            for j in range(max(0, i - 3), i):
                if is_stopword(words[j]):
                    continue
                candidate = self._match_property(words[j], concept, layer)
                if candidate and candidate[0] == concept:
                    prop = candidate
            if prop is None:
                continue
            entity, label, value_var = Var("x"), Var("label"), Var("v")
            number = float(token.numeric_value)
            query = SparqlQuery(
                select=(label,),
                patterns=(
                    TriplePattern(entity, RDF_TYPE, class_uri(concept)),
                    TriplePattern(entity, RDFS_LABEL, label),
                    TriplePattern(entity, property_uri(concept, prop[1]), value_var),
                ),
                filters=(Filter(value_var, op, number),),
            )
            consumed = [w for w in words if not is_stopword(w)]
            return [
                SparqlInterpretation(
                    query,
                    concept_score * prop[2],
                    layer,
                    f"{concept} filtered by {prop[1]} {op} {number:g}",
                    tuple(consumed),
                )
            ]
        return []

    def _template_property_of_entity(self, tokens, layer) -> List[SparqlInterpretation]:
        # "what is the <prop> of <entity label>"
        words = [t.norm for t in tokens]
        if "of" not in words:
            return []
        split = words.index("of")
        head, tail_tokens = words[:split], tokens[split + 1 :]
        tail_words = [t.norm for t in tail_tokens if not is_stopword(t.norm)]
        if not tail_words:
            return []
        label_match = None
        for length in range(min(4, len(tail_words)), 0, -1):
            phrase = " ".join(tail_words[:length])
            label_match = self._match_label(phrase, layer)
            if label_match:
                break
        if not label_match:
            return []
        prop = None
        for word in head:
            if is_stopword(word):
                continue
            prop = self._match_property(word, None, layer) or prop
        if prop is None:
            return []
        entity, value = Var("e"), Var("v")
        original_label = self._original_label(label_match[0])
        query = SparqlQuery(
            select=(value,),
            patterns=(
                TriplePattern(entity, RDFS_LABEL, original_label),
                TriplePattern(entity, property_uri(prop[0], prop[1]), value),
            ),
        )
        return [
            SparqlInterpretation(
                query,
                prop[2] * label_match[1],
                layer,
                f"{prop[0]}.{prop[1]} of {original_label!r}",
                tuple([*head, *label_match[0].split()]),
            )
        ]

    def _template_relation_traversal(self, tokens, layer) -> List[SparqlInterpretation]:
        # "<classA> whose <relation> is <entity label>"
        words = [t.norm for t in tokens]
        found = self._find_concept(words, layer)
        if not found:
            return []
        concept_pos, (concept, concept_score) = found
        relation = None
        for word in words[concept_pos + 1 :]:
            if is_stopword(word):
                continue
            relation = self._match_relation(word, concept, layer)
            if relation:
                break
        if relation is None:
            return []
        tail = [w for w in words[concept_pos + 1 :] if not is_stopword(w)]
        label_match = None
        for start in range(len(tail)):
            for length in range(min(4, len(tail) - start), 0, -1):
                phrase = " ".join(tail[start : start + length])
                label_match = self._match_label(phrase, layer)
                if label_match:
                    break
            if label_match:
                break
        if not label_match:
            return []
        entity, target, label = Var("x"), Var("t"), Var("label")
        original_label = self._original_label(label_match[0])
        query = SparqlQuery(
            select=(label,),
            patterns=(
                TriplePattern(entity, RDF_TYPE, class_uri(concept)),
                TriplePattern(entity, RDFS_LABEL, label),
                TriplePattern(entity, relation_uri(relation[0]), target),
                TriplePattern(target, RDFS_LABEL, original_label),
            ),
        )
        return [
            SparqlInterpretation(
                query,
                concept_score * relation[2] * label_match[1],
                layer,
                f"{concept} via {relation[0]} to {original_label!r}",
                tuple(
                    [words[concept_pos], "whose", "is"]
                    + [w for w in tail if relation is not None]
                    + label_match[0].split()
                ),
            )
        ]

    def _original_label(self, lowered: str) -> str:
        subjects = self._labels.get(lowered, [])
        if subjects:
            for triple in self.store.match(subjects[0], RDFS_LABEL):
                if str(triple.object).lower() == lowered:
                    return str(triple.object)
        return lowered
