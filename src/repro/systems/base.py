"""Shared evidence annotation for entity-based systems.

Every entity-based system the survey covers (§4.1) begins the same way:
match spans of the question against (a) metadata — here, ontology
concepts and properties with their synonyms — and (b) data values.  The
systems differ in which resources they may use (SODA: indexes only;
NaLIR: parse tree + similarity; ATHENA: full ontology) and in how the
matched evidence becomes a query; those differences live in each system
module, while the span-matching engine lives here.

:class:`EntityAnnotator` produces :class:`AnnotatedQuestion` objects
holding tagged tokens, detected NL patterns, resolved annotations, and —
crucially for NaLIR's clarification dialogs and TEMPLAR's log boosting —
the *alternative* candidates for each ambiguous span.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.evidence import EvidenceAnnotation, resolve_overlaps
from repro.core.intermediate import PropertyRef
from repro.core.pipeline import NLIDBContext
from repro.core.schema_index import SchemaIndex
from repro.nlp.matching import phrase_similarity, term_similarity
from repro.nlp.patterns import PatternMatch, detect_patterns
from repro.nlp.pos import tag_text
from repro.nlp.similarity import string_similarity
from repro.nlp.stopwords import is_stopword
from repro.nlp.tokenizer import Token
from repro.ontology.relaxation import QueryRelaxer
from repro.perf.profiler import profile_stage


@dataclass
class AnnotatedQuestion:
    """The annotated form of one question."""

    question: str
    tokens: List[Token]
    patterns: List[PatternMatch]
    annotations: List[EvidenceAnnotation]
    candidates: List[EvidenceAnnotation] = field(default_factory=list)

    def alternatives_for(
        self, annotation: EvidenceAnnotation, margin: float = 0.15
    ) -> List[EvidenceAnnotation]:
        """Other candidates for the same span within ``margin`` score.

        These are what NaLIR shows the user to clarify, and what TEMPLAR
        re-ranks with query-log statistics.
        """
        out = []
        for cand in self.candidates:
            if cand.span != annotation.span or cand == annotation:
                continue
            if cand.kind == annotation.kind and cand.target == annotation.target:
                continue
            if annotation.score - cand.score <= margin:
                out.append(cand)
        out.sort(key=lambda a: -a.score)
        return out

    def annotations_of(self, kind: str) -> List[EvidenceAnnotation]:
        """Kept annotations of one kind, in question order."""
        return [a for a in self.annotations if a.kind == kind]

    def replace(
        self, old: EvidenceAnnotation, new: EvidenceAnnotation
    ) -> "AnnotatedQuestion":
        """A copy with one kept annotation swapped (for alternatives)."""
        swapped = [new if a == old else a for a in self.annotations]
        return AnnotatedQuestion(
            self.question, self.tokens, self.patterns, swapped, self.candidates
        )


class EntityAnnotator:
    """Matches question spans against ontology elements and data values."""

    def __init__(
        self,
        use_metadata: bool = True,
        use_values: bool = True,
        fuzzy_values: bool = True,
        similarity_threshold: float = 0.75,
        relaxer: Optional[QueryRelaxer] = None,
        max_span: int = 3,
        schema_index: bool = True,
    ):
        self.use_metadata = use_metadata
        self.use_values = use_values
        self.fuzzy_values = fuzzy_values
        self.similarity_threshold = similarity_threshold
        self.relaxer = relaxer
        self.max_span = max_span
        #: escape hatch: ``False`` ignores the context's schema index and
        #: always scores every ontology element (brute force)
        self.schema_index = schema_index

    # -- public API -----------------------------------------------------------

    def annotate(self, question: str, context: NLIDBContext) -> AnnotatedQuestion:
        """Produce the full annotation of ``question`` over ``context``."""
        with profile_stage("tokenize"):
            tokens = tag_text(question)
        patterns = detect_patterns(tokens)
        candidates: List[EvidenceAnnotation] = []
        index = self._index_for(context)
        with profile_stage("match"):
            for start, end, words in self._spans(tokens):
                if self.use_metadata:
                    candidates.extend(
                        self._metadata_candidates(start, end, words, context, index)
                    )
            if self.use_values:
                for start, end, words in self._value_spans(tokens):
                    candidates.extend(
                        self._value_candidates(start, end, words, tokens, context)
                    )
            if self.fuzzy_values and self.use_values:
                matched = {i for c in candidates for i in range(c.start, c.end)}
                candidates.extend(
                    self._fuzzy_value_candidates(tokens, matched, context, index)
                )
            if self.relaxer is not None and self.use_values:
                matched = {i for c in candidates for i in range(c.start, c.end)}
                candidates.extend(self._relaxed_candidates(tokens, matched, context))
        candidates = self._contextual_boost(candidates)
        kept = resolve_overlaps(candidates)
        return AnnotatedQuestion(question, tokens, patterns, kept, candidates)

    def _index_for(self, context: NLIDBContext) -> Optional[SchemaIndex]:
        """The context's schema index, when both sides allow it.

        ``None`` (→ brute force) when the annotator's own escape hatch is
        off, the context was built with ``use_schema_index=False``, or
        the similarity threshold is below the index's soundness floor.
        """
        if not self.schema_index:
            return None
        if not SchemaIndex.supports_threshold(self.similarity_threshold):
            return None
        return getattr(context, "schema_index", None)

    # -- contextual disambiguation ---------------------------------------------------

    @staticmethod
    def _contextual_boost(
        candidates: List[EvidenceAnnotation],
    ) -> List[EvidenceAnnotation]:
        """Boost property/value candidates whose concept is independently
        mentioned nearby.

        When "name" matches ``employee.name`` and ``department.name``
        equally, the mention of "employees" two tokens earlier should
        decide it — this positional evidence-aggregation is the ranking
        device all entity-based systems share (§4.1).
        """
        concept_spans = [
            (c.start, c.end, c.payload)
            for c in candidates
            if c.kind == "concept"
        ]
        if not concept_spans:
            return candidates
        boosted: List[EvidenceAnnotation] = []
        for cand in candidates:
            concept = None
            if cand.kind == "property":
                concept = cand.payload.concept
            elif cand.kind == "value":
                concept = cand.payload[0].concept
            if concept is None:
                boosted.append(cand)
                continue
            bonus = 0.0
            nearest = None
            for start, end, name in concept_spans:
                if name != concept:
                    continue
                if start == cand.start and end == cand.end:
                    continue  # the span itself, not context
                gap = max(0, cand.start - end, start - cand.end)
                nearest = gap if nearest is None else min(nearest, gap)
            if nearest is not None:
                bonus += 0.05
                if nearest <= 3:
                    bonus += 0.08 * (1.0 - nearest / 4.0)
            if bonus:
                boosted.append(
                    EvidenceAnnotation(
                        cand.start,
                        cand.end,
                        cand.kind,
                        cand.target,
                        cand.score + bonus,
                        cand.payload,
                    )
                )
            else:
                boosted.append(cand)
        return boosted

    # -- span enumeration ---------------------------------------------------------

    def _spans(self, tokens: List[Token]):
        n = len(tokens)
        for length in range(min(self.max_span, n), 0, -1):
            for start in range(0, n - length + 1):
                window = tokens[start : start + length]
                if any(t.kind == "punct" for t in window):
                    continue
                words = [t.norm for t in window]
                if all(is_stopword(w) or not w for w in words):
                    continue
                # numbers participate in comparisons, not entity matching
                if length == 1 and window[0].kind in ("number", "date"):
                    continue
                yield start, start + length, words

    def _value_spans(self, tokens: List[Token]):
        """Span enumeration for value lookup: punctuation *inside* a span
        is tolerated (and skipped) so "Dr. Emil Ito" matches as one value."""
        n = len(tokens)
        for length in range(min(self.max_span + 2, n), 0, -1):
            for start in range(0, n - length + 1):
                window = tokens[start : start + length]
                if window[0].kind == "punct" or window[-1].kind == "punct":
                    continue
                words = [t.norm for t in window if t.kind != "punct"]
                if not words or all(is_stopword(w) or not w for w in words):
                    continue
                if len(words) == 1 and window[0].kind in ("number", "date"):
                    continue
                yield start, start + length, words

    # -- metadata candidates ----------------------------------------------------------

    @staticmethod
    def _all_metadata_targets(context: NLIDBContext):
        """Every (kind, element) pair in brute-force iteration order.

        The schema index hands back the same pairs as an order-preserving
        pruned subsequence, which is what makes the two paths produce
        identical candidate lists.
        """
        for concept in context.ontology.concepts.values():
            yield "concept", concept
            for prop in concept.properties.values():
                yield "property", prop

    def _metadata_candidates(
        self,
        start: int,
        end: int,
        words: List[str],
        context: NLIDBContext,
        index: Optional[SchemaIndex] = None,
    ) -> List[EvidenceAnnotation]:
        out: List[EvidenceAnnotation] = []
        # Multi-token metadata spans must be stopword-free: otherwise
        # "list the accounts" degenerates to matching "accounts" alone
        # while claiming (and winning) the longer span.
        if len(words) > 1 and any(is_stopword(w) for w in words):
            return out
        content = words
        if index is None:
            targets = self._all_metadata_targets(context)
        else:
            targets = index.candidate_targets(words, self.similarity_threshold)
        for kind, element in targets:
            score = self._surface_score(content, element.surface_forms(), context)
            if score < self.similarity_threshold:
                continue
            if kind == "concept":
                out.append(
                    EvidenceAnnotation(
                        start, end, "concept", element.name, score, payload=element.name
                    )
                )
            else:
                ref = PropertyRef(element.concept, element.name)
                out.append(
                    EvidenceAnnotation(
                        start, end, "property", str(ref), score, payload=ref
                    )
                )
        return out

    def _surface_score(
        self, words: List[str], forms: Set[str], context: NLIDBContext
    ) -> float:
        best = 0.0
        for form in forms:
            if len(words) == 1:
                score = term_similarity(words[0], form, context.thesaurus)
            else:
                form_words = form.split()
                if len(form_words) < len(words):
                    continue  # a span must not exceed the form it names
                # every span word must find a counterpart in the form —
                # otherwise "minimum year" would ride on "year" alone and
                # swallow the aggregation cue next to it
                covered = all(
                    max(
                        term_similarity(qw, fw, context.thesaurus)
                        for fw in form_words
                    )
                    >= 0.5
                    for qw in words
                )
                if not covered:
                    continue
                score = phrase_similarity(words, form, context.thesaurus)
            best = max(best, score)
        return best

    # -- value candidates --------------------------------------------------------------

    def _value_candidates(
        self,
        start: int,
        end: int,
        words: List[str],
        tokens: List[Token],
        context: NLIDBContext,
    ) -> List[EvidenceAnnotation]:
        out: List[EvidenceAnnotation] = []
        hits = context.index.values.lookup_phrase(words)
        for entry in hits:
            ref = self._ref_for(entry.table, entry.column, context)
            if ref is None:
                continue
            out.append(
                EvidenceAnnotation(
                    start,
                    end,
                    "value",
                    f"value {entry.value!r} in {ref}",
                    entry.score,
                    payload=(ref, entry.value),
                )
            )
        return out

    def _fuzzy_value_candidates(
        self,
        tokens: List[Token],
        matched: Set[int],
        context: NLIDBContext,
        index: Optional[SchemaIndex] = None,
    ) -> List[EvidenceAnnotation]:
        out: List[EvidenceAnnotation] = []
        for i, token in enumerate(tokens):
            if i in matched or token.kind not in ("word", "quoted"):
                continue
            if len(token.norm) < 4 or is_stopword(token.norm):
                continue
            best: Optional[Tuple[float, PropertyRef, object]] = None
            if index is not None:
                # The bucketed pool replays the brute-force scan over a
                # pruned subsequence: same iteration order (global
                # ordinals), same pre-filters (first char, |Δlen| ≤ 3),
                # same strict-> tie-break, so `best` comes out identical.
                for _, table_name, column_name, value, text in index.fuzzy_value_pool(
                    token.norm
                ):
                    ref = self._ref_for(table_name, column_name, context)
                    if ref is None:
                        continue
                    score = string_similarity(token.norm, text)
                    if score >= 0.74 and (best is None or score > best[0]):
                        best = (score, ref, value)
            else:
                for table in context.database.tables:
                    for column in table.schema.text_columns():
                        ref = self._ref_for(table.name, column.name, context)
                        if ref is None:
                            continue
                        for value in table.distinct_values(column.name):
                            text = str(value)
                            if abs(len(text) - len(token.norm)) > 3:
                                continue
                            if text[:1].lower() != token.norm[:1]:
                                continue
                            score = string_similarity(token.norm, text)
                            if score >= 0.74 and (best is None or score > best[0]):
                                best = (score, ref, value)
            if best is not None:
                score, ref, value = best
                out.append(
                    EvidenceAnnotation(
                        i,
                        i + 1,
                        "value",
                        f"value {value!r} in {ref} (fuzzy)",
                        score * 0.9,
                        payload=(ref, value),
                    )
                )
        return out

    def _relaxed_candidates(
        self, tokens: List[Token], matched: Set[int], context: NLIDBContext
    ) -> List[EvidenceAnnotation]:
        """Lei-et-al.-style relaxation: expand unmatched spans through the
        external KB and retry the value index."""
        out: List[EvidenceAnnotation] = []
        assert self.relaxer is not None
        n = len(tokens)
        for length in range(min(self.max_span, n), 0, -1):
            for start in range(0, n - length + 1):
                end = start + length
                if any(i in matched for i in range(start, end)):
                    continue
                window = tokens[start:end]
                if any(t.kind == "punct" for t in window):
                    continue
                phrase = " ".join(t.norm for t in window)
                if is_stopword(phrase):
                    continue
                for proposal in self.relaxer.relax(phrase):
                    hits = context.index.values.lookup(proposal.term)
                    for entry in hits:
                        ref = self._ref_for(entry.table, entry.column, context)
                        if ref is None:
                            continue
                        out.append(
                            EvidenceAnnotation(
                                start,
                                end,
                                "value",
                                f"value {entry.value!r} in {ref} "
                                f"(relaxed via {proposal.source})",
                                proposal.confidence * entry.score,
                                payload=(ref, entry.value),
                            )
                        )
                    if any(h for h in hits):
                        break  # best-confidence proposal that hits wins
        return out

    @staticmethod
    def _ref_for(
        table: str, column: str, context: NLIDBContext
    ) -> Optional[PropertyRef]:
        pair = context.mapping.property_for_column(table, column)
        if pair is None:
            return None
        return PropertyRef(pair[0], pair[1])
