"""ATHENA-style ontology-driven system [29, 44, 46] (§4.1 of the survey).

ATHENA "maps parts of the natural language query to concepts and
relationships in an ontology that captures the semantics of a relational
database ... uses an intermediate query language before translating the
input query into SQL", with "intelligent domain reasoning" for join
inference, and — through its BI extension (Sen et al. [46]) — handles "a
collection of BI queries with nesting".

Faithful ingredients:

- evidence annotation against the ontology (concepts, properties,
  declared synonyms) and data values,
- interpretation through the OQL intermediate language
  (:mod:`repro.core.intermediate`) — never directly to SQL,
- Steiner-tree join inference over the ontology relation graph
  (:class:`~repro.ontology.reasoner.Reasoner`),
- the BI nesting repertoire: scalar "above the average X" sub-queries,
  relationship IN sub-queries for fan-out filters, NOT IN anti-joins for
  "have no <concept>",
- optional query relaxation over an external KB (Lei et al. [28]) for
  colloquial terminology — pass a ``relaxer``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext, NLIDBSystem
from repro.core.registry import register
from repro.ontology.relaxation import QueryRelaxer

from .base import EntityAnnotator
from .interpreter import InterpreterConfig, SemanticInterpreter


class AthenaSystem(NLIDBSystem):
    """Ontology evidence → OQL → SQL; the full-capability entity system."""

    name = "athena"
    family = "entity"

    def __init__(
        self,
        relaxer: Optional[QueryRelaxer] = None,
        similarity_threshold: float = 0.75,
        fuzzy_values: bool = True,
    ):
        self.annotator = EntityAnnotator(
            use_metadata=True,
            use_values=True,
            fuzzy_values=fuzzy_values,
            similarity_threshold=similarity_threshold,
            relaxer=relaxer,
        )
        self.interpreter = SemanticInterpreter(InterpreterConfig.full(), self.name)

    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        annotated = self.annotator.annotate(question, context)
        return self.interpreter.interpret(annotated, context)


class AthenaNoBISystem(AthenaSystem):
    """Ablation: ATHENA without the BI/nesting extension [44 without 46].

    Used by experiment E1 to separate the base ontology system from its
    nested-query extension.
    """

    name = "athena-nobi"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.interpreter = SemanticInterpreter(InterpreterConfig.parsing(), self.name)


register("athena", AthenaSystem)
register("athena-nobi", AthenaNoBISystem)
