"""From annotated question to OQL: the shared semantic interpreter.

This module turns an :class:`~repro.systems.base.AnnotatedQuestion` into
:class:`~repro.core.intermediate.OQLQuery` candidates.  A
:class:`InterpreterConfig` gates which constructs a system may emit —
that gating *is* the survey's §3 capability story:

- SODA-style keyword systems: value/metadata equality only,
- SQAK-style pattern systems: + aggregation / GROUP BY / ORDER BY,
- NaLIR-style parse systems: + multi-table joins,
- ATHENA-BI: + nested sub-queries (scalar-average comparisons,
  relationship IN/NOT IN sub-queries).

The construction rules implement the recurring devices of the
entity-based literature: adjacency between a property mention and a value
marks a condition; comparison cues bind the nearest numeric property to
the nearest number; "above the average X" becomes a scalar sub-query;
"have no <concept>" becomes an anti-join; join structure is delegated to
the ontology reasoner (Steiner trees / FK chains).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.evidence import EvidenceAnnotation
from repro.core.intermediate import (
    OQLCondition,
    OQLHasCondition,
    OQLItem,
    OQLOrder,
    OQLQuery,
    OQLUnionQuery,
    PropertyRef,
)
from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext
from repro.core.ranking import rank
from repro.nlp.patterns import PatternMatch
from repro.sqldb.types import DataType

from .base import AnnotatedQuestion


@dataclass(frozen=True)
class InterpreterConfig:
    """Capability gates for the shared interpreter."""

    allow_aggregation: bool = True
    allow_group_by: bool = True
    allow_order_limit: bool = True
    allow_join: bool = True
    allow_nested: bool = True
    allow_union: bool = False
    abstain_on_cross_concept: bool = False
    require_full_coverage: bool = False
    max_interpretations: int = 3

    @classmethod
    def keyword(cls) -> "InterpreterConfig":
        """SODA-tier: simple selection only (§3 'keyword-based').

        Keyword systems must ground *every* content keyword in an index
        hit — an unmatched keyword means the interpretation would
        silently drop part of the question, so they abstain instead
        (the high-precision / low-coverage profile of §4.1/§6).
        """
        return cls(
            allow_aggregation=False,
            allow_group_by=False,
            allow_order_limit=False,
            allow_join=False,
            allow_nested=False,
            abstain_on_cross_concept=True,
            require_full_coverage=True,
        )

    @classmethod
    def pattern(cls) -> "InterpreterConfig":
        """SQAK-tier: + aggregation patterns, still single-table."""
        return cls(
            allow_join=False,
            allow_nested=False,
            abstain_on_cross_concept=True,
            require_full_coverage=True,
        )

    @classmethod
    def parsing(cls) -> "InterpreterConfig":
        """NaLIR-tier: + joins, no nesting."""
        return cls(allow_nested=False)

    @classmethod
    def full(cls) -> "InterpreterConfig":
        """ATHENA-BI tier: everything, including compound queries."""
        return cls(allow_union=True)


class _BuildState:
    """Accumulates clauses for one interpretation, then assembles OQL."""

    def __init__(self, annotated: AnnotatedQuestion, context: NLIDBContext):
        self.annotated = annotated
        self.context = context
        self.conditions: List[Any] = []
        self.agg_items: List[OQLItem] = []
        self.group_refs: List[PropertyRef] = []
        self.order_by: List[OQLOrder] = []
        self.limit: Optional[int] = None
        self.count_requested = False
        self.count_concept: Optional[str] = None
        self.nested_required = False
        self.has_no_targets: List[Tuple[str, EvidenceAnnotation]] = []
        self.consumed_patterns: Set[int] = set()
        self.consumed_annotations: Set[int] = set()
        self.suppressed_annotations: Set[int] = set()
        self.extra_covered: Set[int] = set()
        self._evidence: List[EvidenceAnnotation] = []

    # -- lookup helpers ----------------------------------------------------------

    @property
    def patterns(self) -> List[PatternMatch]:
        return self.annotated.patterns

    def pattern_indices(self, kind: str) -> List[int]:
        return [
            i
            for i, p in enumerate(self.patterns)
            if p.kind == kind and i not in self.consumed_patterns
        ]

    def annotation_indices(self, kind: str) -> List[int]:
        return [
            i
            for i, a in enumerate(self.annotated.annotations)
            if a.kind == kind and i not in self.consumed_annotations
        ]

    def prop_dtype(self, ref: PropertyRef) -> DataType:
        return self.context.ontology.concept(ref.concept).property(ref.prop).dtype

    def is_numeric(self, ref: PropertyRef) -> bool:
        return self.prop_dtype(ref).is_numeric

    def nearest_property(
        self,
        position: int,
        before: bool,
        window: int,
        numeric: Optional[bool] = None,
        skip_consumed: bool = True,
        dtype: Optional[DataType] = None,
    ) -> Optional[int]:
        """Index of the nearest property annotation around ``position``."""
        best: Optional[Tuple[int, int]] = None  # (distance, index)
        for i, ann in enumerate(self.annotated.annotations):
            if ann.kind != "property":
                continue
            if skip_consumed and i in self.consumed_annotations:
                continue
            ref: PropertyRef = ann.payload
            if dtype is not None and self.prop_dtype(ref) is not dtype:
                continue
            if numeric is True and not self.is_numeric(ref):
                continue
            if numeric is False and self.is_numeric(ref):
                continue
            if before:
                if ann.end > position:
                    continue
                distance = position - ann.end
            else:
                if ann.start < position:
                    continue
                distance = ann.start - position
            if distance > window:
                continue
            if best is None or distance < best[0]:
                best = (distance, i)
        return best[1] if best else None

    def number_after(self, position: int, window: int = 5):
        """First number/date token at or after ``position``."""
        tokens = self.annotated.tokens
        for i in range(position, min(position + window, len(tokens))):
            token = tokens[i]
            if token.is_number:
                return i, float(token.numeric_value)
            if token.kind == "date":
                return i, token.norm
        return None

    def mark_used(self, annotation_index: int) -> EvidenceAnnotation:
        self.consumed_annotations.add(annotation_index)
        ann = self.annotated.annotations[annotation_index]
        self._evidence.append(ann)
        return ann

    def add_pattern_evidence(self, pattern_index: int) -> None:
        self.consumed_patterns.add(pattern_index)
        pattern = self.patterns[pattern_index]
        self._evidence.append(
            EvidenceAnnotation(
                pattern.start,
                pattern.end,
                "pattern",
                f"{pattern.kind}={pattern.value}",
                0.95,
            )
        )

    def used_evidence(self) -> List[EvidenceAnnotation]:
        return list(self._evidence)

    # -- evidence queries ----------------------------------------------------------

    def mentioned_concepts(self) -> List[str]:
        seen: List[str] = []
        for i, ann in enumerate(self.annotated.annotations):
            if i in self.suppressed_annotations:
                continue
            concept = _concept_of(ann)
            if concept is not None and concept not in seen:
                seen.append(concept)
        return seen

    def primary_concept(self) -> Optional[str]:
        for kind in ("concept", "property", "value"):
            for ann in self.annotated.annotations:
                if ann.kind == kind:
                    return _concept_of(ann)
        return None

    def spans_multiple_concepts(self, primary: str) -> bool:
        return any(c != primary for c in self.mentioned_concepts())

    def drop_foreign_evidence(self, primary: str) -> None:
        for i, ann in enumerate(self.annotated.annotations):
            concept = _concept_of(ann)
            if ann.kind != "concept" and concept is not None and concept != primary:
                self.consumed_annotations.add(i)
        self.conditions = [
            c
            for c in self.conditions
            if isinstance(c, OQLHasCondition)
            or c.ref is None
            or c.ref.concept == primary
        ]

    def has_any_evidence(self) -> bool:
        return bool(
            self.conditions
            or self.agg_items
            or self.count_requested
            or self.group_refs
            or self.order_by
            or self.limit is not None
        )

    def sole_measure(self) -> Optional[PropertyRef]:
        """The unique numeric property of the primary concept, if unique."""
        primary = self.primary_concept()
        if primary is None:
            return None
        measures = [
            PropertyRef(p.concept, p.name)
            for p in self.context.ontology.inherited_properties(primary)
            if p.dtype.is_numeric and p.name.lower() != "id"
        ]
        if len(measures) == 1:
            return measures[0]
        return None

    def sole_property_of_type(self, dtype: DataType) -> Optional[PropertyRef]:
        """The unique property of ``dtype`` on the primary concept
        ("hired after <date>" needs no explicit column mention when the
        concept has exactly one date attribute)."""
        primary = self.primary_concept()
        if primary is None:
            return None
        matching = [
            PropertyRef(p.concept, p.name)
            for p in self.context.ontology.inherited_properties(primary)
            if p.dtype is dtype
        ]
        if len(matching) == 1:
            return matching[0]
        return None

    # -- assembly -----------------------------------------------------------------

    def assemble(self, primary: str, config: InterpreterConfig) -> Optional[OQLQuery]:
        for target, evidence in self.has_no_targets:
            if target == primary:
                continue
            try:
                self.context.reasoner.relation_path(primary, target)
            except Exception:
                continue
            self.conditions.append(OQLHasCondition(target, negated=True))
            self._evidence.append(evidence)

        if config.allow_nested:
            self._subquery_rewrite(primary)

        select: List[OQLItem] = []
        if self.count_requested:
            select.append(OQLItem(count_all=True, concept=self.count_concept))
        select.extend(self.agg_items)
        for ref in self.group_refs:
            if all(item.ref != ref for item in select):
                select.insert(0, OQLItem(ref=ref))
        if not select:
            select.extend(self._projection_properties())
        if not select:
            display = self._default_display(primary)
            if display is None:
                return None
            select.append(OQLItem(ref=display))

        distinct = self._needs_distinct(primary, select)
        return OQLQuery(
            select=tuple(select),
            conditions=tuple(self.conditions),
            group_by=tuple(self.group_refs),
            order_by=tuple(self.order_by),
            limit=self.limit,
            distinct=distinct,
        )

    def _projection_properties(self) -> List[OQLItem]:
        items: List[OQLItem] = []
        for i in self.annotation_indices("property"):
            ann = self.annotated.annotations[i]
            ref: PropertyRef = ann.payload
            if ref in self.group_refs:
                continue
            self.mark_used(i)
            items.append(OQLItem(ref=ref))
        return items

    def _default_display(self, concept: str) -> Optional[PropertyRef]:
        props = self.context.ontology.inherited_properties(concept)
        for prop in props:
            if prop.dtype is DataType.TEXT:
                return PropertyRef(prop.concept, prop.name)
        if props:
            return PropertyRef(props[0].concept, props[0].name)
        return None

    def _needs_distinct(self, primary: str, select: List[OQLItem]) -> bool:
        if self.count_requested or self.agg_items or self.group_refs:
            return False
        # relationship sub-queries project one row per primary entity;
        # DISTINCT makes the answer a set of display values, matching the
        # fan-out join reading of the same question
        if any(isinstance(c, OQLHasCondition) for c in self.conditions):
            return True
        touched: Set[str] = set()
        for cond in self.conditions:
            if isinstance(cond, OQLCondition) and cond.ref is not None:
                touched.add(cond.ref.concept)
        projection_concepts = {i.ref.concept for i in select if i.ref is not None}
        for concept in touched:
            if concept in projection_concepts:
                continue
            try:
                if self.context.reasoner.fans_out(primary, concept):
                    return True
            except Exception:
                continue
        return False

    def _subquery_rewrite(self, primary: str) -> None:
        """Rewrite fan-out cross-concept conditions into IN sub-queries.

        A condition on a "many"-side concept (orders, when asking about
        customers) duplicates primary rows under a join; expressing it as
        ``key IN (SELECT fk FROM many WHERE ...)`` keeps one row per
        primary entity — ATHENA-BI's nesting behaviour [46].
        """
        blocked = {item.ref.concept for item in self.agg_items if item.ref}
        blocked.update(ref.concept for ref in self.group_refs)
        blocked.update(o.item.ref.concept for o in self.order_by if o.item.ref)
        grouped: Dict[str, List[OQLCondition]] = {}
        kept: List[Any] = []
        for cond in self.conditions:
            if (
                isinstance(cond, OQLCondition)
                and cond.ref is not None
                and cond.ref.concept != primary
                and cond.ref.concept not in blocked
                and cond.subquery is None
            ):
                try:
                    fans = self.context.reasoner.fans_out(primary, cond.ref.concept)
                except Exception:
                    fans = False
                if fans:
                    grouped.setdefault(cond.ref.concept, []).append(cond)
                    continue
            kept.append(cond)
        for concept, conds in grouped.items():
            kept.append(OQLHasCondition(concept, conditions=tuple(conds)))
        self.conditions = kept


def _concept_of(ann: EvidenceAnnotation) -> Optional[str]:
    if ann.kind == "concept":
        return ann.payload
    if ann.kind == "property":
        return ann.payload.concept
    if ann.kind == "value":
        return ann.payload[0].concept
    return None


class SemanticInterpreter:
    """Builds ranked OQL interpretations from annotations."""

    def __init__(self, config: InterpreterConfig, system_name: str = "interpreter"):
        self.config = config
        self.system_name = system_name

    # -- public API ------------------------------------------------------------

    def interpret(
        self, annotated: AnnotatedQuestion, context: NLIDBContext
    ) -> List[Interpretation]:
        """Ranked interpretations (empty when the gates forbid the
        constructs the question needs, or nothing matched)."""
        base = self._build(annotated, context)
        interpretations = [base] if base else []
        if self.config.allow_union and base is not None:
            union = self._union_variant(base, annotated)
            if union is not None:
                # The conjunctive reading ANDs the disjuncts; the union
                # reading supersedes it, so it goes first — with equal
                # evidence the stable sort keeps it ranked ahead.
                interpretations.insert(0, union)
        for variant in self._ambiguity_variants(annotated, context):
            if len(interpretations) >= self.config.max_interpretations:
                break
            interpretations.append(variant)
        return rank(interpretations, annotated.tokens)

    # -- construction ------------------------------------------------------------

    def _build(
        self, annotated: AnnotatedQuestion, context: NLIDBContext
    ) -> Optional[Interpretation]:
        state = _BuildState(annotated, context)

        if self.config.allow_nested:
            self._detect_nested_average(state)
        self._collect_value_conditions(state)
        self._collect_comparisons(state)
        if self.config.allow_nested:
            self._detect_has_no(state)
        if self.config.allow_aggregation:
            self._collect_aggregations(state)
        if self.config.allow_group_by:
            self._collect_group_by(state)
        if self.config.allow_order_limit:
            self._collect_order_limit(state)

        primary = state.primary_concept()
        if primary is None:
            return None

        # Concept mentions are evidence too — they anchor the primary
        # concept and contribute to question coverage in ranking.
        for i in state.annotation_indices("concept"):
            state.mark_used(i)

        if not self.config.allow_join and state.spans_multiple_concepts(primary):
            if self.config.abstain_on_cross_concept:
                return None
            state.drop_foreign_evidence(primary)
            if not state.has_any_evidence():
                return None

        if not self.config.allow_nested and state.nested_required:
            return None

        # Keyword/pattern systems have no parse to justify a bare-concept
        # listing: without any condition, aggregate or explicit attribute
        # evidence they abstain (the high-precision profile of §4.1/§6).
        if self.config.abstain_on_cross_concept:
            has_projection_evidence = bool(state.annotation_indices("property"))
            if not (state.has_any_evidence() or has_projection_evidence):
                return None

        query = state.assemble(primary, self.config)
        if query is None:
            return None

        if self.config.require_full_coverage and not self._fully_covered(state):
            return None

        return Interpretation(
            self.system_name,
            0.0,
            oql=query,
            evidence=state.used_evidence(),
            explanation=f"primary concept: {primary}",
        )

    def _union_variant(
        self, base: Interpretation, annotated: AnnotatedQuestion
    ) -> Optional[Interpretation]:
        """"... with X v1 or with Y v2" → one UNION branch per disjunct.

        ``_collect_value_conditions`` ANDs every value condition, which
        is the wrong reading when an "or" token separates value mentions
        bound to *different* properties.  Each branch keeps one disjunct
        (plus all shared clauses); the compound dedups rows satisfying
        both.  Only the full (ATHENA-BI) tier emits this.
        """
        oql = base.oql
        if not isinstance(oql, OQLQuery):
            return None
        values = [a for a in annotated.annotations if a.kind == "value"]
        or_positions = {
            i for i, token in enumerate(annotated.tokens) if token.norm == "or"
        }
        if len(values) < 2 or not or_positions:
            return None
        disjuncts: Optional[Tuple[OQLCondition, OQLCondition]] = None
        for left, right in zip(values, values[1:]):
            if not (set(range(left.end, right.start)) & or_positions):
                continue
            left_ref, left_value = left.payload
            right_ref, right_value = right.payload
            if left_ref == right_ref:
                continue
            disjuncts = (
                OQLCondition(left_ref, "=", left_value),
                OQLCondition(right_ref, "=", right_value),
            )
            break
        if disjuncts is None or any(d not in oql.conditions for d in disjuncts):
            return None
        branches = tuple(
            replace(
                oql,
                conditions=tuple(
                    c for c in oql.conditions if c == keep or c not in disjuncts
                ),
            )
            for keep in disjuncts
        )
        return Interpretation(
            self.system_name,
            0.0,
            oql=OQLUnionQuery(branches),
            evidence=list(base.evidence),
            explanation=base.explanation + "; union of 'or' disjuncts",
        )

    def _fully_covered(self, state: _BuildState) -> bool:
        """Whether every content token is grounded in used evidence or a
        consumed pattern span."""
        from repro.core.ranking import content_indices

        covered = set()
        for evidence in state.used_evidence():
            covered.update(range(evidence.start, evidence.end))
        for pi in state.consumed_patterns:
            pattern = state.patterns[pi]
            covered.update(range(pattern.start, pattern.end))
        covered |= state.extra_covered
        return all(i in covered for i in content_indices(state.annotated.tokens))

    def _ambiguity_variants(
        self, annotated: AnnotatedQuestion, context: NLIDBContext
    ) -> List[Interpretation]:
        """Alternative readings obtained by swapping the most ambiguous
        annotation for its runner-up candidate."""
        variants: List[Interpretation] = []
        for annotation in annotated.annotations:
            if annotation.kind not in ("property", "value", "concept"):
                continue
            for alternative in annotated.alternatives_for(annotation)[:1]:
                swapped = annotated.replace(annotation, alternative)
                built = self._build(swapped, context)
                if built is not None:
                    built.explanation += f" (alternative for span {annotation.span})"
                    variants.append(built)
        return variants

    # -- clause collectors -----------------------------------------------------------

    def _detect_nested_average(self, state: _BuildState) -> None:
        """"... X above the average X" → scalar AVG sub-query."""
        for ci in state.pattern_indices("comparison"):
            comparison = state.patterns[ci]
            if comparison.value not in (">", "<", ">=", "<="):
                continue
            for ai in state.pattern_indices("aggregation"):
                agg = state.patterns[ai]
                if agg.value not in ("avg", "max", "min", "sum"):
                    continue
                if not (0 <= agg.start - comparison.end <= 2):
                    continue
                lhs_i = state.nearest_property(
                    comparison.start, before=True, window=4, numeric=True
                )
                rhs_i = state.nearest_property(
                    agg.end, before=False, window=4, numeric=True
                )
                if lhs_i is None or rhs_i is None:
                    continue
                lhs = state.annotated.annotations[lhs_i].payload
                rhs = state.annotated.annotations[rhs_i].payload
                subquery = OQLQuery(select=(OQLItem(ref=rhs, aggregate=agg.value),))
                state.conditions.append(
                    OQLCondition(lhs, comparison.value, subquery=subquery)
                )
                state.nested_required = True
                state.mark_used(lhs_i)
                state.mark_used(rhs_i)
                state.add_pattern_evidence(ci)
                state.add_pattern_evidence(ai)
                for oi in state.pattern_indices("order"):
                    if state.patterns[oi].start == agg.start:
                        state.consumed_patterns.add(oi)
                return

    def _collect_value_conditions(self, state: _BuildState) -> None:
        negations = [state.patterns[i] for i in state.pattern_indices("negation")]
        for i in state.annotation_indices("value"):
            ann = state.annotated.annotations[i]
            ref, value = ann.payload
            negated = any(0 <= ann.start - n.end <= 2 for n in negations)
            condition = OQLCondition(ref, "=", value, negated=negated)
            if condition not in state.conditions:
                state.conditions.append(condition)
            state.mark_used(i)
            # A property mention naming the value's column right before it
            # belongs to the same condition, not to the projection.
            prop_i = state.nearest_property(ann.start, before=True, window=2)
            if prop_i is not None:
                prop_ref = state.annotated.annotations[prop_i].payload
                if prop_ref == ref:
                    state.mark_used(prop_i)

    def _collect_comparisons(self, state: _BuildState) -> None:
        for ci in state.pattern_indices("comparison"):
            comparison = state.patterns[ci]
            if comparison.value == "between":
                self._collect_between(state, ci)
                continue
            if comparison.value == "!=":
                continue  # handled through negation + value conditions
            number = state.number_after(comparison.end)
            if number is None:
                continue
            # a date literal binds to a DATE property, a number to a
            # numeric one ("hired after 2020-01-01" must not hit salary)
            is_date = isinstance(number[1], str)
            kwargs = (
                {"dtype": DataType.DATE} if is_date else {"numeric": True}
            )
            prop_i = state.nearest_property(
                comparison.start, before=True, window=5, **kwargs
            )
            if prop_i is None:
                prop_i = state.nearest_property(
                    number[0] + 1, before=False, window=4, **kwargs
                )
            if prop_i is not None:
                ref = state.annotated.annotations[prop_i].payload
                state.mark_used(prop_i)
            elif is_date:
                ref = state.sole_property_of_type(DataType.DATE)
                if ref is None:
                    continue
            else:
                ref = state.sole_measure()
                if ref is None:
                    continue
            state.conditions.append(OQLCondition(ref, comparison.value, number[1]))
            state.extra_covered.add(number[0])
            state.add_pattern_evidence(ci)

    def _collect_between(self, state: _BuildState, ci: int) -> None:
        comparison = state.patterns[ci]
        first = state.number_after(comparison.end)
        if first is None:
            return
        second = state.number_after(first[0] + 1)
        if second is None:
            return
        prop_i = state.nearest_property(
            comparison.start, before=True, window=5, numeric=True
        )
        if prop_i is None:
            return
        ref = state.annotated.annotations[prop_i].payload
        state.mark_used(prop_i)
        state.conditions.append(OQLCondition(ref, "between", first[1], second[1]))
        state.extra_covered.update((first[0], second[0]))
        state.add_pattern_evidence(ci)

    def _detect_has_no(self, state: _BuildState) -> None:
        for ni in state.pattern_indices("negation"):
            negation = state.patterns[ni]
            if state.annotated.tokens[negation.start].norm not in ("no", "without"):
                continue
            for i in state.annotation_indices("concept"):
                ann = state.annotated.annotations[i]
                if 0 <= ann.start - negation.end <= 1:
                    state.has_no_targets.append((ann.payload, ann))
                    state.consumed_annotations.add(i)
                    state.add_pattern_evidence(ni)
                    state.nested_required = True
                    break

    def _collect_aggregations(self, state: _BuildState) -> None:
        for ci in state.pattern_indices("count"):
            state.count_requested = True
            count = state.patterns[ci]
            # the concept mentioned right after the cue is what is counted
            for i in state.annotation_indices("concept"):
                ann = state.annotated.annotations[i]
                if 0 <= ann.start - count.end <= 3:
                    state.count_concept = ann.payload
                    break
            state.add_pattern_evidence(ci)
        if state.count_requested:
            return
        for ai in state.pattern_indices("aggregation"):
            agg = state.patterns[ai]
            prop_i = state.nearest_property(agg.end, before=False, window=4, numeric=True)
            if prop_i is None:
                # The cue word may itself be (part of) a property mention
                # ("total", the orders column) — then it is no aggregate.
                overlapping = [
                    i
                    for i in state.annotation_indices("property")
                    if state.annotated.annotations[i].start
                    <= agg.start
                    < state.annotated.annotations[i].end
                ]
                if overlapping:
                    continue
                prop_i = state.nearest_property(
                    agg.start, before=True, window=3, numeric=True
                )
            if prop_i is None:
                continue
            ref = state.annotated.annotations[prop_i].payload
            state.mark_used(prop_i)
            item = OQLItem(ref=ref, aggregate=agg.value)
            if item not in state.agg_items:
                state.agg_items.append(item)
            state.add_pattern_evidence(ai)
            # a property annotation sitting on the cue token itself was a
            # misreading of the cue ("total" as orders.total): retire it
            for pi in state.annotation_indices("property"):
                ann = state.annotated.annotations[pi]
                if ann.start <= agg.start < ann.end and pi != prop_i:
                    state.consumed_annotations.add(pi)
                    state.suppressed_annotations.add(pi)
                    state.extra_covered.update(range(ann.start, ann.end))
            for oi in state.pattern_indices("order"):
                if state.patterns[oi].start == agg.start:
                    state.consumed_patterns.add(oi)

    def _collect_group_by(self, state: _BuildState) -> None:
        has_limit = bool(state.pattern_indices("limit"))
        for gi in state.pattern_indices("group_by"):
            if has_limit:
                continue  # "top 3 X by Y" orders rather than groups
            group = state.patterns[gi]
            prop_i = state.nearest_property(group.end, before=False, window=4)
            if prop_i is None:
                continue
            ref = state.annotated.annotations[prop_i].payload
            if any(ref == existing for existing in state.group_refs):
                continue
            if state.is_numeric(ref) and not state.count_requested and not state.agg_items:
                continue  # "increased by 40"-style false positive
            state.group_refs.append(ref)
            state.mark_used(prop_i)
            state.add_pattern_evidence(gi)

    def _collect_order_limit(self, state: _BuildState) -> None:
        for li in state.pattern_indices("limit"):
            limit = state.patterns[li]
            count_text, direction = limit.value.split(":")
            state.limit = int(count_text)
            prop_i = state.nearest_property(
                limit.end, before=False, window=6, numeric=True
            )
            if prop_i is not None:
                ref = state.annotated.annotations[prop_i].payload
                state.mark_used(prop_i)
                state.order_by.append(OQLOrder(OQLItem(ref=ref), direction))
                for gi in state.pattern_indices("group_by"):
                    if 0 <= state.patterns[gi].end - limit.end <= 6:
                        state.consumed_patterns.add(gi)
            state.add_pattern_evidence(li)
            for oi in state.pattern_indices("order"):
                if state.patterns[oi].start == limit.start:
                    state.consumed_patterns.add(oi)
            break  # one limit per question
