"""TR Discover-style guided query construction [49] (§4.1).

TR Discover "uses a feature-based context-free grammar for parsing
natural language queries, also providing query auto-completion.  When a
user starts typing a query segment and selects one of the suggested
lexical entries ... TR Discover suggests the next lexical entries that
are reachable from the selected query part, based on the rules of the
context-free grammar.  The ranking of these suggestions is based on the
nodes centrality in an RDF graph."

Faithful ingredients:

- a small feature-based grammar over ontology vocabulary::

      Q      -> CLASS | CLASS COND
      COND   -> "with" PROP VALUE | "with" PROP CMP NUMBER
              | "whose" REL "is" LABEL
      CMP    -> "over" | "under"

- completion: given a typed prefix, the next grammar-reachable lexical
  entries, ranked by PageRank centrality of the corresponding node in
  the exported RDF graph (frequently-connected entities and properties
  surface first),
- guaranteed interpretability: any fully-derived sentence maps to an
  executable OQL query (`parse_completed`) — the property that makes
  guided construction attractive for precision-critical deployments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from repro.core.intermediate import OQLCondition, OQLItem, OQLQuery, PropertyRef
from repro.core.pipeline import NLIDBContext
from repro.nlp.lemmatizer import singularize
from repro.ontology.builder import pluralize
from repro.rdf import export_rdf
from repro.sqldb.types import DataType


@dataclass(frozen=True)
class Suggestion:
    """One completion proposal."""

    text: str
    kind: str  # "class" | "keyword" | "property" | "relation" | "value" | "label"
    score: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


class TRDiscoverCompleter:
    """Grammar-guided auto-completion over one database's vocabulary."""

    def __init__(self, context: NLIDBContext, max_suggestions: int = 8):
        self.context = context
        self.max_suggestions = max_suggestions
        self._centrality = self._compute_centrality()

    # -- centrality -----------------------------------------------------------

    def _compute_centrality(self) -> Dict[str, float]:
        """PageRank over the exported RDF graph, folded onto lexical
        entries (class/property/relation URIs and value literals)."""
        store = export_rdf(self.context)
        graph = nx.DiGraph()
        for triple in store:
            obj = str(triple.object)
            graph.add_edge(triple.subject, obj)
            # predicate participates as a node so properties earn rank
            graph.add_edge(triple.subject, triple.predicate)
        if graph.number_of_nodes() == 0:
            return {}
        rank = nx.pagerank(graph, alpha=0.85)
        folded: Dict[str, float] = {}
        for node, score in rank.items():
            folded[node] = folded.get(node, 0.0) + score
        return folded

    def _rank_of(self, key: str) -> float:
        return self._centrality.get(key, 0.0)

    # -- completion --------------------------------------------------------------

    def complete(self, prefix: str) -> List[Suggestion]:
        """Next lexical entries reachable from ``prefix``."""
        words = prefix.lower().split()
        state, payload = self._grammar_state(words)
        if state == "start":
            return self._class_suggestions()
        if state == "after_class":
            return [
                Suggestion("with", "keyword", 1.0),
                Suggestion("whose", "keyword", 0.9),
            ]
        if state == "expect_property":
            return self._property_suggestions(payload)
        if state == "expect_value":
            return self._value_suggestions(payload)
        if state == "expect_relation":
            return self._relation_suggestions(payload)
        if state == "expect_is":
            return [Suggestion("is", "keyword", 1.0)]
        if state == "expect_label":
            return self._label_suggestions(payload)
        return []

    def _grammar_state(self, words: List[str]):
        if not words:
            return "start", None
        concept = self._resolve_class(words[0])
        if concept is None:
            return "start", None
        rest = words[1:]
        if not rest:
            return "after_class", concept
        if rest[0] == "with":
            body = rest[1:]
            if not body:
                return "expect_property", concept
            prop = self._resolve_property(concept, body)
            if prop is None:
                return "expect_property", concept
            after = body[len(prop.split()):]
            if not after or after[0] in ("over", "under"):
                return "expect_value", (concept, prop)
            return "complete", None
        if rest[0] == "whose":
            body = rest[1:]
            if not body:
                return "expect_relation", concept
            relation = self._resolve_relation(concept, body)
            if relation is None:
                return "expect_relation", concept
            after = body[len(relation.split()):]
            if not after:
                return "expect_is", (concept, relation)
            if after[0] == "is" and len(after) == 1:
                return "expect_label", (concept, relation)
            return "complete", None
        return "after_class", concept

    # -- suggestion producers ---------------------------------------------------------

    def _class_suggestions(self) -> List[Suggestion]:
        from repro.rdf import class_uri

        out = [
            Suggestion(
                pluralize(c.name), "class", self._rank_of(class_uri(c.name))
            )
            for c in self.context.ontology.concepts.values()
        ]
        out.sort(key=lambda s: (-s.score, s.text))
        return out[: self.max_suggestions]

    def _property_suggestions(self, concept: str) -> List[Suggestion]:
        from repro.rdf import property_uri

        out = [
            Suggestion(
                p.name, "property", self._rank_of(property_uri(concept, p.name))
            )
            for p in self.context.ontology.concept(concept).properties.values()
            if p.name != "id"
        ]
        out.sort(key=lambda s: (-s.score, s.text))
        return out[: self.max_suggestions]

    def _relation_suggestions(self, concept: str) -> List[Suggestion]:
        from repro.rdf import relation_uri

        out = [
            Suggestion(r.name, "relation", self._rank_of(relation_uri(r.name)))
            for r in self.context.ontology.relations
            if r.src == concept or r.dst == concept
        ]
        out.sort(key=lambda s: (-s.score, s.text))
        return out[: self.max_suggestions]

    def _value_suggestions(self, payload) -> List[Suggestion]:
        concept, prop_name = payload
        prop = self.context.ontology.concept(concept).property(prop_name)
        if prop.dtype.is_numeric:
            return [
                Suggestion("over", "keyword", 1.0),
                Suggestion("under", "keyword", 0.9),
            ]
        table, column = self.context.mapping.column_of(concept, prop_name)
        values = self.context.database.table(table).distinct_values(column)
        out = [
            Suggestion(str(v), "value", self._rank_of(str(v))) for v in values
        ]
        out.sort(key=lambda s: (-s.score, s.text))
        return out[: self.max_suggestions]

    def _label_suggestions(self, payload) -> List[Suggestion]:
        concept, relation_name = payload
        relation = next(
            r for r in self.context.ontology.relations if r.name == relation_name
        )
        other = relation.dst if relation.src == concept else relation.src
        display = next(
            (
                p
                for p in self.context.ontology.concept(other).properties.values()
                if p.dtype is DataType.TEXT
            ),
            None,
        )
        if display is None:
            return []
        table, column = self.context.mapping.column_of(other, display.name)
        labels = self.context.database.table(table).distinct_values(column)
        out = [Suggestion(str(v), "label", self._rank_of(str(v))) for v in labels]
        out.sort(key=lambda s: (-s.score, s.text))
        return out[: self.max_suggestions]

    # -- resolution helpers -------------------------------------------------------------

    def _resolve_class(self, word: str) -> Optional[str]:
        single = singularize(word)
        for concept in self.context.ontology.concepts.values():
            if single in {singularize(f) for f in concept.surface_forms()}:
                return concept.name
        return None

    def _resolve_property(self, concept: str, words: List[str]) -> Optional[str]:
        props = self.context.ontology.concept(concept).properties
        for length in range(min(3, len(words)), 0, -1):
            phrase = " ".join(words[:length])
            if phrase in props:
                return props[phrase].name
        return None

    def _resolve_relation(self, concept: str, words: List[str]) -> Optional[str]:
        names = {
            r.name
            for r in self.context.ontology.relations
            if r.src == concept or r.dst == concept
        }
        for length in range(min(3, len(words)), 0, -1):
            phrase = " ".join(words[:length])
            if phrase in names:
                return phrase
        return None

    # -- guaranteed interpretation ---------------------------------------------------

    def parse_completed(self, sentence: str) -> Optional[OQLQuery]:
        """OQL for a grammar-derived sentence; ``None`` off-grammar."""
        words = sentence.lower().split()
        if not words:
            return None
        concept = self._resolve_class(words[0])
        if concept is None:
            return None
        display = self._display_ref(concept)
        if display is None:
            return None
        select = (OQLItem(ref=display),)
        rest = words[1:]
        if not rest:
            return OQLQuery(select=select)
        if rest[0] == "with":
            body = rest[1:]
            prop = self._resolve_property(concept, body)
            if prop is None:
                return None
            after = body[len(prop.split()):]
            ref = PropertyRef(concept, prop)
            if not after:
                return None
            if after[0] in ("over", "under") and len(after) >= 2:
                try:
                    number = float(after[1])
                except ValueError:
                    return None
                op = ">" if after[0] == "over" else "<"
                return OQLQuery(select=select, conditions=(OQLCondition(ref, op, number),))
            value = " ".join(after)
            typed_value = self._type_value(concept, prop, value)
            return OQLQuery(select=select, conditions=(OQLCondition(ref, "=", typed_value),))
        if rest[0] == "whose":
            body = rest[1:]
            relation = self._resolve_relation(concept, body)
            if relation is None:
                return None
            after = body[len(relation.split()):]
            if not after or after[0] != "is" or len(after) < 2:
                return None
            label = " ".join(after[1:])
            rel = next(r for r in self.context.ontology.relations if r.name == relation)
            other = rel.dst if rel.src == concept else rel.src
            other_display = self._display_ref(other)
            if other_display is None:
                return None
            original = self._original_value(other_display, label)
            return OQLQuery(
                select=select,
                conditions=(OQLCondition(other_display, "=", original),),
            )
        return None

    def _display_ref(self, concept: str) -> Optional[PropertyRef]:
        for prop in self.context.ontology.concept(concept).properties.values():
            if prop.dtype is DataType.TEXT:
                return PropertyRef(concept, prop.name)
        props = list(self.context.ontology.concept(concept).properties.values())
        if props:
            return PropertyRef(concept, props[0].name)
        return None

    def _type_value(self, concept: str, prop: str, value: str):
        dtype = self.context.ontology.concept(concept).property(prop).dtype
        if dtype.is_numeric:
            try:
                return float(value)
            except ValueError:
                return value
        return self._original_value(PropertyRef(concept, prop), value)

    def _original_value(self, ref: PropertyRef, lowered: str):
        table, column = self.context.mapping.column_of(ref.concept, ref.prop)
        for value in self.context.database.table(table).distinct_values(column):
            if str(value).lower() == lowered:
                return value
        return lowered
