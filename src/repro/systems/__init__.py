"""The surveyed NLIDB systems, one working representative per family.

Entity-based (§4.1): :class:`~repro.systems.keyword_soda.SodaSystem`,
:class:`~repro.systems.pattern_sqak.SqakSystem`,
:class:`~repro.systems.parse_nalir.NalirSystem`,
:class:`~repro.systems.ontology_athena.AthenaSystem` (and its no-BI
ablation), :class:`~repro.systems.templar.TemplarSystem`.

ML-based (§4.2): :mod:`repro.systems.neural` (Seq2SQL, SQLNet, TypeSQL,
DBPal) behind :class:`~repro.systems.neural.NeuralSketchSystem`.

Hybrid (§4.3): :class:`~repro.systems.hybrid_quest.QuestSystem`,
:class:`~repro.systems.hybrid.HybridSystem`.

RDF-side (§4.1 over :mod:`repro.rdf`):
:class:`~repro.systems.sparql_bela.BelaSystem` (layered SPARQL
templates) and :class:`~repro.systems.trdiscover.TRDiscoverCompleter`
(grammar-guided auto-completion ranked by RDF-graph centrality).

The shared machinery — evidence annotation and the OQL-building semantic
interpreter — lives in :mod:`~repro.systems.base` and
:mod:`~repro.systems.interpreter`.
"""

from .base import AnnotatedQuestion, EntityAnnotator
from .hybrid import HybridSystem
from .hybrid_quest import ElementHMM, QuestSystem
from .interpreter import InterpreterConfig, SemanticInterpreter
from .keyword_soda import SodaSystem
from .ontology_athena import AthenaNoBISystem, AthenaSystem
from .parse_nalir import NalirSystem
from .pattern_sqak import SqakSystem
from .precis import DNFClause, PrecisAnswer, PrecisSystem, to_dnf
from .quick import QuickSystem
from .sparql_bela import BelaSystem, SparqlInterpretation
from .templar import QueryLog, TemplarSystem
from .trdiscover import Suggestion, TRDiscoverCompleter

__all__ = [
    "AnnotatedQuestion", "EntityAnnotator",
    "InterpreterConfig", "SemanticInterpreter",
    "SodaSystem", "SqakSystem", "NalirSystem",
    "AthenaSystem", "AthenaNoBISystem",
    "TemplarSystem", "QueryLog",
    "QuestSystem", "ElementHMM",
    "HybridSystem",
    "BelaSystem", "SparqlInterpretation",
    "TRDiscoverCompleter", "Suggestion",
    "QuickSystem",
    "PrecisSystem", "PrecisAnswer", "DNFClause", "to_dnf",
]
