"""QUEST-style hybrid system [12] (§4.3 of the survey).

QUEST "first chooses the entities that are relevant to the keywords in
the query based on Hidden Markov Models (HMM), trained on a data set of
previous searches ...  The relationships between the entities extracted
from the query are then computed based on heuristic rules that consider
the relationships of those entities in the database.  The candidate
interpretations are ranked based on the aggregate confidence scores
returned by the HMM."

Faithful ingredients:

- keyword → schema-element mapping decoded with a first-order HMM whose
  *transition* probabilities are estimated from previous searches (pairs
  of question + validated SQL) and whose *emission* probabilities come
  from the annotator's match scores,
- Viterbi decoding picks the globally coherent mapping (elements that
  historically co-occur win over locally-tied alternatives),
- relationships are then filled in by the rule-based interpreter
  (heuristics over the FK/ontology graph),
- interpretation confidence aggregates the HMM path score.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.evidence import EvidenceAnnotation
from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext, NLIDBSystem
from repro.core.registry import register
from repro.sqldb import parse_select
from repro.sqldb.ast import ColumnRef

from .base import AnnotatedQuestion, EntityAnnotator
from .interpreter import InterpreterConfig, SemanticInterpreter

_SMOOTHING = 0.5


def _element_key(annotation: EvidenceAnnotation) -> Optional[str]:
    """Stable state identity of an annotation's schema element."""
    if annotation.kind == "concept":
        return f"concept:{annotation.payload}"
    if annotation.kind == "property":
        return f"property:{annotation.payload}"
    if annotation.kind == "value":
        return f"property:{annotation.payload[0]}"  # values live on their column
    return None


class ElementHMM:
    """First-order HMM over schema elements with add-k smoothing."""

    def __init__(self):
        self.transitions: Dict[str, Counter] = defaultdict(Counter)
        self.state_counts: Counter = Counter()
        self.trained_pairs = 0

    def observe_sequence(self, states: Sequence[str]) -> None:
        """Count one gold mapping sequence."""
        for state in states:
            self.state_counts[state] += 1
        for a, b in zip(states, states[1:]):
            self.transitions[a][b] += 1
            self.trained_pairs += 1

    def log_transition(self, prev: Optional[str], state: str) -> float:
        """Smoothed log P(state | prev); uniform prior when untrained."""
        if prev is None:
            total = sum(self.state_counts.values())
            count = self.state_counts.get(state, 0)
            vocab = max(len(self.state_counts), 1)
            return math.log((count + _SMOOTHING) / (total + _SMOOTHING * vocab))
        row = self.transitions.get(prev, Counter())
        total = sum(row.values())
        vocab = max(len(self.state_counts), 1)
        return math.log((row.get(state, 0) + _SMOOTHING) / (total + _SMOOTHING * vocab))


class QuestSystem(NLIDBSystem):
    """HMM keyword mapping + rule-based relationship inference."""

    name = "quest"
    family = "hybrid"

    def __init__(self):
        self.annotator = EntityAnnotator(
            use_metadata=True,
            use_values=True,
            fuzzy_values=True,
            similarity_threshold=0.7,
        )
        self.interpreter = SemanticInterpreter(InterpreterConfig.full(), self.name)
        self.hmm = ElementHMM()

    # -- training on previous searches ------------------------------------------------

    def fit(self, history: Sequence, context: NLIDBContext) -> int:
        """Learn transitions from (question, gold SQL) pairs.

        For each past search, the candidate annotations confirmed by the
        gold SQL (their column/table appears in it) form the observed
        state sequence — QUEST's "validated by the user" signal.
        """
        trained = 0
        for example in history:
            gold_elements = self._gold_elements(example.sql, context)
            if not gold_elements:
                continue
            annotated = self.annotator.annotate(example.question, context)
            sequence: List[str] = []
            for cand in sorted(annotated.candidates, key=lambda a: a.start):
                key = _element_key(cand)
                if key is not None and key in gold_elements:
                    if not sequence or sequence[-1] != key:
                        sequence.append(key)
            if len(sequence) >= 1:
                self.hmm.observe_sequence(sequence)
                trained += 1
        return trained

    def _gold_elements(self, sql: str, context: NLIDBContext) -> set:
        try:
            stmt = parse_select(sql)
        except Exception:
            return set()
        elements = set()
        statements = [stmt] + stmt.subqueries()
        for block in statements:
            for table in block.referenced_tables():
                for concept in context.mapping.concepts_on_table(table):
                    elements.add(f"concept:{concept}")
            for expr in block.all_expressions():
                if isinstance(expr, ColumnRef):
                    for table in block.referenced_tables():
                        pair = context.mapping.property_for_column(table, expr.column)
                        if pair:
                            elements.add(f"property:{pair[0]}.{pair[1]}")
        return elements

    # -- interpretation ---------------------------------------------------------------

    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        annotated = self.annotator.annotate(question, context)
        decoded, path_score = self._viterbi(annotated)
        interpretations = self.interpreter.interpret(decoded, context)
        for interpretation in interpretations:
            # aggregate the HMM path confidence into the ranking score
            interpretation.confidence = 0.7 * interpretation.confidence + 0.3 * path_score
        return sorted(interpretations, key=lambda i: -i.confidence)

    def _viterbi(self, annotated: AnnotatedQuestion) -> Tuple[AnnotatedQuestion, float]:
        """Re-pick one candidate per span with Viterbi over the HMM."""
        spans: Dict[Tuple[int, int], List[EvidenceAnnotation]] = {}
        for kept in annotated.annotations:
            if kept.kind not in ("concept", "property", "value"):
                continue
            options = [kept] + annotated.alternatives_for(kept, margin=0.3)
            spans[kept.span] = options
        ordered_spans = sorted(spans)
        if not ordered_spans:
            return annotated, 0.5
        # Viterbi over span positions
        trellis: List[Dict[int, Tuple[float, Optional[int]]]] = []
        for t, span in enumerate(ordered_spans):
            options = spans[span]
            column: Dict[int, Tuple[float, Optional[int]]] = {}
            for j, option in enumerate(options):
                key = _element_key(option)
                emission = math.log(max(min(option.score, 1.0), 1e-6))
                if t == 0:
                    score = emission + self.hmm.log_transition(None, key or "?")
                    column[j] = (score, None)
                else:
                    best: Optional[Tuple[float, int]] = None
                    prev_options = spans[ordered_spans[t - 1]]
                    for i, prev in enumerate(prev_options):
                        prev_key = _element_key(prev)
                        candidate_score = (
                            trellis[t - 1][i][0]
                            + emission
                            + self.hmm.log_transition(prev_key or "?", key or "?")
                        )
                        if best is None or candidate_score > best[0]:
                            best = (candidate_score, i)
                    assert best is not None
                    column[j] = best
            trellis.append(column)
        # backtrack
        last = max(trellis[-1], key=lambda j: trellis[-1][j][0])
        choice = [last]
        for t in range(len(ordered_spans) - 1, 0, -1):
            choice.append(trellis[t][choice[-1]][1])
        choice.reverse()
        final_score = trellis[-1][last][0]
        result = annotated
        for t, span in enumerate(ordered_spans):
            chosen = spans[span][choice[t]]
            current = next(a for a in result.annotations if a.span == span)
            if chosen != current:
                result = result.replace(current, chosen)
        normalized = 1.0 / (1.0 + math.exp(-final_score / max(len(ordered_spans), 1) - 1.0))
        return result, normalized


register("quest", QuestSystem)
