"""DBPal-style synthetic training-data generation [9, 56].

DBPal "avoids manually labeling large training data sets by synthetically
generating a training set that only requires minimal annotations in the
database.  DBPal uses the database schema and query templates to describe
NL/SQL-pairs", followed by *augmentation* (paraphrasing) to cover
linguistic variation.

:func:`generate_training_set` is that pipeline: template instantiation
straight off a schema (no human labels), then paraphrase augmentation via
:class:`~repro.bench.paraphrase.Paraphraser`.  :class:`DBPalModel` is a
SQLNet-style learner trained purely on such synthetic data — experiment
E6 measures how augmentation closes the low-data gap.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bench.paraphrase import Paraphraser
from repro.sqldb.database import Database
from repro.sqldb.table import Table

from .models import SQLNetModel
from .sketch import Condition, QuerySketch


class _SyntheticExample:
    """Duck-typed example (question + sketch) for the model trainers."""

    __slots__ = ("question", "sketch")

    def __init__(self, question: str, sketch: QuerySketch):
        self.question = question
        self.sketch = sketch

    @property
    def table(self) -> str:
        return self.sketch.table


def generate_training_set(
    database: Database,
    size: int,
    seed: int = 0,
    augment: bool = True,
    augmentation_factor: int = 2,
) -> List[_SyntheticExample]:
    """Template-generated NL/SQL pairs from the schema alone.

    With ``augment`` each template instance additionally yields
    ``augmentation_factor`` level-1/2 paraphrases, multiplying linguistic
    coverage without any extra annotation — DBPal's central trick.
    """
    from repro.ontology.builder import humanize, pluralize

    rng = np.random.default_rng(seed)
    paraphraser = Paraphraser(seed=seed + 1)
    out: List[_SyntheticExample] = []
    tables = [t for t in database.tables if t.schema.text_columns() and len(t) > 0]
    attempts = 0
    while len(out) < size and attempts < size * 40:
        attempts += 1
        table = tables[int(rng.integers(len(tables)))]
        example = _instantiate_template(table, rng)
        if example is None:
            continue
        out.append(example)
        if augment:
            for level in (1, 2)[: max(0, augmentation_factor)]:
                if len(out) >= size:
                    break
                out.append(
                    _SyntheticExample(
                        paraphraser.paraphrase(example.question, level), example.sketch
                    )
                )
    return out[:size]


def _instantiate_template(table: Table, rng: np.random.Generator) -> Optional[_SyntheticExample]:
    from repro.ontology.builder import humanize, pluralize

    schema = table.schema
    text = schema.text_columns()
    numeric = [c for c in schema if c.dtype.is_numeric and not c.primary_key]
    if not text:
        return None
    nouns = pluralize(humanize(table.name))
    kind = int(rng.integers(4))
    if kind == 0:  # selection with one text condition
        sel = text[int(rng.integers(len(text)))]
        others = [c for c in text if c.name != sel.name] or text
        cond_col = others[int(rng.integers(len(others)))]
        values = table.distinct_values(cond_col.name)
        if not values:
            return None
        value = values[int(rng.integers(len(values)))]
        question = f"show the {humanize(sel.name)} of {nouns} with {humanize(cond_col.name)} {value}"
        sketch = QuerySketch(table.name, sel.name, "", (Condition(cond_col.name, "=", value),))
    elif kind == 1:  # count with one condition
        cond_col = text[int(rng.integers(len(text)))]
        values = table.distinct_values(cond_col.name)
        if not values:
            return None
        value = values[int(rng.integers(len(values)))]
        question = f"how many {nouns} have {humanize(cond_col.name)} {value}"
        sketch = QuerySketch(table.name, text[0].name, "count", (Condition(cond_col.name, "=", value),))
    elif kind == 2:  # aggregate over numeric column
        if not numeric:
            return None
        measure = numeric[int(rng.integers(len(numeric)))]
        agg = ["sum", "avg", "min", "max"][int(rng.integers(4))]
        words = {"sum": "total", "avg": "average", "min": "minimum", "max": "maximum"}
        question = f"what is the {words[agg]} {humanize(measure.name)} of {nouns}"
        sketch = QuerySketch(table.name, measure.name, agg, ())
    else:  # numeric comparison condition
        if not numeric:
            return None
        measure = numeric[int(rng.integers(len(numeric)))]
        values = [v for v in table.column_values(measure.name) if v is not None]
        if len(values) < 3:
            return None
        threshold = round(float(np.percentile(values, 50)), 2)
        op = [">", "<"][int(rng.integers(2))]
        word = "more than" if op == ">" else "less than"
        sel = text[int(rng.integers(len(text)))]
        value_text = str(int(threshold)) if float(threshold).is_integer() else repr(threshold)
        question = (
            f"show the {humanize(sel.name)} of {nouns} with "
            f"{humanize(measure.name)} {word} {value_text}"
        )
        sketch = QuerySketch(
            table.name, sel.name, "", (Condition(measure.name, op, float(threshold)),)
        )
    return _SyntheticExample(question, sketch)


class DBPalModel(SQLNetModel):
    """SQLNet-style learner trained on schema-synthesized data only."""

    name = "dbpal"

    def fit_from_schema(
        self,
        database: Database,
        size: int = 400,
        seed: int = 0,
        augment: bool = True,
    ):
        """Generate a synthetic training set from ``database`` and train."""
        examples = generate_training_set(database, size, seed=seed, augment=augment)
        return self.fit(examples, database)
