"""Shared featurization for the neural text-to-SQL models.

Translates the neural architectures of §4.2 into a feature space small
enough for numpy training while keeping their distinguishing signals:

- *column attention* (SQLNet [59]): a column-conditioned attention over
  question tokens, summarized as the cosine between the attended question
  vector and the column embedding;
- *type features* (TypeSQL [62]): agreement between a candidate value's
  type and the column's declared type, membership of the value in the
  column's data, and how many columns share that value (entity
  ambiguity) — exposed separately so SQLNet can run with them zeroed;
- condition candidates: rather than decoding free text, models score an
  enumerated space of ``(column, op, value)`` candidates built from
  number tokens and data-value span matches — the pointer mechanism of
  Seq2SQL [69] in tabular form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.nlp.embeddings import HashedEmbeddings, cosine
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.patterns import detect_patterns
from repro.nlp.tokenizer import Token, tokenize
from repro.sqldb.index import split_identifier
from repro.sqldb.schema import Column, TableSchema
from repro.sqldb.table import Table
from repro.sqldb.types import DataType

from .sketch import Condition

#: fixed sizes of the feature blocks
QUESTION_DIM_MULT = 2  # [mean; max] pooling
COLUMN_FEATURES = 14
CONDITION_BASE_FEATURES = 10
CONDITION_TYPE_FEATURES = 4


@dataclass
class ConditionCandidate:
    """One scored (column, op, value) proposal for the WHERE clause."""

    column: str
    op: str
    value: Any
    position: int
    base_features: np.ndarray
    type_features: np.ndarray

    def as_condition(self) -> Condition:
        """Convert to a sketch condition."""
        return Condition(self.column, self.op, self.value)

    def matches_gold(self, gold: Sequence[Condition]) -> bool:
        """Whether this candidate equals one of the gold conditions."""
        mine = Condition(self.column, self.op, self.value).normalized()
        return any(g.normalized() == mine for g in gold)


class Featurizer:
    """Embedding-backed feature extraction, shared across models."""

    def __init__(self, dim: int = 32):
        self.dim = dim
        self.embeddings = HashedEmbeddings(dim)
        # Unsmoothed vectors for question pooling: cue words must stay
        # separable from their synonym-ring neighbours ("number" vs
        # "amount") or the aggregate classifier cannot tell them apart.
        self.raw_embeddings = HashedEmbeddings(dim, smooth=False)
        self._value_maps: Dict[int, Tuple[Table, Dict[str, Set[str]]]] = {}

    # -- question ------------------------------------------------------------

    def question_tokens(self, question: str) -> List[Token]:
        """Tokenized question (no tagging needed here)."""
        return [t for t in tokenize(question) if t.kind != "punct"]

    def question_features(self, tokens: Sequence[Token]) -> np.ndarray:
        """[mean; max]-pooled token embeddings (2 * dim)."""
        if not tokens:
            return np.zeros(2 * self.dim)
        matrix = np.stack([self.raw_embeddings.vector(t.norm) for t in tokens])
        return np.concatenate([matrix.mean(axis=0), matrix.max(axis=0)])

    # -- columns ---------------------------------------------------------------

    def _column_embedding(self, column: Column) -> np.ndarray:
        words = split_identifier(column.name) or [column.name.lower()]
        return self.embeddings.sentence_vector(words)

    def column_features(
        self, tokens: Sequence[Token], column: Column, schema: TableSchema
    ) -> np.ndarray:
        """Fixed-size feature vector for (question, column)."""
        col_emb = self._column_embedding(column)
        tok_embs = [self.embeddings.vector(t.norm) for t in tokens] or [np.zeros(self.dim)]
        sims = [cosine(e, col_emb) for e in tok_embs]
        mean_q = np.mean(tok_embs, axis=0)
        col_words = set(split_identifier(column.name)) | {
            s.lower() for s in column.synonyms
        }
        q_lemmas = {lemmatize(t.norm) for t in tokens}
        overlap = (
            sum(1 for w in col_words if lemmatize(w) in q_lemmas) / max(len(col_words), 1)
        )
        attended = self._attended_vector(tok_embs, col_emb)
        dtype_onehot = [
            1.0 if column.dtype is dt else 0.0
            for dt in (DataType.INTEGER, DataType.FLOAT, DataType.TEXT, DataType.DATE, DataType.BOOLEAN)
        ]
        # where in the question the column is (lemma-)mentioned: the
        # selected column is usually the first one named
        mention_positions = [
            i
            for i, t in enumerate(tokens)
            if lemmatize(t.norm) in {lemmatize(w) for cw in col_words for w in cw.split()}
        ]
        n = max(len(tokens), 1)
        earliest = 1.0 - mention_positions[0] / n if mention_positions else 0.0
        mentioned = 1.0 if mention_positions else 0.0
        features = [
            float(max(sims)),
            float(np.mean(sims)),
            float(cosine(mean_q, col_emb)),
            float(cosine(attended, col_emb)),
            overlap,
            earliest,
            mentioned,
            1.0 if column.primary_key else 0.0,
            1.0 if column.dtype.is_numeric else 0.0,
            *dtype_onehot,
        ]
        assert len(features) == COLUMN_FEATURES
        return np.array(features)

    def _attended_vector(self, tok_embs: List[np.ndarray], col_emb: np.ndarray) -> np.ndarray:
        """SQLNet-style column attention over question tokens."""
        scores = np.array([float(np.dot(e, col_emb)) for e in tok_embs]) * 4.0
        shifted = scores - scores.max()
        weights = np.exp(shifted)
        weights = weights / weights.sum()
        return np.sum([w * e for w, e in zip(weights, tok_embs)], axis=0)

    def select_matrix(self, tokens: Sequence[Token], schema: TableSchema) -> np.ndarray:
        """Stacked column features for the select pointer (one row per
        column, in schema order)."""
        return np.stack(
            [self.column_features(tokens, column, schema) for column in schema]
        )

    # -- condition candidates ------------------------------------------------------

    def _value_map(self, table: Table) -> Dict[str, Set[str]]:
        """value (lower, punct-stripped) → set of text columns holding it."""
        cached = self._value_maps.get(id(table))
        # keep a reference to the table alongside the cache entry: id()
        # values can be recycled after garbage collection, which would
        # alias a new table onto a stale map
        if cached is not None and cached[0] is table:
            return cached[1]
        mapping: Dict[str, Set[str]] = {}
        for column in table.schema.text_columns():
            for value in table.distinct_values(column.name):
                key = _strip(str(value).lower())
                mapping.setdefault(key, set()).add(column.name)
        self._value_maps[id(table)] = (table, mapping)
        return mapping

    def condition_candidates(
        self, tokens: Sequence[Token], table: Table
    ) -> List[ConditionCandidate]:
        """Enumerate and featurize all (column, op, value) proposals."""
        out: List[ConditionCandidate] = []
        patterns = detect_patterns(list(tokens))
        comparisons = [p for p in patterns if p.kind == "comparison"]
        out.extend(self._numeric_candidates(tokens, table, comparisons))
        out.extend(self._text_candidates(tokens, table))
        return out

    def _numeric_candidates(self, tokens, table, comparisons) -> List[ConditionCandidate]:
        out = []
        numeric_columns = [c for c in table.schema if c.dtype.is_numeric]
        for i, token in enumerate(tokens):
            if not token.is_number:
                continue
            value = float(token.numeric_value)
            op, cue_flags = "=", [0.0, 0.0, 1.0]
            for comparison in comparisons:
                # pattern positions refer to the same filtered token list
                if comparison.value in (">", ">=") and 0 <= i - comparison.end <= 1:
                    op, cue_flags = ">", [1.0, 0.0, 0.0]
                elif comparison.value in ("<", "<=") and 0 <= i - comparison.end <= 1:
                    op, cue_flags = "<", [0.0, 1.0, 0.0]
            for column in numeric_columns:
                mention = self._mention_score(tokens, i, column)
                values = [
                    v for v in table.column_values(column.name) if v is not None
                ]
                lo, hi = (min(values), max(values)) if values else (0.0, 0.0)
                in_range = 1.0 if values and lo <= value <= hi else 0.0
                rel = 0.0
                if values and hi > lo:
                    rel = float(np.clip((value - lo) / (hi - lo), 0.0, 1.0))
                base = np.array(
                    [
                        mention,
                        in_range,
                        rel,
                        *cue_flags,
                        1.0,  # numeric candidate flag
                        0.0,  # text candidate flag
                        min(i / max(len(tokens), 1), 1.0),
                        1.0,
                    ]
                )
                exact_member = 1.0 if any(
                    abs(float(v) - value) < 1e-9 for v in values
                ) else 0.0
                type_feats = np.array(
                    [
                        1.0,  # value type (number) matches numeric column
                        exact_member,
                        1.0 if (value.is_integer() and column.dtype is DataType.INTEGER) else 0.0,
                        1.0,
                    ]
                )
                out.append(
                    ConditionCandidate(column.name, op, value, i, base, type_feats)
                )
        return out

    def _text_candidates(self, tokens, table) -> List[ConditionCandidate]:
        out = []
        value_map = self._value_map(table)
        n = len(tokens)
        claimed: Set[Tuple[int, int]] = set()
        for length in range(min(5, n), 0, -1):
            for start in range(0, n - length + 1):
                span = (start, start + length)
                if any(
                    s < span[1] and span[0] < e for (s, e) in claimed
                ) and length == 1:
                    continue
                window = tokens[start : start + length]
                phrase = _strip(" ".join(t.norm for t in window))
                columns = value_map.get(phrase)
                if not columns:
                    continue
                claimed.add(span)
                ambiguity = 1.0 / len(columns)
                for column_name in sorted(columns):
                    column = table.schema.column(column_name)
                    value = self._original_value(table, column_name, phrase)
                    mention = self._mention_score(tokens, start, column)
                    base = np.array(
                        [
                            mention,
                            1.0,
                            float(length) / 5.0,
                            0.0,
                            0.0,
                            1.0,  # equality cue
                            0.0,  # numeric flag
                            1.0,  # text flag
                            min(start / max(n, 1), 1.0),
                            1.0,
                        ]
                    )
                    type_feats = np.array([1.0, 1.0, 0.0, ambiguity])
                    out.append(
                        ConditionCandidate(column_name, "=", value, start, base, type_feats)
                    )
        return out

    def _original_value(self, table: Table, column: str, stripped: str) -> Any:
        for value in table.distinct_values(column):
            if _strip(str(value).lower()) == stripped:
                return value
        return stripped

    def _mention_score(self, tokens, position: int, column: Column) -> float:
        """How strongly the column's name is mentioned near ``position``."""
        words = set(split_identifier(column.name)) | {s.lower() for s in column.synonyms}
        lemmas = {lemmatize(w) for word in words for w in word.split()}
        best = 0.0
        for j in range(max(0, position - 4), min(len(tokens), position + 2)):
            if lemmatize(tokens[j].norm) in lemmas:
                distance = abs(j - position)
                best = max(best, 1.0 - 0.15 * distance)
        return best


def _strip(text: str) -> str:
    cleaned = "".join(ch if (ch.isalnum() or ch.isspace()) else " " for ch in text)
    return " ".join(cleaned.split())
