"""Minimal neural-network components in numpy.

The paper-scale replacements for the PyTorch stacks of §4.2: a one-hidden-
layer MLP classifier and a binary scorer, both trained with Adam and
mini-batches.  Sizes here are tiny (inputs ≤ a few hundred dims, hidden
≤ 64), which keeps every experiment's training time in seconds while
preserving the *learning dynamics* the survey's claims are about
(training-data dependence, generalization to unseen phrasings).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


class AdamState:
    """Adam moments for one parameter tensor."""

    def __init__(self, shape: Tuple[int, ...]):
        self.m = np.zeros(shape)
        self.v = np.zeros(shape)
        self.t = 0

    def step(self, grad: np.ndarray, lr: float, beta1=0.9, beta2=0.999, eps=1e-8) -> np.ndarray:
        """One Adam update; returns the delta to subtract."""
        self.t += 1
        self.m = beta1 * self.m + (1 - beta1) * grad
        self.v = beta2 * self.v + (1 - beta2) * grad * grad
        m_hat = self.m / (1 - beta1 ** self.t)
        v_hat = self.v / (1 - beta2 ** self.t)
        return lr * m_hat / (np.sqrt(v_hat) + eps)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


class MLPClassifier:
    """One-hidden-layer tanh MLP with softmax output and Adam training."""

    def __init__(self, input_dim: int, n_classes: int, hidden: int = 32, seed: int = 0, lr: float = 5e-3):
        rng = np.random.default_rng(seed)
        scale1 = 1.0 / np.sqrt(input_dim)
        scale2 = 1.0 / np.sqrt(hidden)
        self.w1 = rng.normal(0, scale1, (input_dim, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0, scale2, (hidden, n_classes))
        self.b2 = np.zeros(n_classes)
        self.lr = lr
        self._opt = {
            name: AdamState(param.shape)
            for name, param in (("w1", self.w1), ("b1", self.b1), ("w2", self.w2), ("b2", self.b2))
        }

    def _forward(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        hidden = np.tanh(x @ self.w1 + self.b1)
        logits = hidden @ self.w2 + self.b2
        return hidden, logits

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch (or single row)."""
        x = np.atleast_2d(x)
        _, logits = self._forward(x)
        return softmax(logits, axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax class per row."""
        return self.predict_proba(x).argmax(axis=1)

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Raw logits (used for scoring candidate lists jointly)."""
        x = np.atleast_2d(x)
        _, logits = self._forward(x)
        return logits

    def train_batch(self, x: np.ndarray, y: np.ndarray, sample_weight: Optional[np.ndarray] = None) -> float:
        """One gradient step on a batch; returns mean cross-entropy."""
        x = np.atleast_2d(x)
        y = np.asarray(y, dtype=int)
        n = x.shape[0]
        hidden, logits = self._forward(x)
        probs = softmax(logits, axis=1)
        loss = -np.log(np.clip(probs[np.arange(n), y], 1e-12, 1.0))
        if sample_weight is None:
            weight = np.ones(n)
        else:
            weight = np.asarray(sample_weight, dtype=float)
        mean_loss = float((loss * weight).sum() / max(weight.sum(), 1e-9))
        dlogits = probs.copy()
        dlogits[np.arange(n), y] -= 1.0
        dlogits *= (weight / max(weight.sum(), 1e-9))[:, None]
        grad_w2 = hidden.T @ dlogits
        grad_b2 = dlogits.sum(axis=0)
        dhidden = (dlogits @ self.w2.T) * (1 - hidden * hidden)
        grad_w1 = x.T @ dhidden
        grad_b1 = dhidden.sum(axis=0)
        self.w2 -= self._opt["w2"].step(grad_w2, self.lr)
        self.b2 -= self._opt["b2"].step(grad_b2, self.lr)
        self.w1 -= self._opt["w1"].step(grad_w1, self.lr)
        self.b1 -= self._opt["b1"].step(grad_b1, self.lr)
        return mean_loss

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 30,
        batch_size: int = 32,
        seed: int = 0,
    ) -> List[float]:
        """Full training loop; returns per-epoch mean losses."""
        x = np.atleast_2d(x)
        y = np.asarray(y, dtype=int)
        rng = np.random.default_rng(seed)
        history = []
        n = x.shape[0]
        if n == 0:
            return history
        for _ in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                losses.append(self.train_batch(x[idx], y[idx]))
            history.append(float(np.mean(losses)))
        return history


class BinaryScorer(MLPClassifier):
    """Two-class MLP with a convenience probability-of-positive API."""

    def __init__(self, input_dim: int, hidden: int = 32, seed: int = 0, lr: float = 5e-3):
        super().__init__(input_dim, 2, hidden=hidden, seed=seed, lr=lr)

    def score(self, x: np.ndarray) -> np.ndarray:
        """P(positive) per row."""
        return self.predict_proba(x)[:, 1]


def pad_features(rows: Sequence[np.ndarray], dim: int) -> np.ndarray:
    """Stack feature rows, zero-padding/truncating each to ``dim``."""
    out = np.zeros((len(rows), dim))
    for i, row in enumerate(rows):
        row = np.asarray(row, dtype=float).ravel()
        n = min(dim, row.shape[0])
        out[i, :n] = row[:n]
    return out
