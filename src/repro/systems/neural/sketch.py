"""Query sketches: the WikiSQL-style structured output space.

WikiSQL [69] queries have a fixed shape — ``SELECT [agg] col FROM t WHERE
col op val (AND ...)`` — and the neural systems of §4.2 all predict that
shape rather than free SQL: Seq2SQL decodes it as a sequence, SQLNet
fills its slots ("sketch-based method ... generates SQL as a slot-filling
task").  :class:`QuerySketch` is that shape, with lossless conversion to
and from the engine's SQL AST for training labels and execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.sqldb.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    SelectItem,
    SelectStatement,
    TableRef,
)

AGGREGATES = ("", "count", "sum", "avg", "min", "max")
CONDITION_OPS = ("=", ">", "<")


@dataclass(frozen=True)
class Condition:
    """One WHERE slot: ``column op value``."""

    column: str
    op: str
    value: Any

    def normalized(self) -> Tuple[str, str, Any]:
        """Comparison key (lower-cased column, op, canonical value)."""
        value = self.value
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        if isinstance(value, str):
            value = value.lower()
        return (self.column.lower(), self.op, value)


@dataclass(frozen=True)
class QuerySketch:
    """A single-table query: aggregate, selected column, conditions.

    ``aggregate`` is ``""`` for none or one of count/sum/avg/min/max
    (count aggregates the selected column, as in WikiSQL).
    """

    table: str
    select_column: str
    aggregate: str = ""
    conditions: Tuple[Condition, ...] = ()

    def to_select(self) -> SelectStatement:
        """Lower to the engine's AST."""
        base: Expr = ColumnRef(self.select_column)
        if self.aggregate:
            base = FuncCall(self.aggregate, (base,))
        where: Optional[Expr] = None
        for cond in self.conditions:
            predicate = BinaryOp(cond.op, ColumnRef(cond.column), Literal(cond.value))
            where = predicate if where is None else BinaryOp("AND", where, predicate)
        return SelectStatement(
            select_items=(SelectItem(base),),
            from_table=TableRef(self.table),
            where=where,
        )

    def to_sql(self) -> str:
        """SQL text of the sketch."""
        return self.to_select().to_sql()

    def matches(self, other: "QuerySketch") -> bool:
        """Logical-form match: same agg/column and same condition *set*
        (order-insensitive, as the WikiSQL metric specifies)."""
        if self.table.lower() != other.table.lower():
            return False
        if self.aggregate != other.aggregate:
            return False
        if self.select_column.lower() != other.select_column.lower():
            return False
        mine = sorted(str(c.normalized()) for c in self.conditions)
        theirs = sorted(str(c.normalized()) for c in other.conditions)
        return mine == theirs

    @classmethod
    def from_select(cls, stmt: SelectStatement) -> "QuerySketch":
        """Recover a sketch from a sketch-shaped AST (raises ValueError
        for SQL outside the WikiSQL shape)."""
        if (
            stmt.from_table is None
            or stmt.joins
            or stmt.group_by
            or stmt.order_by
            or stmt.limit is not None
            or stmt.distinct
            or stmt.subqueries()
        ):
            raise ValueError("statement is not WikiSQL-shaped")
        if len(stmt.select_items) != 1:
            raise ValueError("sketches have exactly one projection")
        expr = stmt.select_items[0].expr
        aggregate = ""
        if isinstance(expr, FuncCall):
            aggregate = expr.name.lower()
            if aggregate not in AGGREGATES or not expr.args:
                raise ValueError(f"unsupported aggregate {aggregate!r}")
            expr = expr.args[0]
        if not isinstance(expr, ColumnRef):
            raise ValueError("projection must be a column")
        conditions: List[Condition] = []
        _collect_conditions(stmt.where, conditions)
        return cls(
            table=stmt.from_table.table,
            select_column=expr.column,
            aggregate=aggregate,
            conditions=tuple(conditions),
        )


def _collect_conditions(expr: Optional[Expr], out: List[Condition]) -> None:
    if expr is None:
        return
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        _collect_conditions(expr.left, out)
        _collect_conditions(expr.right, out)
        return
    if (
        isinstance(expr, BinaryOp)
        and expr.op in CONDITION_OPS
        and isinstance(expr.left, ColumnRef)
        and isinstance(expr.right, Literal)
    ):
        out.append(Condition(expr.left.column, expr.op, expr.right.value))
        return
    raise ValueError(f"condition outside the sketch shape: {expr!r}")
