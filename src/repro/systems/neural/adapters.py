"""NLIDBSystem adapters for the neural sketch models.

Wraps a trained sketch model as a :class:`~repro.core.pipeline.NLIDBSystem`
so the harness can compare it with the entity-based systems.  Because the
§4.2 models are single-table by construction ("demonstrated to work on
simple single-table queries without joins"), the adapter must first pick
*which* table to query — a soft column-overlap vote — and its predictions
on join/nested questions are structurally wrong, which is exactly the
limitation experiments E1/E3 quantify.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext, NLIDBSystem
from repro.nlp.embeddings import cosine
from repro.sqldb.table import Table

from .models import BaseSketchModel


class NeuralSketchSystem(NLIDBSystem):
    """A trained sketch model behind the common system interface."""

    family = "ml"

    def __init__(self, model: BaseSketchModel, name: Optional[str] = None):
        self.model = model
        self.name = name or model.name

    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        table = self._choose_table(question, context)
        if table is None:
            return []
        try:
            sketch = self.model.predict(question, table)
        except Exception:
            return []
        if sketch is None:
            return []
        try:
            stmt = sketch.to_select()
        except Exception:
            return []
        confidence = self._confidence(question, table)
        return [
            Interpretation(
                self.name,
                confidence,
                sql=stmt,
                explanation=f"single-table sketch over {table.name}",
            )
        ]

    # -- table selection ----------------------------------------------------------

    def _choose_table(self, question: str, context: NLIDBContext) -> Optional[Table]:
        tables = [t for t in context.database.tables if len(t.schema) > 0]
        if not tables:
            return None
        if len(tables) == 1:
            return tables[0]
        tokens = self.model.featurizer.question_tokens(question)
        best: Optional[Table] = None
        best_score = -1.0
        for table in tables:
            score = self._table_score(tokens, table)
            if score > best_score:
                best, best_score = table, score
        return best

    def _table_score(self, tokens, table: Table) -> float:
        featurizer = self.model.featurizer
        emb = featurizer.embeddings
        from repro.sqldb.index import split_identifier

        name_words = split_identifier(table.name)
        name_vec = emb.sentence_vector(name_words + [s for s in table.schema.synonyms])
        tok_vecs = [emb.vector(t.norm) for t in tokens] or [np.zeros(featurizer.dim)]
        name_sim = max(cosine(v, name_vec) for v in tok_vecs)
        col_sims = []
        for column in table.schema:
            col_vec = emb.sentence_vector(split_identifier(column.name))
            col_sims.append(max(cosine(v, col_vec) for v in tok_vecs))
        col_sims.sort(reverse=True)
        top = col_sims[:3] or [0.0]
        return 0.6 * name_sim + 0.4 * float(np.mean(top))

    def _confidence(self, question: str, table: Table) -> float:
        # ML systems always answer; confidence reflects table-match only.
        tokens = self.model.featurizer.question_tokens(question)
        return 0.5 + 0.5 * max(0.0, min(1.0, self._table_score(tokens, table)))
