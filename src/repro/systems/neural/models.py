"""Neural text-to-SQL models: Seq2SQL, SQLNet, TypeSQL (numpy).

The three §4.2 single-table systems, translated to the candidate-scoring
formulation of :mod:`repro.systems.neural.features`:

- :class:`Seq2SQLModel` [69] — decodes the WHERE clause *sequentially*
  (a classifier per decoding step, conditioned on the previous pick),
  optionally fine-tuned with execution-reward sampling (the paper's
  reinforcement-learning component).  Sequential decoding ties question
  position to decoding step, so permuted condition mentions and greedy
  error propagation hurt it.
- :class:`SQLNetModel` [59] — "avoids the sequence-to-sequence structure
  when ordering does not matter": each candidate is scored independently
  (set prediction) with column attention.  Type features are zeroed.
- :class:`TypeSQLModel` [62] — SQLNet plus type features ("utilizing
  types extracted from ... table content to help model better understand
  entities and numbers").

All three share the aggregate classifier and the select-column scorer;
they differ exactly where the papers differ — in the WHERE clause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sqldb.database import Database
from repro.sqldb.table import Table

from .features import (
    CONDITION_BASE_FEATURES,
    CONDITION_TYPE_FEATURES,
    ConditionCandidate,
    Featurizer,
)
from .nn import BinaryScorer, MLPClassifier
from .sketch import AGGREGATES, Condition, QuerySketch

_MAX_CONDITIONS = 3


@dataclass
class TrainReport:
    """Summary of one training run (sizes and final losses)."""

    examples: int
    agg_loss: float
    select_loss: float
    where_loss: float


class BaseSketchModel:
    """Shared skeleton: aggregate head + select head + a WHERE strategy."""

    #: model name used in benchmark tables
    name = "base"
    #: whether type features are visible to the WHERE scorer
    use_type_features = False

    def __init__(self, dim: int = 32, seed: int = 0, hidden: int = 32, epochs: int = 25):
        self.featurizer = Featurizer(dim)
        self.seed = seed
        self.epochs = epochs
        self.hidden = hidden
        self.agg_head = MLPClassifier(2 * dim, len(AGGREGATES), hidden=hidden, seed=seed)
        from .features import COLUMN_FEATURES

        self.select_head = BinaryScorer(COLUMN_FEATURES, hidden=hidden, seed=seed + 1)
        self._where_dim = (
            CONDITION_BASE_FEATURES + CONDITION_TYPE_FEATURES + self._extra_where_dims()
        )
        self.where_head = BinaryScorer(self._where_dim, hidden=hidden, seed=seed + 2)
        self.trained = False

    def _extra_where_dims(self) -> int:
        return 0

    # -- featurization --------------------------------------------------------

    def _where_features(
        self, candidate: ConditionCandidate, step: int, prev: Optional[ConditionCandidate]
    ) -> np.ndarray:
        type_part = (
            candidate.type_features
            if self.use_type_features
            else np.zeros(CONDITION_TYPE_FEATURES)
        )
        return np.concatenate([candidate.base_features, type_part, self._step_features(candidate, step, prev)])

    def _step_features(self, candidate, step, prev) -> np.ndarray:
        return np.zeros(0)

    # -- training ----------------------------------------------------------------

    def fit(self, examples: Sequence, database: Database) -> TrainReport:
        """Train all heads on (question, sketch) pairs."""
        agg_x, agg_y = [], []
        sel_x, sel_y = [], []
        for example in examples:
            tokens = self.featurizer.question_tokens(example.question)
            agg_x.append(self.featurizer.question_features(tokens))
            agg_y.append(AGGREGATES.index(example.sketch.aggregate))
            table = database.table(example.sketch.table)
            for column in table.schema:
                sel_x.append(self.featurizer.column_features(tokens, column, table.schema))
                sel_y.append(
                    1 if column.name.lower() == example.sketch.select_column.lower() else 0
                )
        agg_hist = self.agg_head.fit(
            np.array(agg_x), np.array(agg_y), epochs=self.epochs, seed=self.seed
        ) if agg_x else [0.0]
        sel_hist = self.select_head.fit(
            np.array(sel_x), np.array(sel_y), epochs=self.epochs, seed=self.seed
        ) if sel_x else [0.0]
        where_loss = self._fit_where(examples, database)
        self.trained = True
        return TrainReport(
            examples=len(examples),
            agg_loss=agg_hist[-1] if agg_hist else 0.0,
            select_loss=sel_hist[-1] if sel_hist else 0.0,
            where_loss=where_loss,
        )

    def _fit_where(self, examples: Sequence, database: Database) -> float:
        raise NotImplementedError

    # -- prediction ------------------------------------------------------------------

    def predict(self, question: str, table: Table) -> Optional[QuerySketch]:
        """Predict a sketch for ``question`` over ``table``."""
        if not self.trained:
            raise RuntimeError("call fit() before predict()")
        tokens = self.featurizer.question_tokens(question)
        qf = self.featurizer.question_features(tokens)
        aggregate = AGGREGATES[int(self.agg_head.predict(qf)[0])]
        select_column = self._predict_select(tokens, table, aggregate)
        if select_column is None:
            return None
        conditions = self._predict_where(tokens, table)
        return QuerySketch(
            table=table.name,
            select_column=select_column,
            aggregate=aggregate,
            conditions=tuple(conditions),
        )

    def _predict_select(self, tokens, table: Table, aggregate: str) -> Optional[str]:
        columns = list(table.schema)
        if aggregate in ("sum", "avg", "min", "max"):
            numeric = [c for c in columns if c.dtype.is_numeric]
            columns = numeric or columns
        if not columns:
            return None
        feats = np.stack(
            [self.featurizer.column_features(tokens, c, table.schema) for c in columns]
        )
        scores = self.select_head.score(feats)
        return columns[int(np.argmax(scores))].name

    def _predict_where(self, tokens, table: Table) -> List[Condition]:
        raise NotImplementedError

    @staticmethod
    def _dedupe(conditions: List[Tuple[float, ConditionCandidate]]) -> List[Condition]:
        """Keep the best-scoring candidate per (column, op) pair."""
        best: Dict[Tuple[str, str], Tuple[float, ConditionCandidate]] = {}
        for score, cand in conditions:
            key = (cand.column.lower(), cand.op)
            if key not in best or score > best[key][0]:
                best[key] = (score, cand)
        ranked = sorted(best.values(), key=lambda p: -p[0])[:_MAX_CONDITIONS]
        return [cand.as_condition() for _, cand in ranked]


class SQLNetModel(BaseSketchModel):
    """Set-based slot filling with column attention [59].

    Faithful to the SQLNet sketch, the WHERE clause is predicted as
    (a) the *number* of conditions from the question, then (b) the top-k
    independently scored candidates — no sequential decoding anywhere.
    """

    name = "sqlnet"
    use_type_features = False

    def __init__(self, dim: int = 32, seed: int = 0, hidden: int = 32, epochs: int = 25):
        super().__init__(dim=dim, seed=seed, hidden=hidden, epochs=epochs)
        self.count_head = MLPClassifier(
            2 * dim, _MAX_CONDITIONS + 1, hidden=hidden, seed=seed + 3
        )

    def _fit_where(self, examples: Sequence, database: Database) -> float:
        xs, ys = [], []
        count_x, count_y = [], []
        for example in examples:
            tokens = self.featurizer.question_tokens(example.question)
            table = database.table(example.sketch.table)
            count_x.append(self.featurizer.question_features(tokens))
            count_y.append(min(len(example.sketch.conditions), _MAX_CONDITIONS))
            for cand in self.featurizer.condition_candidates(tokens, table):
                xs.append(self._where_features(cand, 0, None))
                ys.append(1 if cand.matches_gold(example.sketch.conditions) else 0)
        if count_x:
            self.count_head.fit(
                np.array(count_x), np.array(count_y), epochs=self.epochs, seed=self.seed
            )
        if not xs:
            return 0.0
        history = self.where_head.fit(
            np.array(xs), np.array(ys), epochs=self.epochs, seed=self.seed
        )
        return history[-1]

    def _predict_where(self, tokens, table: Table) -> List[Condition]:
        candidates = self.featurizer.condition_candidates(tokens, table)
        if not candidates:
            return []
        qf = self.featurizer.question_features(tokens)
        n_conditions = int(self.count_head.predict(qf)[0])
        if n_conditions == 0:
            return []
        feats = np.stack([self._where_features(c, 0, None) for c in candidates])
        scores = self.where_head.score(feats)
        scored = sorted(zip(scores, candidates), key=lambda p: -p[0])
        best: Dict[Tuple[str, str], Tuple[float, ConditionCandidate]] = {}
        for score, cand in scored:
            key = (cand.column.lower(), cand.op)
            if key not in best or score > best[key][0]:
                best[key] = (float(score), cand)
        ranked = sorted(best.values(), key=lambda p: -p[0])[:n_conditions]
        return [cand.as_condition() for _, cand in ranked]


class TypeSQLModel(SQLNetModel):
    """SQLNet + type features [62]."""

    name = "typesql"
    use_type_features = True


class Seq2SQLModel(BaseSketchModel):
    """Sequential WHERE decoding with optional execution-reward tuning [69]."""

    name = "seq2sql"
    use_type_features = False

    def __init__(self, *args, rl_rounds: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        self.rl_rounds = rl_rounds
        self._rl_rng = np.random.default_rng(self.seed + 7)

    def _extra_where_dims(self) -> int:
        # decoding-step one-hot + previous-pick summary (position, same-col)
        return _MAX_CONDITIONS + 2

    def _step_features(self, candidate, step, prev) -> np.ndarray:
        step_onehot = np.zeros(_MAX_CONDITIONS)
        step_onehot[min(step, _MAX_CONDITIONS - 1)] = 1.0
        prev_pos = prev.position / 20.0 if prev is not None else -1.0
        same_col = 1.0 if prev is not None and prev.column == candidate.column else 0.0
        return np.concatenate([step_onehot, [prev_pos, same_col]])

    def _fit_where(self, examples: Sequence, database: Database) -> float:
        xs, ys = [], []
        for example in examples:
            tokens = self.featurizer.question_tokens(example.question)
            table = database.table(example.sketch.table)
            candidates = self.featurizer.condition_candidates(tokens, table)
            gold = list(example.sketch.conditions)
            prev: Optional[ConditionCandidate] = None
            for step, gold_cond in enumerate(gold[:_MAX_CONDITIONS]):
                for cand in candidates:
                    label = 1 if cand.matches_gold([gold_cond]) else 0
                    xs.append(self._where_features(cand, step, prev))
                    ys.append(label)
                    if label and prev is None:
                        prev = cand
                # teacher forcing: previous pick is the gold candidate
                matches = [c for c in candidates if c.matches_gold([gold_cond])]
                prev = matches[0] if matches else prev
        if not xs:
            return 0.0
        history = self.where_head.fit(
            np.array(xs), np.array(ys), epochs=self.epochs, seed=self.seed
        )
        loss = history[-1]
        if self.rl_rounds:
            self._execution_tune(examples, database)
        return loss

    def _execution_tune(self, examples: Sequence, database: Database) -> None:
        """REINFORCE-flavoured fine-tuning on execution reward.

        Predictions are sampled from the current policy; picks from
        correctly-executing samples are reinforced as positives, picks
        from failing samples as negatives — the "learning from execution"
        signal Seq2SQL's RL stage adds.
        """
        from repro.bench.wikisql import execution_accuracy

        for _ in range(self.rl_rounds):
            xs, ys = [], []
            for example in examples:
                tokens = self.featurizer.question_tokens(example.question)
                table = database.table(example.sketch.table)
                picks = self._sample_where(tokens, table)
                sketch = QuerySketch(
                    table=table.name,
                    select_column=example.sketch.select_column,
                    aggregate=example.sketch.aggregate,
                    conditions=tuple(p[1].as_condition() for p in picks),
                )
                reward = 1 if execution_accuracy(database, sketch, example.sketch) else 0
                for step, (features, cand) in enumerate(picks):
                    xs.append(features)
                    ys.append(reward)
            if xs:
                self.where_head.fit(
                    np.array(xs), np.array(ys), epochs=2, seed=self.seed + 11
                )

    def _sample_where(self, tokens, table: Table):
        candidates = self.featurizer.condition_candidates(tokens, table)
        picks = []
        prev: Optional[ConditionCandidate] = None
        used = set()
        for step in range(_MAX_CONDITIONS):
            scored = []
            for cand in candidates:
                if id(cand) in used:
                    continue
                features = self._where_features(cand, step, prev)
                scored.append((features, cand, float(self.where_head.score(features)[0])))
            if not scored:
                break
            probs = np.array([s for _, _, s in scored])
            if probs.max() < 0.35:
                break
            probs = probs / probs.sum()
            idx = int(self._rl_rng.choice(len(scored), p=probs))
            features, cand, _ = scored[idx]
            picks.append((features, cand))
            used.add(id(cand))
            prev = cand
        return picks

    def _predict_where(self, tokens, table: Table) -> List[Condition]:
        candidates = self.featurizer.condition_candidates(tokens, table)
        out: List[Tuple[float, ConditionCandidate]] = []
        prev: Optional[ConditionCandidate] = None
        used = set()
        for step in range(_MAX_CONDITIONS):
            best: Optional[Tuple[float, ConditionCandidate]] = None
            for cand in candidates:
                if id(cand) in used:
                    continue
                score = float(
                    self.where_head.score(self._where_features(cand, step, prev))[0]
                )
                if best is None or score > best[0]:
                    best = (score, cand)
            if best is None or best[0] < 0.5:
                break
            out.append(best)
            used.add(id(best[1]))
            prev = best[1]
        return self._dedupe(out)
