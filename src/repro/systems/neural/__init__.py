"""Machine-learning-based NLIDB systems (§4.2), in pure numpy.

- :mod:`~repro.systems.neural.sketch` — the WikiSQL query shape.
- :mod:`~repro.systems.neural.nn` — MLP classifier/scorer + Adam.
- :mod:`~repro.systems.neural.features` — shared featurization (column
  attention, type features, condition candidates).
- :mod:`~repro.systems.neural.models` — Seq2SQL [69], SQLNet [59],
  TypeSQL [62].
- :mod:`~repro.systems.neural.dbpal` — DBPal-style synthetic training
  data generation + model [9, 56].
- :mod:`~repro.systems.neural.adapters` — NLIDBSystem wrapper with
  table selection.
"""

from .adapters import NeuralSketchSystem
from .dbpal import DBPalModel, generate_training_set
from .features import ConditionCandidate, Featurizer
from .models import BaseSketchModel, Seq2SQLModel, SQLNetModel, TrainReport, TypeSQLModel
from .nn import AdamState, BinaryScorer, MLPClassifier, sigmoid, softmax
from .sketch import AGGREGATES, Condition, QuerySketch

__all__ = [
    "QuerySketch", "Condition", "AGGREGATES",
    "MLPClassifier", "BinaryScorer", "AdamState", "softmax", "sigmoid",
    "Featurizer", "ConditionCandidate",
    "BaseSketchModel", "Seq2SQLModel", "SQLNetModel", "TypeSQLModel", "TrainReport",
    "DBPalModel", "generate_training_set",
    "NeuralSketchSystem",
]
