"""SQAK-style pattern-based system [51] (§3 of the survey).

"Pattern-based NLID systems introduce the use of natural language
patterns for detecting more SQL clauses like aggregation, GROUP BY,
ORDER BY, etc.  Exploiting fixed patterns ... enables such systems to
overcome the limitations of keyword-based systems, but they are limited
to those fixed patterns."

Relative to :class:`~repro.systems.keyword_soda.SodaSystem`, this system
adds exactly the fixed patterns of :mod:`repro.nlp.patterns` ("total",
"average", "how many", "by X", "top N", comparisons) — and nothing else:
joins and nesting stay out of reach, and a paraphrase that leaves the
pattern inventory breaks it (the §4.1 brittleness claim).
"""

from __future__ import annotations

from typing import List

from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext, NLIDBSystem
from repro.core.registry import register

from .base import EntityAnnotator
from .interpreter import InterpreterConfig, SemanticInterpreter


class SqakSystem(NLIDBSystem):
    """Keyword lookup + fixed NL patterns; single-table aggregation tier."""

    name = "sqak"
    family = "entity"

    def __init__(self):
        self.annotator = EntityAnnotator(
            use_metadata=True,
            use_values=True,
            fuzzy_values=False,
            similarity_threshold=0.85,
        )
        self.interpreter = SemanticInterpreter(InterpreterConfig.pattern(), self.name)

    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        annotated = self.annotator.annotate(question, context)
        return self.interpreter.interpret(annotated, context)


register("sqak", SqakSystem)
