"""SODA-style keyword search system [15] (§3/§4.1 of the survey).

The survey places keyword-based systems at the lowest capability tier:
"they only consider each individual word for a possible match in meta
data or data instances.  Such systems can only handle simple filter
queries but cannot detect other clauses like GROUP BY and ORDER BY."

Faithful ingredients:

- each keyword is looked up in a *metadata index* and a *data index*
  (here :class:`~repro.sqldb.index.DatabaseIndex` through the annotator),
- multiple interpretations are produced and "ranked based on an
  aggregation of the scores associated with each lookup result",
- interpretations are extended through the ontology's inheritance
  (SODA's use of ontologies), but no linguistic patterns are used, so
  aggregation/grouping questions fall through,
- the system abstains when its evidence spans multiple tables (keyword
  semantics cannot justify a join path) — the high-precision /
  low-coverage profile §6 attributes to this family.
"""

from __future__ import annotations

from typing import List

from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext, NLIDBSystem
from repro.core.registry import register

from .base import EntityAnnotator
from .interpreter import InterpreterConfig, SemanticInterpreter


class SodaSystem(NLIDBSystem):
    """Keyword lookup over metadata + data indexes; selection tier only."""

    name = "soda"
    family = "entity"

    def __init__(self, fuzzy_values: bool = False):
        # SODA does exact index lookups; fuzziness off by default.
        self.annotator = EntityAnnotator(
            use_metadata=True,
            use_values=True,
            fuzzy_values=fuzzy_values,
            similarity_threshold=0.9,
        )
        self.interpreter = SemanticInterpreter(InterpreterConfig.keyword(), self.name)

    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        annotated = self.annotator.annotate(question, context)
        return self.interpreter.interpret(annotated, context)


register("soda", SodaSystem)
