"""TEMPLAR-style query-log augmentation [7] (§3 of the survey).

TEMPLAR "leverages information from the SQL query log to improve keyword
mapping and join path inference".  This implementation wraps the shared
entity pipeline and re-ranks ambiguous mappings with log statistics:

- a :class:`QueryLog` ingests past SQL and counts column usage and join
  table pairs,
- when an annotation span has near-tied candidates (e.g. "name" matching
  both ``customers.name`` and ``products.name``), the candidate whose
  column historically appears more often is boosted,
- join fan-out decisions prefer table pairs seen in the log.

With an empty log the system behaves exactly like its base pipeline —
which is the E10 ablation baseline.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional

from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext, NLIDBSystem
from repro.core.registry import register
from repro.sqldb import parse_select
from repro.sqldb.ast import ColumnRef

from .base import AnnotatedQuestion, EntityAnnotator
from .interpreter import InterpreterConfig, SemanticInterpreter


class QueryLog:
    """Aggregated statistics over a history of SQL queries."""

    def __init__(self):
        self.column_counts: Counter = Counter()
        self.table_counts: Counter = Counter()
        self.join_pairs: Counter = Counter()
        self.size = 0

    def add(self, sql: str) -> bool:
        """Ingest one SQL statement; returns False on parse failure."""
        try:
            stmt = parse_select(sql)
        except Exception:
            return False
        self.size += 1
        tables = [t.lower() for t in stmt.referenced_tables()]
        for table in tables:
            self.table_counts[table] += 1
        for i, a in enumerate(tables):
            for b in tables[i + 1 :]:
                self.join_pairs[frozenset((a, b))] += 1
        alias_map = {}
        if stmt.from_table is not None:
            alias_map[stmt.from_table.binding.lower()] = stmt.from_table.table.lower()
        for join in stmt.joins:
            alias_map[join.table.binding.lower()] = join.table.table.lower()
        for expr in stmt.all_expressions():
            if isinstance(expr, ColumnRef):
                table = alias_map.get((expr.table or "").lower(), (expr.table or "").lower())
                if not table and len(tables) == 1:
                    # unqualified column in a single-table query
                    table = tables[0]
                if table:
                    self.column_counts[(table, expr.column.lower())] += 1
        for sub in stmt.subqueries():
            # count nested usage too (cheap recursion through text)
            self.size -= 1  # add() below re-increments
            self.add(sub.to_sql())
        return True

    def extend(self, statements: Iterable[str]) -> int:
        """Ingest many statements; returns how many parsed."""
        return sum(1 for s in statements if self.add(s))

    def column_frequency(self, table: str, column: str) -> float:
        """Relative usage frequency of a column in the log (0 when empty)."""
        if self.size == 0:
            return 0.0
        return self.column_counts[(table.lower(), column.lower())] / self.size


class TemplarSystem(NLIDBSystem):
    """Entity pipeline with query-log-boosted keyword mapping."""

    name = "templar"
    family = "entity"

    def __init__(self, log: Optional[QueryLog] = None, boost: float = 0.3):
        self.log = log or QueryLog()
        self.boost = boost
        self.annotator = EntityAnnotator(
            use_metadata=True,
            use_values=True,
            fuzzy_values=True,
            similarity_threshold=0.75,
        )
        self.interpreter = SemanticInterpreter(InterpreterConfig.full(), self.name)

    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        annotated = self.annotator.annotate(question, context)
        annotated = self._reorder_by_log(annotated, context)
        return self.interpreter.interpret(annotated, context)

    # -- log-driven re-ranking -----------------------------------------------------

    def _log_score(self, annotation, context: NLIDBContext) -> float:
        ref = None
        if annotation.kind == "property":
            ref = annotation.payload
        elif annotation.kind == "value":
            ref = annotation.payload[0]
        elif annotation.kind == "concept":
            table = context.mapping.table_of(annotation.payload)
            if self.log.size == 0:
                return annotation.score
            freq = self.log.table_counts[table.lower()] / self.log.size
            return annotation.score * (1.0 + self.boost * min(freq, 1.0))
        if ref is None:
            return annotation.score
        table, column = context.mapping.column_of(ref.concept, ref.prop)
        freq = self.log.column_frequency(table, column)
        return annotation.score * (1.0 + self.boost * min(freq, 1.0))

    def _reorder_by_log(
        self, annotated: AnnotatedQuestion, context: NLIDBContext
    ) -> AnnotatedQuestion:
        """Swap each kept annotation for an alternative the log prefers."""
        current = annotated
        for annotation in list(annotated.annotations):
            if annotation.kind not in ("property", "value", "concept"):
                continue
            alternatives = annotated.alternatives_for(annotation)
            if not alternatives:
                continue
            best = annotation
            best_score = self._log_score(annotation, context)
            for alternative in alternatives:
                score = self._log_score(alternative, context)
                if score > best_score:
                    best, best_score = alternative, score
            if best != annotation:
                current = current.replace(annotation, best)
        return current


register("templar", TemplarSystem)
