"""QUICK-style incremental query construction [66] (§4.1).

QUICK "binds a keyword-based query to the lookup results from an
inverted index that is built on the instances, concepts, and properties
of the underlying data.  In addition ... QUICK employs an additional
step in which users can interactively select one of the suggested query
interpretations that best fits their query."

Implementation: the keyword pipeline produces candidate interpretations
(like SODA, but keeping the full ranked list), then the *user* picks via
the shared clarification protocol — a :class:`FirstOptionUser` makes
QUICK behave exactly like ranked keyword search, while a simulated or
scripted user realizes the interactive semantics the paper describes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.feedback import (
    ClarificationOption,
    ClarificationRequest,
    ClarificationUser,
    FirstOptionUser,
)
from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext, NLIDBSystem
from repro.core.registry import register

from .base import EntityAnnotator
from .interpreter import InterpreterConfig, SemanticInterpreter


class QuickSystem(NLIDBSystem):
    """Keyword interpretation with interactive candidate selection."""

    name = "quick"
    family = "entity"

    def __init__(self, user: Optional[ClarificationUser] = None, max_options: int = 4):
        self.user = user or FirstOptionUser()
        self.max_options = max_options
        self.annotator = EntityAnnotator(
            use_metadata=True,
            use_values=True,
            fuzzy_values=False,
            similarity_threshold=0.85,
        )
        # QUICK's grammar covers keyword-bound selections; interaction,
        # not linguistics, is its contribution.
        config = InterpreterConfig(
            allow_aggregation=False,
            allow_group_by=False,
            allow_order_limit=False,
            allow_join=False,
            allow_nested=False,
            abstain_on_cross_concept=False,
            require_full_coverage=False,
            max_interpretations=max_options,
        )
        self.interpreter = SemanticInterpreter(config, self.name)
        self.selections_asked = 0

    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        annotated = self.annotator.annotate(question, context)
        candidates = self.interpreter.interpret(annotated, context)
        if len(candidates) <= 1:
            return candidates
        options = []
        for candidate in candidates[: self.max_options]:
            try:
                label = candidate.to_sql(context.ontology, context.mapping).to_sql()
            except Exception:
                label = candidate.explanation or candidate.system
            options.append(ClarificationOption(label, candidate))
        request = ClarificationRequest(
            "Which interpretation fits your query best?", options, topic=question
        )
        self.selections_asked += 1
        choice = self.user.choose(request)
        chosen = options[choice].payload
        chosen.confidence = max(c.confidence for c in candidates) + 0.01
        reordered = [chosen] + [c for c in candidates if c is not chosen]
        return reordered


register("quick", QuickSystem)
