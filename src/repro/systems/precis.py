"""Précis-style keyword answering [26, 47] (§4.1).

Précis turns "unstructured keywords as queries to structured databases
as answers": the keyword query is first normalized to *disjunctive
normal form*, each disjunct is looked up in an inverted index over the
database contents, and the answer is not a flat result set but "the
essence of the answer" — the matching tuples *plus* the tuples they
relate to through foreign keys (a logical database subset).

Implementation:

- a tiny boolean keyword language ``a b OR c NOT d`` with explicit
  DNF normalization (:func:`to_dnf`),
- per-disjunct lookup through the shared value index,
- answer expansion: one FK hop in both directions from every matching
  row, returned as a :class:`PrecisAnswer` (table → rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.pipeline import NLIDBContext
from repro.nlp.stopwords import is_stopword
from repro.nlp.tokenizer import tokenize


@dataclass(frozen=True)
class DNFClause:
    """One conjunction of (possibly negated) keywords."""

    positive: FrozenSet[str]
    negative: FrozenSet[str] = frozenset()

    def describe(self) -> str:
        parts = sorted(self.positive) + [f"NOT {w}" for w in sorted(self.negative)]
        return " AND ".join(parts)


def to_dnf(query: str) -> List[DNFClause]:
    """Normalize ``a b OR c NOT d`` into DNF clauses.

    ``OR`` splits top-level disjuncts; juxtaposition is conjunction;
    ``NOT w`` negates the following keyword.  (Précis cites textbook DNF
    transformation [36]; keyword queries are already nearly flat, so the
    normalization is the OR-split plus negation bookkeeping.)
    """
    disjuncts = [d.strip() for d in _split_or(query) if d.strip()]
    clauses: List[DNFClause] = []
    for disjunct in disjuncts:
        positive: Set[str] = set()
        negative: Set[str] = set()
        negate_next = False
        for token in tokenize(disjunct):
            if token.kind == "punct":
                continue
            word = token.norm
            if word == "not":
                negate_next = True
                continue
            if word == "and" or is_stopword(word):
                continue
            (negative if negate_next else positive).add(word)
            negate_next = False
        if positive:
            clauses.append(DNFClause(frozenset(positive), frozenset(negative)))
    return clauses


def _split_or(query: str) -> List[str]:
    parts: List[str] = []
    current: List[str] = []
    for word in query.split():
        if word.lower() == "or":
            parts.append(" ".join(current))
            current = []
        else:
            current.append(word)
    parts.append(" ".join(current))
    return parts


@dataclass
class PrecisAnswer:
    """A logical database subset: per-table matched + related rows."""

    rows: Dict[str, List[Tuple[Any, ...]]] = field(default_factory=dict)

    def table_names(self) -> List[str]:
        """Tables participating in the answer."""
        return sorted(self.rows)

    def row_count(self) -> int:
        """Total rows across all tables."""
        return sum(len(rows) for rows in self.rows.values())

    def _add(self, table: str, row: Tuple[Any, ...]) -> None:
        bucket = self.rows.setdefault(table, [])
        if row not in bucket:
            bucket.append(row)

    def to_text(self, max_rows: int = 5) -> str:
        """Readable multi-table rendering."""
        lines = []
        for table in self.table_names():
            lines.append(f"[{table}]")
            for row in self.rows[table][:max_rows]:
                lines.append(f"  {row}")
            extra = len(self.rows[table]) - max_rows
            if extra > 0:
                lines.append(f"  ... ({extra} more)")
        return "\n".join(lines)


class PrecisSystem:
    """DNF keyword lookup with FK-neighbourhood answer expansion."""

    name = "precis"
    family = "entity"

    def __init__(self, expand_hops: int = 1):
        self.expand_hops = expand_hops

    def answer(self, query: str, context: NLIDBContext) -> Optional[PrecisAnswer]:
        """The logical database subset answering ``query``."""
        clauses = to_dnf(query)
        if not clauses:
            return None
        answer = PrecisAnswer()
        matched_any = False
        for clause in clauses:
            for table, row in self._clause_rows(clause, context):
                matched_any = True
                answer._add(table, row)
                for related_table, related_row in self._neighbourhood(
                    table, row, context
                ):
                    answer._add(related_table, related_row)
        return answer if matched_any else None

    # -- matching -----------------------------------------------------------------

    def _clause_rows(self, clause: DNFClause, context: NLIDBContext):
        """Rows containing every positive keyword and no negative one."""
        per_keyword: List[Set[Tuple[str, int]]] = []
        for keyword in clause.positive:
            per_keyword.append(self._rows_with(keyword, context))
        if not per_keyword:
            return
        common = set.intersection(*per_keyword)
        for keyword in clause.negative:
            common -= self._rows_with(keyword, context)
        for table, row_index in sorted(common):
            yield table, context.database.table(table).rows[row_index]

    def _rows_with(self, keyword: str, context: NLIDBContext) -> Set[Tuple[str, int]]:
        out: Set[Tuple[str, int]] = set()
        hits = context.index.values.lookup(keyword)
        for entry in hits:
            table = context.database.table(entry.table)
            column_index = table.schema.column_index(entry.column)
            for row_index, row in enumerate(table.rows):
                if row[column_index] == entry.value:
                    out.add((table.name, row_index))
        return out

    # -- expansion -------------------------------------------------------------------

    def _neighbourhood(self, table: str, row: Tuple[Any, ...], context: NLIDBContext):
        """One FK hop in both directions from ``row``."""
        database = context.database
        schema = database.table(table).schema
        for fk in database.foreign_keys:
            if fk.src_table.lower() == table.lower():
                # row references a parent: include the parent row
                value = row[schema.column_index(fk.src_column)]
                if value is None:
                    continue
                parent = database.table(fk.dst_table)
                parent_index = parent.schema.column_index(fk.dst_column)
                for parent_row in parent.rows:
                    if parent_row[parent_index] == value:
                        yield parent.name, parent_row
            if fk.dst_table.lower() == table.lower():
                # children reference this row: include them
                value = row[schema.column_index(fk.dst_column)]
                if value is None:
                    continue
                child = database.table(fk.src_table)
                child_index = child.schema.column_index(fk.src_column)
                for child_row in child.rows:
                    if child_row[child_index] == value:
                        yield child.name, child_row
