"""NaLIR-style parse-tree system [30-32] (§4.1 of the survey).

NaLIR "uses Stanford NLP Parser to obtain a linguistic understanding of
the input query in the form of a parse tree.  Tree nodes corresponding to
entities are mapped to the underlying data using a WordNet-based
similarity function.  This may provide multiple mappings per tree node,
which are then clarified by users."

Faithful ingredients:

- the question is parsed (:mod:`repro.nlp.parser`) and only parse-tree
  noun-phrase spans are considered for entity mapping (unlike the
  annotator's free n-gram scan),
- node → element mapping uses the blended WordNet-style similarity
  (:func:`repro.nlp.matching.term_similarity`, which wraps Wu–Palmer),
- ambiguous mappings trigger a clarification request answered by a
  :class:`~repro.core.feedback.ClarificationUser` (the interactive step
  that makes NaLIR "an interactive natural language interface"),
- joins are inferred over the FK graph; nested queries are out of scope
  (the survey credits nesting only to the BI extensions of ATHENA).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.feedback import (
    ClarificationOption,
    ClarificationRequest,
    ClarificationUser,
    FirstOptionUser,
)
from repro.core.interpretation import Interpretation
from repro.core.pipeline import NLIDBContext, NLIDBSystem
from repro.core.registry import register
from repro.nlp.parser import parse_tokens

from .base import AnnotatedQuestion, EntityAnnotator
from .interpreter import InterpreterConfig, SemanticInterpreter


class NalirSystem(NLIDBSystem):
    """Parse-tree mapping with user clarification; join tier."""

    name = "nalir"
    family = "entity"

    def __init__(
        self,
        user: Optional[ClarificationUser] = None,
        clarify: bool = True,
        similarity_threshold: float = 0.75,
    ):
        self.user = user or FirstOptionUser()
        self.clarify = clarify
        self.annotator = EntityAnnotator(
            use_metadata=True,
            use_values=True,
            fuzzy_values=True,
            similarity_threshold=similarity_threshold,
        )
        self.interpreter = SemanticInterpreter(InterpreterConfig.parsing(), self.name)
        self.clarifications_asked = 0

    def interpret(self, question: str, context: NLIDBContext) -> List[Interpretation]:
        annotated = self.annotator.annotate(question, context)
        annotated = self._restrict_to_parse_chunks(annotated)
        if self.clarify:
            annotated = self._clarify_mappings(annotated)
        return self.interpreter.interpret(annotated, context)

    # -- parse-tree restriction -----------------------------------------------------

    def _restrict_to_parse_chunks(self, annotated: AnnotatedQuestion) -> AnnotatedQuestion:
        """Keep only annotations inside parse-tree NP chunks (plus
        pattern-bearing spans, which NaLIR reads off dependencies)."""
        tree = parse_tokens(annotated.tokens)
        np_spans = []
        for np in tree.noun_phrases():
            if not np.tokens:
                continue
            start = min(t.start for t in np.tokens)
            end = max(t.end for t in np.tokens)
            np_spans.append((start, end))

        def inside_np(ann) -> bool:
            tok_start = annotated.tokens[ann.start].start
            tok_end = annotated.tokens[ann.end - 1].end
            return any(s <= tok_start and tok_end <= e for s, e in np_spans)

        kept = [a for a in annotated.annotations if inside_np(a)]
        return AnnotatedQuestion(
            annotated.question,
            annotated.tokens,
            annotated.patterns,
            kept,
            annotated.candidates,
        )

    # -- clarification --------------------------------------------------------------

    def _clarify_mappings(self, annotated: AnnotatedQuestion) -> AnnotatedQuestion:
        """For each ambiguous node mapping, ask the user to pick."""
        current = annotated
        for annotation in list(annotated.annotations):
            if annotation.kind not in ("property", "value", "concept"):
                continue
            alternatives = annotated.alternatives_for(annotation)
            if not alternatives:
                continue
            options = [ClarificationOption(annotation.describe(), annotation)]
            options.extend(
                ClarificationOption(alt.describe(), alt) for alt in alternatives[:3]
            )
            span_text = " ".join(
                t.text for t in annotated.tokens[annotation.start : annotation.end]
            )
            request = ClarificationRequest(
                f"By {span_text!r}, did you mean:", options, topic=span_text
            )
            self.clarifications_asked += 1
            choice = self.user.choose(request)
            chosen = options[choice].payload
            if chosen != annotation:
                current = current.replace(annotation, chosen)
        return current


register("nalir", NalirSystem)
