"""Inverted indexes over database metadata and data values.

SODA-style keyword systems (§4.1 of the survey) interpret a query by
looking each keyword up in two indexes: one over *metadata* (table and
column names plus declared synonyms) and one over *data* (the values
stored in text columns).  Both indexes are also reused by NaLIR-style
node mapping and by the dialogue entity recognizer.

Index entries are :class:`IndexEntry` records that say what matched
(``kind``), where (table/column), and how well (a score in ``(0, 1]``
from exact vs. fuzzy matching).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set

from .database import Database


def _strip_punct(text: str) -> str:
    return "".join(ch if (ch.isalnum() or ch.isspace()) else " " for ch in text)


def normalize_token(text: str) -> str:
    """Lower-case and strip a token for index lookup; splits on ``_``
    happen at tokenization time, not here."""
    return text.strip().lower()


def split_identifier(name: str) -> List[str]:
    """Split a schema identifier into word tokens.

    Handles snake_case, camelCase and spaces: ``customerName`` →
    ``["customer", "name"]``, ``order_date`` / ``order date`` →
    ``["order", "date"]``.
    """
    pieces: List[str] = []
    current = []
    for ch in name:
        if ch == "_" or ch == " ":
            if current:
                pieces.append("".join(current))
                current = []
            continue
        if ch.isupper() and current and not current[-1].isupper():
            pieces.append("".join(current))
            current = [ch]
        else:
            current.append(ch)
    if current:
        pieces.append("".join(current))
    return [normalize_token(p) for p in pieces if p]


@dataclass(frozen=True)
class IndexEntry:
    """One index hit.

    ``kind`` is ``"table"``, ``"column"`` or ``"value"``; for values,
    ``value`` holds the matched datum.
    """

    kind: str
    table: str
    column: Optional[str] = None
    value: Any = None
    score: float = 1.0

    def describe(self) -> str:
        """Human-readable form used in clarification dialogs."""
        if self.kind == "table":
            return f"table {self.table}"
        if self.kind == "column":
            return f"column {self.table}.{self.column}"
        return f"value {self.value!r} in {self.table}.{self.column}"


class MetadataIndex:
    """Inverted index over table/column names and their synonyms.

    Rebuilds itself automatically when tables are added to the catalog
    after construction (tracked via ``database.catalog_version``); call
    :meth:`invalidate` to force a rebuild on next lookup.
    """

    def __init__(self, database: Database):
        self.database = database
        self._entries: Dict[str, List[IndexEntry]] = defaultdict(list)
        self._built_version = database.catalog_version
        self._dirty = False
        self._build()

    def invalidate(self) -> None:
        """Mark the index stale; it rebuilds lazily on the next lookup."""
        self._dirty = True

    def refresh(self) -> None:
        """Rebuild the index from the current catalog immediately."""
        self._entries = defaultdict(list)
        self._built_version = self.database.catalog_version
        self._dirty = False
        self._build()

    def _maybe_rebuild(self) -> None:
        if self._dirty or self.database.catalog_version != self._built_version:
            self.refresh()

    def _build(self) -> None:
        for table in self.database.tables:
            self._add_terms(
                [table.name, *table.schema.synonyms],
                IndexEntry("table", table.name),
            )
            for column in table.schema:
                self._add_terms(
                    [column.name, *column.synonyms],
                    IndexEntry("column", table.name, column.name),
                )

    def _add_terms(self, names: Iterable[str], entry: IndexEntry) -> None:
        for name in names:
            tokens = split_identifier(name)
            # Whole name (joined) and each word token index the entry;
            # multi-word matches score higher at lookup time.
            keys = {normalize_token(name), " ".join(tokens)}
            keys.update(tokens)
            for key in keys:
                if key:
                    self._entries[key].append(entry)

    def lookup(self, term: str) -> List[IndexEntry]:
        """Entries whose name or synonym contains ``term``."""
        self._maybe_rebuild()
        return list(self._entries.get(normalize_token(term), []))

    def lookup_phrase(self, words: List[str]) -> List[IndexEntry]:
        """Match a multi-word phrase (e.g. "order date") as a unit."""
        self._maybe_rebuild()
        return list(self._entries.get(" ".join(normalize_token(w) for w in words), []))

    @property
    def vocabulary(self) -> Set[str]:
        """All indexed keys (used by tests and by paraphrase generation)."""
        self._maybe_rebuild()
        return set(self._entries)


class ValueIndex:
    """Inverted index over text-column data values (token-granular).

    Numeric and date values are *not* indexed — keyword systems match them
    via type heuristics at query time — but full text values and their
    individual word tokens are.
    """

    def __init__(self, database: Database, max_values_per_column: int = 100000):
        self.database = database
        self._entries: Dict[str, List[IndexEntry]] = defaultdict(list)
        self._cap = max_values_per_column
        self._built_version = database.data_version
        self._dirty = False
        self._build(max_values_per_column)

    def invalidate(self) -> None:
        """Mark the index stale; it rebuilds lazily on the next lookup."""
        self._dirty = True

    def refresh(self) -> None:
        """Rebuild the index from current table contents immediately."""
        self._entries = defaultdict(list)
        self._built_version = self.database.data_version
        self._dirty = False
        self._build(self._cap)

    def _maybe_rebuild(self) -> None:
        if self._dirty or self.database.data_version != self._built_version:
            self.refresh()

    def _build(self, cap: int) -> None:
        for table in self.database.tables:
            for column in table.schema.text_columns():
                for value in table.distinct_values(column.name)[:cap]:
                    entry = IndexEntry("value", table.name, column.name, value)
                    full = normalize_token(value)
                    self._entries[full].append(entry)
                    # Punctuation-stripped key so tokenized questions can
                    # re-assemble values like "Dr. Emil Ito".
                    stripped = " ".join(_strip_punct(full).split())
                    if stripped and stripped != full:
                        self._entries[stripped].append(
                            IndexEntry("value", table.name, column.name, value, score=0.95)
                        )
                    words = stripped.split()
                    if len(words) > 1:
                        for word in words:
                            # Token hits score lower than full-value hits.
                            self._entries[word].append(
                                IndexEntry("value", table.name, column.name, value, score=0.6)
                            )

    def lookup(self, term: str) -> List[IndexEntry]:
        """Entries whose value (or a word of it) equals ``term``."""
        self._maybe_rebuild()
        return list(self._entries.get(normalize_token(term), []))

    def lookup_phrase(self, words: List[str]) -> List[IndexEntry]:
        """Match a multi-word phrase against full values."""
        return self.lookup(" ".join(words))

    @property
    def vocabulary(self) -> Set[str]:
        """All indexed value keys."""
        self._maybe_rebuild()
        return set(self._entries)


class DatabaseIndex:
    """Bundle of the two indexes, built once per database."""

    def __init__(self, database: Database):
        self.database = database
        self.metadata = MetadataIndex(database)
        self.values = ValueIndex(database)

    def invalidate(self) -> None:
        """Mark both indexes stale; they rebuild lazily on next lookup."""
        self.metadata.invalidate()
        self.values.invalidate()

    def lookup(self, term: str) -> List[IndexEntry]:
        """Union of metadata and value hits for one term."""
        return self.metadata.lookup(term) + self.values.lookup(term)

    def lookup_phrase(self, words: List[str]) -> List[IndexEntry]:
        """Union of metadata and value hits for a phrase."""
        return self.metadata.lookup_phrase(words) + self.values.lookup_phrase(words)
