"""Row storage for one table, with typed inserts.

Rows are stored as plain tuples in declaration order; the schema drives
coercion and nullability checks at insert time so the executor can assume
well-typed data.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .errors import SchemaError, TypeMismatchError
from .schema import TableSchema
from .types import coerce


class Table:
    """An in-memory table: a :class:`TableSchema` plus a list of row tuples."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: List[Tuple[Any, ...]] = []

    @property
    def name(self) -> str:
        """The table name, taken from the schema."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def insert(self, values: Sequence[Any]) -> None:
        """Insert one row given positionally, coercing each value.

        Raises :class:`TypeMismatchError` for wrong arity, bad types, or a
        NULL in a NOT NULL column.
        """
        cols = self.schema.columns
        if len(values) != len(cols):
            raise TypeMismatchError(
                f"table {self.name!r} expects {len(cols)} values, got {len(values)}"
            )
        row = []
        for col, value in zip(cols, values):
            converted = coerce(value, col.dtype)
            if converted is None and not col.nullable:
                raise TypeMismatchError(f"column {self.name}.{col.name} is NOT NULL")
            row.append(converted)
        self.rows.append(tuple(row))

    def insert_dict(self, record: Dict[str, Any]) -> None:
        """Insert one row given as a ``{column: value}`` mapping.

        Missing columns default to NULL; unknown keys raise
        :class:`SchemaError`.
        """
        known = {c.name.lower() for c in self.schema.columns}
        for key in record:
            if key.lower() not in known:
                raise SchemaError(f"table {self.name!r} has no column {key!r}")
        lowered = {k.lower(): v for k, v in record.items()}
        self.insert([lowered.get(c.name.lower()) for c in self.schema.columns])

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many positional rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def column_values(self, column: str) -> List[Any]:
        """All values of ``column`` in row order (including NULLs)."""
        idx = self.schema.column_index(column)
        return [row[idx] for row in self.rows]

    def distinct_values(self, column: str) -> List[Any]:
        """Distinct non-NULL values of ``column`` in first-seen order."""
        idx = self.schema.column_index(column)
        seen = set()
        out: List[Any] = []
        for row in self.rows:
            value = row[idx]
            if value is None or value in seen:
                continue
            seen.add(value)
            out.append(value)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, {len(self.rows)} rows)"
