"""Row storage for one table, with typed inserts.

Rows are stored as plain tuples in declaration order; the schema drives
coercion and nullability checks at insert time so the executor can assume
well-typed data.

Each table also maintains *lazy secondary hash indexes*: per-column maps
from canonical value (see :func:`repro.sqldb.types.hash_key`) to the row
positions holding that value.  The planner uses them to answer equality
and ``IN`` predicates without a full scan.  Indexes are built on first
use and invalidated by a monotonically increasing ``version`` counter
bumped on every insert, so they can never serve stale lookups.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from .errors import SchemaError, TypeMismatchError
from .schema import TableSchema
from .types import coerce, hash_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .columnar import ColumnStore


class Table:
    """An in-memory table: a :class:`TableSchema` plus a list of row tuples."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: List[Tuple[Any, ...]] = []
        #: bumped on every insert; secondary indexes built against an older
        #: version are rebuilt transparently on next use.
        self.version: int = 0
        self._indexes: Dict[str, Tuple[int, Dict[Any, List[int]]]] = {}
        #: lazily built columnar image of the rows, keyed by ``version``
        #: (see :meth:`column_store`); ``None`` until first requested.
        self._column_store: Any = None

    @property
    def name(self) -> str:
        """The table name, taken from the schema."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def insert(self, values: Sequence[Any]) -> None:
        """Insert one row given positionally, coercing each value.

        Raises :class:`TypeMismatchError` for wrong arity, bad types, or a
        NULL in a NOT NULL column.
        """
        cols = self.schema.columns
        if len(values) != len(cols):
            raise TypeMismatchError(
                f"table {self.name!r} expects {len(cols)} values, got {len(values)}"
            )
        row = []
        for col, value in zip(cols, values):
            converted = coerce(value, col.dtype)
            if converted is None and not col.nullable:
                raise TypeMismatchError(f"column {self.name}.{col.name} is NOT NULL")
            row.append(converted)
        self.rows.append(tuple(row))
        self.version += 1

    def insert_dict(self, record: Dict[str, Any]) -> None:
        """Insert one row given as a ``{column: value}`` mapping.

        Missing columns default to NULL; unknown keys raise
        :class:`SchemaError`.
        """
        known = {c.name.lower() for c in self.schema.columns}
        for key in record:
            if key.lower() not in known:
                raise SchemaError(f"table {self.name!r} has no column {key!r}")
        lowered = {k.lower(): v for k, v in record.items()}
        self.insert([lowered.get(c.name.lower()) for c in self.schema.columns])

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk insert of positional rows; returns the number inserted.

        All rows are coerced and validated *before* any is stored, so a
        bad row leaves the table untouched (all-or-nothing), and
        ``version`` is bumped exactly once for the whole batch — callers
        loading millions of rows pay one index/column-store invalidation
        instead of one per row.
        """
        cols = self.schema.columns
        n_cols = len(cols)
        converted: List[Tuple[Any, ...]] = []
        for values in rows:
            if len(values) != n_cols:
                raise TypeMismatchError(
                    f"table {self.name!r} expects {n_cols} values, got {len(values)}"
                )
            row = []
            for col, value in zip(cols, values):
                item = coerce(value, col.dtype)
                if item is None and not col.nullable:
                    raise TypeMismatchError(
                        f"column {self.name}.{col.name} is NOT NULL"
                    )
                row.append(item)
            converted.append(tuple(row))
        if not converted:
            return 0
        self.rows.extend(converted)
        self.version += 1
        return len(converted)

    # -- secondary indexes --------------------------------------------------

    def secondary_index(self, column: str) -> Dict[Any, List[int]]:
        """Hash index over one column: canonical value → ascending row
        positions.

        Built lazily on first request and rebuilt automatically whenever
        ``version`` shows rows were inserted since the build.  NULLs are
        not indexed (they match no equality predicate).
        """
        key = self.schema.column(column).name.lower()
        cached = self._indexes.get(key)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        idx = self.schema.column_index(column)
        mapping: Dict[Any, List[int]] = {}
        for pos, row in enumerate(self.rows):
            value = row[idx]
            if value is None:
                continue
            mapping.setdefault(hash_key(value), []).append(pos)
        self._indexes[key] = (self.version, mapping)
        return mapping

    def invalidate_indexes(self) -> None:
        """Drop all cached secondary indexes (they rebuild on next use)."""
        self._indexes.clear()

    def column_store(self) -> "ColumnStore":
        """The table's columnar image (:class:`repro.sqldb.columnar.ColumnStore`).

        Built lazily on first request and rebuilt whenever ``version``
        shows inserts since the build, exactly like secondary indexes —
        so vectorized scans can never read stale data.
        """
        from .columnar import ColumnStore

        cached = self._column_store
        if cached is not None and cached.version == self.version:
            return cached
        store = ColumnStore.build(self)
        self._column_store = store
        return store

    def column_values(self, column: str) -> List[Any]:
        """All values of ``column`` in row order (including NULLs)."""
        idx = self.schema.column_index(column)
        return [row[idx] for row in self.rows]

    def distinct_values(self, column: str) -> List[Any]:
        """Distinct non-NULL values of ``column`` in first-seen order."""
        idx = self.schema.column_index(column)
        seen = set()
        out: List[Any] = []
        for row in self.rows:
            value = row[idx]
            if value is None or value in seen:
                continue
            seen.add(value)
            out.append(value)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, {len(self.rows)} rows)"
