"""Exception hierarchy for the in-memory SQL engine.

Every error raised by :mod:`repro.sqldb` derives from :class:`SqlError`,
so callers (e.g. the NLIDB evaluation harness, which must not crash when a
system emits malformed SQL) can catch a single base class.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all errors raised by the SQL engine."""


class ParseError(SqlError):
    """Raised when SQL text cannot be tokenized or parsed.

    Carries the approximate character ``position`` in the input when known.
    """

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class CatalogError(SqlError):
    """Raised for schema-level problems: unknown tables or columns,
    duplicate definitions, or invalid foreign keys."""


class SchemaError(CatalogError):
    """Raised when a schema definition itself is inconsistent
    (e.g. duplicate column names, foreign key to a missing column)."""


class TypeMismatchError(SqlError):
    """Raised when a value cannot be coerced to a column's declared type,
    or when an expression combines incompatible types."""


class ExecutionError(SqlError):
    """Raised when a structurally valid query fails during evaluation
    (e.g. a scalar subquery returning multiple rows)."""


class AmbiguousColumnError(CatalogError):
    """Raised when an unqualified column name matches more than one table
    in scope."""


class UnknownColumnError(CatalogError):
    """Raised when a column reference cannot be resolved in scope."""


class UnknownTableError(CatalogError):
    """Raised when a table name is not present in the database."""


class UnknownFunctionError(SqlError):
    """Raised when a query calls a function the engine does not define."""
