"""Exception hierarchy for the in-memory SQL engine.

Every error raised by :mod:`repro.sqldb` derives from :class:`SqlError`,
so callers (e.g. the NLIDB evaluation harness, which must not crash when a
system emits malformed SQL) can catch a single base class.  ``SqlError``
itself derives from :class:`repro.errors.ReproError`, which contributes
the stable ``code`` attribute shared with the static analyzer
(:mod:`repro.sqldb.analyzer`): each analyzer diagnostic code is the
``code`` of exactly one exception class here, so a statement rejected
statically with code ``SQL211`` is the same failure the executor would
report by raising :class:`UnknownColumnError`.

Code ranges:

- ``SQL1xx`` — lexing/parsing,
- ``SQL2xx`` — catalog and name resolution,
- ``SQL3xx`` — typing,
- ``SQL4xx`` — execution (including aggregate and subquery misuse),
- ``SQL5xx`` — static inference (always warning-grade: contradictory,
  tautological, or out-of-domain predicates).
"""

from __future__ import annotations

from repro.errors import ReproError


class SqlError(ReproError):
    """Base class for all errors raised by the SQL engine."""

    code = "SQL000"


class ParseError(SqlError):
    """Raised when SQL text cannot be tokenized or parsed.

    Carries the approximate character ``position`` in the input when
    known, plus 1-based ``line``/``column`` when the source text was
    available to compute them.
    """

    code = "SQL101"

    def __init__(self, message: str, position: int = -1, line: int = -1, column: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line
        self.column = column


class CatalogError(SqlError):
    """Raised for schema-level problems: unknown tables or columns,
    duplicate definitions, or invalid foreign keys."""

    code = "SQL200"


class SchemaError(CatalogError):
    """Raised when a schema definition itself is inconsistent
    (e.g. duplicate column names, foreign key to a missing column)."""

    code = "SQL201"


class UnknownTableError(CatalogError):
    """Raised when a table name is not present in the database."""

    code = "SQL210"


class UnknownColumnError(CatalogError):
    """Raised when a column reference cannot be resolved in scope."""

    code = "SQL211"


class AmbiguousColumnError(CatalogError):
    """Raised when an unqualified column name matches more than one table
    in scope."""

    code = "SQL212"


class DuplicateAliasError(CatalogError):
    """Two FROM/JOIN entries bound under the same name.  The executor
    tolerates this (the first binding shadows), so the analyzer reports
    it as a warning rather than the engine raising it."""

    code = "SQL213"


class UnknownFunctionError(SqlError):
    """Raised when a query calls a function the engine does not define."""

    code = "SQL214"


class TypeMismatchError(SqlError):
    """Raised when a value cannot be coerced to a column's declared type,
    or when an expression combines incompatible types."""

    code = "SQL300"


class ComparisonTypeError(TypeMismatchError):
    """Comparison between values of incomparable type families.  At
    runtime such comparisons are simply false (NULL-style semantics), so
    this is warning-grade: the predicate can never be satisfied."""

    code = "SQL301"


class ExecutionError(SqlError):
    """Raised when a structurally valid query fails during evaluation
    (e.g. a scalar subquery returning multiple rows)."""

    code = "SQL400"


class ArithmeticTypeError(TypeMismatchError, ExecutionError):
    """Arithmetic (or unary minus) over a non-numeric operand.  A type
    error detected statically, but the engine reports it lazily as an
    :class:`ExecutionError` on the first non-NULL row that reaches it —
    hence the dual parentage."""

    code = "SQL302"


class LikeTypeError(TypeMismatchError, ExecutionError):
    """``LIKE`` applied to a non-text operand; like
    :class:`ArithmeticTypeError`, statically a type error, at runtime an
    :class:`ExecutionError` on the first non-NULL row."""

    code = "SQL303"


class InListTypeError(TypeMismatchError):
    """``IN`` list whose items cannot all match the probed expression's
    type family (warning-grade: mismatched items never match)."""

    code = "SQL304"


class BetweenTypeError(TypeMismatchError):
    """``BETWEEN`` bounds incomparable with the tested expression
    (warning-grade: the range test is always false)."""

    code = "SQL305"


class NullInListError(TypeMismatchError):
    """Literal NULL inside an ``IN`` list (warning-grade: under
    three-valued logic a non-matching probe against a list containing
    NULL is *unknown*, so ``NOT IN (…, NULL)`` can never be satisfied)."""

    code = "SQL306"


class FunctionTypeError(TypeMismatchError):
    """A scalar function or numeric aggregate applied to an argument of a
    type it rejects at runtime (e.g. ``LOWER(42)``, ``SUM(name)``)."""

    code = "SQL307"


class SetOperationArityError(TypeMismatchError):
    """Compound (``UNION``/``EXCEPT``/``INTERSECT``) branches producing
    different numbers of output columns.  The executor raises this before
    evaluating either branch."""

    code = "SQL310"


class SetOperationTypeError(TypeMismatchError):
    """Compound branches pairing columns of incompatible type families
    (warning-grade: values still combine positionally, but comparisons
    between mismatched families never match during dedup)."""

    code = "SQL311"


class MisplacedWindowError(ExecutionError):
    """Window function in a context evaluated per-row before windows
    exist (WHERE, JOIN ... ON, GROUP BY keys, HAVING) or over a grouped
    query — contexts where the engine has no window scope."""

    code = "SQL312"


class WindowFunctionError(ExecutionError):
    """A window call the engine cannot evaluate: an unsupported function
    name after ``OVER``, wrong argument count, or a ranking function
    without the ``ORDER BY`` that defines its ranks."""

    code = "SQL313"


class CaseTypeError(TypeMismatchError):
    """``CASE`` whose branch results (or simple-form WHEN operands) mix
    incompatible type families (warning-grade: mismatched simple-form
    arms never match; mixed results still evaluate sqlite-style)."""

    code = "SQL314"


class CompoundOrderError(ExecutionError):
    """A compound query's ``ORDER BY`` term that is neither an output
    column name of the leftmost block nor a 1-based column position."""

    code = "SQL316"


class DivisionByZeroError(ExecutionError):
    """Division by a literal zero; the executor raises when the division
    is evaluated."""

    code = "SQL401"


class AggregateError(ExecutionError):
    """Base class for aggregate/GROUP BY misuse."""

    code = "SQL410"


class MisplacedAggregateError(AggregateError):
    """Aggregate call in a context that is evaluated per-row (WHERE,
    JOIN ... ON, GROUP BY keys, or ORDER BY of an ungrouped query)."""

    code = "SQL411"


class NestedAggregateError(AggregateError):
    """Aggregate call nested inside another aggregate's argument."""

    code = "SQL412"


class UngroupedColumnError(AggregateError):
    """A bare column in a grouped query that is not a grouping key.  The
    engine follows SQLite and evaluates it on a representative row, so
    the analyzer reports this as a warning."""

    code = "SQL413"


class GroupedStarError(AggregateError):
    """``SELECT *`` in a grouped query (no meaningful expansion)."""

    code = "SQL414"


class AggregateArityError(AggregateError):
    """An aggregate called with the wrong number (or shape) of
    arguments, e.g. ``SUM()`` or ``SUM(a, b)`` or ``AVG(*)``."""

    code = "SQL415"


class HavingScopeError(AggregateError):
    """``HAVING`` on an ungrouped, unaggregated query.  The engine
    silently ignores the clause, so this is warning-grade."""

    code = "SQL416"


class FunctionArityError(ExecutionError):
    """A scalar function called with the wrong number of arguments."""

    code = "SQL417"


class SubqueryError(ExecutionError):
    """Base class for structural subquery misuse."""

    code = "SQL420"


class SubqueryColumnsError(SubqueryError):
    """A scalar or ``IN`` subquery whose SELECT list does not produce
    exactly one output column."""

    code = "SQL421"


class StaticInferenceError(SqlError):
    """Base class for static-inference findings (``SQL5xx``).  All are
    warning-grade: the executor tolerates the construct, but inference
    proved the predicate cannot mean what it says."""

    code = "SQL500"


class ContradictoryPredicateError(StaticInferenceError):
    """A predicate (or a set of range predicates on one column) that can
    never be definitely true — the query returns no rows through it."""

    code = "SQL501"


class TautologicalPredicateError(StaticInferenceError):
    """A predicate that is definitely true on every row (e.g. ``x IS NOT
    NULL`` on a NOT NULL column) — it filters nothing."""

    code = "SQL502"


class OutOfDomainConstantError(StaticInferenceError):
    """A comparison constant outside the column's value domain (a
    fractional constant against an INTEGER column, a non-ISO string
    against a DATE column) — the comparison can never be satisfied."""

    code = "SQL503"


#: Every exception class keyed by its stable code — the analyzer uses
#: this to map diagnostic codes back onto error classes 1:1.
ERROR_CLASS_BY_CODE = {
    cls.code: cls
    for cls in (
        SqlError,
        ParseError,
        CatalogError,
        SchemaError,
        UnknownTableError,
        UnknownColumnError,
        AmbiguousColumnError,
        DuplicateAliasError,
        UnknownFunctionError,
        TypeMismatchError,
        ComparisonTypeError,
        ArithmeticTypeError,
        LikeTypeError,
        InListTypeError,
        BetweenTypeError,
        NullInListError,
        FunctionTypeError,
        SetOperationArityError,
        SetOperationTypeError,
        MisplacedWindowError,
        WindowFunctionError,
        CaseTypeError,
        CompoundOrderError,
        ExecutionError,
        DivisionByZeroError,
        AggregateError,
        MisplacedAggregateError,
        NestedAggregateError,
        UngroupedColumnError,
        GroupedStarError,
        AggregateArityError,
        HavingScopeError,
        FunctionArityError,
        SubqueryError,
        SubqueryColumnsError,
        StaticInferenceError,
        ContradictoryPredicateError,
        TautologicalPredicateError,
        OutOfDomainConstantError,
    )
}
