"""Vectorized columnar execution path for the in-memory SQL engine.

The row executor (:mod:`~repro.sqldb.executor`) interprets expressions
one row at a time over Python tuples; at survey scale (§6's latency
discussion) that costs microseconds per row and makes million-row
analytics queries take seconds.  This module adds a columnar mirror of
each table — one NumPy array per column plus a validity (NULL) bitmap —
and compiles eligible WHERE clauses into **Kleene three-valued masks**
evaluated array-at-a-time.

Design rules, in priority order:

1. **Byte-identity with the row path.**  Every result the columnar path
   produces must be indistinguishable — values, value *types*, row
   order, and raised exceptions — from ``Executor(db, use_planner=True,
   use_columnar=False)``.  The differential corpora in
   ``tests/test_sqldb_columnar.py`` enforce this.  Three techniques make
   it tractable:

   - predicates are vectorized only when the kernel provably mirrors
     :func:`~repro.sqldb.types.values_equal` /
     :func:`~repro.sqldb.types.values_compare` (numeric comparisons run
     in the same float64 domain the row path converts to; implicit
     ISO-date coercion is resolved once per literal at compile time);
   - all *output* values (projections, MIN/MAX results, list-path
     aggregate inputs, GROUP BY dict keys) are taken from the original
     row tuples, never round-tripped through NumPy, so object identity
     and bit patterns are preserved;
   - anything outside the supported envelope raises :class:`_Unsupported`
     at compile time and the query **falls back** to the row path, which
     then produces the canonical behaviour (including errors).

2. **Three-valued logic as int8 arrays.**  FALSE=0, UNKNOWN=1, TRUE=2;
   Kleene AND is ``minimum``, OR is ``maximum``, NOT is ``2 - x``, and
   the final WHERE keep-mask is ``mask == TRUE`` — exactly the
   executor's ``_truthy``.

3. **Partitioned scans.**  Masks are computed per fixed-size row chunk
   (:func:`repro.perf.partition.chunk_spans`); chunks are embarrassingly
   parallel and can be fanned out over a fork-based process pool
   (:func:`repro.perf.partition.run_partitioned`) with a deterministic
   concatenation, so parallelism never changes results.

Known fallback triggers (documented in ``docs/architecture.md``): joins,
subqueries, index-eligible scans, NaN-containing float columns under
ordering comparisons, per-row DATE↔TEXT coercion, arithmetic or scalar
functions inside WHERE, non-literal IN items, and text columns too wide
(or too exotic) for a fixed-width unicode array.
"""

from __future__ import annotations

import datetime
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - the toolchain bakes numpy in
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from .ast import (
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    SelectStatement,
    Star,
    UnaryOp,
    WindowFunction,
    split_conjuncts,
)
from .errors import (
    AggregateArityError,
    ArithmeticTypeError,
    GroupedStarError,
    NestedAggregateError,
    UnknownFunctionError,
)
from .functions import AGGREGATE_FUNCTIONS, call_scalar
from .types import DataType, iso_date_or_none, values_compare, values_equal

from ..perf.partition import DEFAULT_CHUNK_ROWS, chunk_spans, run_partitioned
from ..perf.profiler import active_profiler

#: Kleene truth codes; AND = minimum, OR = maximum, NOT = 2 - x.
FALSE3, UNKNOWN3, TRUE3 = 0, 1, 2

#: Widest fixed-width unicode column we will materialize (per string),
#: and a cap on the whole array's character budget so a single huge
#: column cannot balloon memory.
_TEXT_WIDTH_LIMIT = 64
_TEXT_CHARS_LIMIT = 64_000_000

_INT_SUM_LIMIT = 2**62


class _Unsupported(Exception):
    """Raised during compilation when a statement (or one operator in
    it) is outside the vectorized envelope; the engine falls back to the
    row path, which defines the canonical behaviour."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# Column storage
# ---------------------------------------------------------------------------


class ColumnData:
    """One column's typed array image.

    ``kind`` is one of ``int`` / ``float`` / ``bool`` / ``date`` /
    ``text`` (vectorizable) or ``other`` (only the NULL bitmap and the
    original Python values are available — IS NULL, COUNT and list-path
    aggregates still work).  ``values`` uses a neutral fill (0 / 0.0 /
    '' / False) at NULL positions; ``null`` is the validity complement.
    ``pylist`` holds the *original* Python objects in row order — every
    value the engine outputs comes from here, never from the array.
    """

    __slots__ = ("kind", "values", "null", "pylist", "has_nan", "int_sum_safe", "_float_view")

    def __init__(self, kind: str, values: Any, null: Any, pylist: List[Any]):
        self.kind = kind
        self.values = values
        self.null = null
        self.pylist = pylist
        self.has_nan = False
        self.int_sum_safe = False
        self._float_view: Any = None

    def as_float(self) -> Any:
        """The value array in the float64 domain the row path compares
        numerics in (cached; float columns return themselves)."""
        if self.kind == "float":
            return self.values
        if self._float_view is None:
            self._float_view = self.values.astype(np.float64)
        return self._float_view


def _build_column(values: List[Any], dtype: DataType) -> ColumnData:
    n = len(values)
    null = np.fromiter((v is None for v in values), dtype=np.bool_, count=n)
    if dtype is DataType.INTEGER:
        try:
            arr = np.fromiter(
                (0 if v is None else v for v in values), dtype=np.int64, count=n
            )
        except (OverflowError, TypeError):
            return ColumnData("other", None, null, values)
        col = ColumnData("int", arr, null, values)
        if n:
            extreme = max(abs(int(arr.max())), abs(int(arr.min())))
            col.int_sum_safe = extreme * n <= _INT_SUM_LIMIT
        else:
            col.int_sum_safe = True
        return col
    if dtype is DataType.FLOAT:
        arr = np.fromiter(
            (0.0 if v is None else v for v in values), dtype=np.float64, count=n
        )
        col = ColumnData("float", arr, null, values)
        col.has_nan = bool(np.isnan(arr).any())
        return col
    if dtype is DataType.BOOLEAN:
        arr = np.fromiter(
            (False if v is None else v for v in values), dtype=np.bool_, count=n
        )
        return ColumnData("bool", arr, null, values)
    if dtype is DataType.DATE:
        arr = np.fromiter(
            (0 if v is None else v.toordinal() for v in values), dtype=np.int64, count=n
        )
        return ColumnData("date", arr, null, values)
    if dtype is DataType.TEXT:
        width = 1
        for v in values:
            if v is None:
                continue
            if len(v) > width:
                width = len(v)
            if width > _TEXT_WIDTH_LIMIT or "\x00" in v:
                # NumPy 'U' arrays strip trailing NULs and wide columns
                # blow the memory budget; keep such columns row-only.
                return ColumnData("other", None, null, values)
        if width * n > _TEXT_CHARS_LIMIT:
            return ColumnData("other", None, null, values)
        try:
            arr = np.array(
                ["" if v is None else v for v in values], dtype=f"U{width}"
            )
        except Exception:
            return ColumnData("other", None, null, values)
        return ColumnData("text", arr, null, values)
    return ColumnData("other", None, null, values)  # pragma: no cover


class ColumnStore:
    """Columnar image of one table, cached on the table keyed by its
    ``version`` (see :meth:`repro.sqldb.table.Table.column_store`)."""

    __slots__ = ("version", "n_rows", "cols", "column_names")

    def __init__(self, version: int, n_rows: int, cols: List[ColumnData], names: List[str]):
        self.version = version
        self.n_rows = n_rows
        self.cols = cols
        self.column_names = names

    @classmethod
    def build(cls, table: Any) -> "ColumnStore":
        if np is None:  # pragma: no cover - numpy is baked into the image
            raise RuntimeError("numpy is required for the columnar store")
        schema = table.schema
        cols: List[ColumnData] = []
        for column in schema.columns:
            cols.append(_build_column(table.column_values(column.name), column.dtype))
        return cls(table.version, len(table.rows), cols, list(schema.column_names))

    def supported_kinds(self) -> Dict[str, str]:
        """Column name → storage kind (observability / tests)."""
        return {name: col.kind for name, col in zip(self.column_names, self.cols)}

    def nbytes(self) -> int:
        """Total array bytes held (profiling surface)."""
        total = 0
        for col in self.cols:
            if col.values is not None:
                total += int(col.values.nbytes)
            total += int(col.null.nbytes)
        return total


# ---------------------------------------------------------------------------
# Compiled predicate kernels (picklable: shipped to partition workers)
# ---------------------------------------------------------------------------


def _blank(n: int, code: int) -> Any:
    return np.full(n, code, dtype=np.int8)


class _Const:
    """A literal in boolean position: the row path's ``_bool3(value)``."""

    __slots__ = ("code",)

    def __init__(self, code: int):
        self.code = code

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        return _blank(hi - lo, self.code)


class _FixedNonNull:
    """Comparison whose verdict is constant for every non-NULL row
    (cross-family comparisons: ``values_equal`` says False, ordering says
    incomparable) but UNKNOWN where any referenced column is NULL."""

    __slots__ = ("js", "code")

    def __init__(self, js: Sequence[int], code: int):
        self.js = tuple(js)
        self.code = code

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        out = _blank(hi - lo, self.code)
        null = store.cols[self.js[0]].null[lo:hi]
        for j in self.js[1:]:
            null = null | store.cols[j].null[lo:hi]
        out[null] = UNKNOWN3
        return out


class _Truthy:
    """A bare column in boolean position — ``_bool3`` of the value."""

    __slots__ = ("j",)

    def __init__(self, j: int):
        self.j = j

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        col = store.cols[self.j]
        n = hi - lo
        if col.kind == "date":
            out = _blank(n, TRUE3)  # dates are always truthy
        else:
            vals = col.values[lo:hi]
            if col.kind == "int":
                truth = vals != 0
            elif col.kind == "float":
                truth = vals != 0.0  # NaN != 0.0 is True, matching bool(nan)
            elif col.kind == "bool":
                truth = vals
            else:  # text
                truth = vals != ""
            out = _blank(n, FALSE3)
            out[truth] = TRUE3
        out[col.null[lo:hi]] = UNKNOWN3
        return out


class _IsNullPred:
    """``IS [NOT] NULL`` — the one NULL test that yields a plain bool."""

    __slots__ = ("j", "negated")

    def __init__(self, j: int, negated: bool):
        self.j = j
        self.negated = negated

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        null = store.cols[self.j].null[lo:hi]
        out = _blank(hi - lo, TRUE3 if self.negated else FALSE3)
        out[null] = FALSE3 if self.negated else TRUE3
        return out


_CMP_FUNCS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class _CmpColLit:
    """``col OP literal`` within one comparable domain.

    ``domain`` selects the array view: ``num`` compares in float64 (the
    row path converts both sides with ``float()``), ``date`` compares
    proleptic ordinals, ``text``/``bool`` compare natively.
    """

    __slots__ = ("j", "op", "rhs", "domain")

    def __init__(self, j: int, op: str, rhs: Any, domain: str):
        self.j = j
        self.op = op
        self.rhs = rhs
        self.domain = domain

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        col = store.cols[self.j]
        if self.domain == "num":
            lhs = col.as_float()[lo:hi]
        else:
            lhs = col.values[lo:hi]
        truth = _CMP_FUNCS[self.op](lhs, self.rhs)
        out = _blank(hi - lo, FALSE3)
        out[truth] = TRUE3
        out[col.null[lo:hi]] = UNKNOWN3
        return out


class _CmpColCol:
    """``col OP col`` within one comparable domain; NULL on either side
    makes the comparison UNKNOWN."""

    __slots__ = ("jl", "jr", "op", "domain")

    def __init__(self, jl: int, jr: int, op: str, domain: str):
        self.jl = jl
        self.jr = jr
        self.op = op
        self.domain = domain

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        cl, cr = store.cols[self.jl], store.cols[self.jr]
        if self.domain == "num":
            lhs, rhs = cl.as_float()[lo:hi], cr.as_float()[lo:hi]
        else:
            lhs, rhs = cl.values[lo:hi], cr.values[lo:hi]
        truth = _CMP_FUNCS[self.op](lhs, rhs)
        out = _blank(hi - lo, FALSE3)
        out[truth] = TRUE3
        out[cl.null[lo:hi] | cr.null[lo:hi]] = UNKNOWN3
        return out


_like_to_regex = None


def _like_rx(pattern: str) -> Any:
    # Shared with the row path so both compile the identical regex (and
    # share its memoization); imported lazily to keep module loading
    # acyclic.
    global _like_to_regex
    if _like_to_regex is None:
        from .executor import _like_to_regex as impl

        _like_to_regex = impl
    return _like_to_regex(pattern)


class _LikePred:
    """``text_col LIKE 'pattern'`` via the row path's precompiled regex.

    Evaluated over the original Python strings (regex semantics exactly
    match the per-row interpreter); this is the one kernel that loops in
    Python, which is also why LIKE-heavy scans are the showcase for
    partition-parallel execution.
    """

    __slots__ = ("j", "pattern")

    def __init__(self, j: int, pattern: str):
        self.j = j
        self.pattern = pattern

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        match = _like_rx(self.pattern).match
        chunk = store.cols[self.j].pylist[lo:hi]
        return np.fromiter(
            (
                UNKNOWN3 if v is None else (TRUE3 if match(v) else FALSE3)
                for v in chunk
            ),
            dtype=np.int8,
            count=hi - lo,
        )


class _NotPred:
    __slots__ = ("child",)

    def __init__(self, child: Any):
        self.child = child

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        return (TRUE3 - self.child.eval(store, lo, hi)).astype(np.int8, copy=False)


class _AndPred:
    __slots__ = ("left", "right")

    def __init__(self, left: Any, right: Any):
        self.left = left
        self.right = right

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        return np.minimum(self.left.eval(store, lo, hi), self.right.eval(store, lo, hi))


class _OrPred:
    __slots__ = ("left", "right")

    def __init__(self, left: Any, right: Any):
        self.left = left
        self.right = right

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        return np.maximum(self.left.eval(store, lo, hi), self.right.eval(store, lo, hi))


# ---------------------------------------------------------------------------
# Two-valued (non-Kleene) kernels
#
# When the static inference pass proves a conjunct can never go UNKNOWN
# on any row that matters — every column whose NULL would leak UNKNOWN
# into its mask is NOT NULL (by schema or by data), or its NULL rows are
# rejected outright by another conjunct that stays Kleene — the conjunct
# is evaluated as a plain boolean array, skipping the validity bitmap
# and the int8 blank/overwrite round trip entirely.
# ---------------------------------------------------------------------------


class _B2Const:
    """A definite boolean constant (two-valued ``_Const``)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        return np.full(hi - lo, self.value, dtype=np.bool_)


class _B2Truthy:
    """Two-valued ``_Truthy``: truthiness of a never-NULL column."""

    __slots__ = ("j",)

    def __init__(self, j: int):
        self.j = j

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        col = store.cols[self.j]
        if col.kind == "date":
            return np.ones(hi - lo, dtype=np.bool_)
        vals = col.values[lo:hi]
        if col.kind == "int":
            return vals != 0
        if col.kind == "float":
            return vals != 0.0
        if col.kind == "bool":
            return vals.copy()  # never hand out a store view
        return vals != ""


class _B2IsNullPred:
    """Two-valued ``IS [NOT] NULL``.  Exact at *every* row (the Kleene
    kernel is already definite), so it converts unconditionally."""

    __slots__ = ("j", "negated")

    def __init__(self, j: int, negated: bool):
        self.j = j
        self.negated = negated

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        null = store.cols[self.j].null[lo:hi]
        return ~null if self.negated else null.copy()


class _B2CmpColLit:
    """Two-valued ``col OP literal`` — the comparison array, no bitmap."""

    __slots__ = ("j", "op", "rhs", "domain")

    def __init__(self, j: int, op: str, rhs: Any, domain: str):
        self.j = j
        self.op = op
        self.rhs = rhs
        self.domain = domain

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        col = store.cols[self.j]
        if self.domain == "num":
            lhs = col.as_float()[lo:hi]
        else:
            lhs = col.values[lo:hi]
        return _CMP_FUNCS[self.op](lhs, self.rhs)


class _B2CmpColCol:
    """Two-valued ``col OP col``."""

    __slots__ = ("jl", "jr", "op", "domain")

    def __init__(self, jl: int, jr: int, op: str, domain: str):
        self.jl = jl
        self.jr = jr
        self.op = op
        self.domain = domain

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        cl, cr = store.cols[self.jl], store.cols[self.jr]
        if self.domain == "num":
            lhs, rhs = cl.as_float()[lo:hi], cr.as_float()[lo:hi]
        else:
            lhs, rhs = cl.values[lo:hi], cr.values[lo:hi]
        return _CMP_FUNCS[self.op](lhs, rhs)


class _B2Like:
    """Two-valued LIKE.  The ``None`` guard covers rows whose NULLs are
    rejected by a pinned Kleene conjunct — their value here is moot, but
    the regex must not see ``None``."""

    __slots__ = ("j", "pattern")

    def __init__(self, j: int, pattern: str):
        self.j = j
        self.pattern = pattern

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        match = _like_rx(self.pattern).match
        chunk = store.cols[self.j].pylist[lo:hi]
        return np.fromiter(
            (False if v is None else bool(match(v)) for v in chunk),
            dtype=np.bool_,
            count=hi - lo,
        )


class _B2Not:
    __slots__ = ("child",)

    def __init__(self, child: Any):
        self.child = child

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        return ~self.child.eval(store, lo, hi)


class _B2And:
    __slots__ = ("left", "right")

    def __init__(self, left: Any, right: Any):
        self.left = left
        self.right = right

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        return self.left.eval(store, lo, hi) & self.right.eval(store, lo, hi)


class _B2Or:
    __slots__ = ("left", "right")

    def __init__(self, left: Any, right: Any):
        self.left = left
        self.right = right

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        return self.left.eval(store, lo, hi) | self.right.eval(store, lo, hi)


class _ConjunctivePred:
    """Top-level AND over independently compiled conjunct kernels, some
    Kleene int8 and some two-valued bool.

    ``keep = AND_i (mask_i == TRUE3)`` is identical to evaluating the
    Kleene AND of all conjuncts and testing ``== TRUE3`` at the end —
    the decomposition the two-valued conversion relies on.  Combination
    is non-inplace: kernels may return views of store arrays.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Any]):
        self.parts = tuple(parts)

    def eval(self, store: ColumnStore, lo: int, hi: int) -> Any:
        out = None
        for part in self.parts:
            mask = part.eval(store, lo, hi)
            keep = mask if mask.dtype == np.bool_ else mask == TRUE3
            out = keep if out is None else out & keep
        return out


def _kernel_null_refs(kernel: Any) -> frozenset:
    """Columns whose NULL at a row can make this kernel's two-valued
    conversion diverge from the Kleene mask at that row.

    ``_IsNullPred`` reads the bitmap but its verdict is definite and its
    conversion exact everywhere, so it contributes nothing; ``_Const``
    references no columns at all.
    """
    if isinstance(kernel, (_Truthy, _CmpColLit, _LikePred)):
        return frozenset((kernel.j,))
    if isinstance(kernel, _CmpColCol):
        return frozenset((kernel.jl, kernel.jr))
    if isinstance(kernel, _FixedNonNull):
        return frozenset(kernel.js)
    if isinstance(kernel, _NotPred):
        return _kernel_null_refs(kernel.child)
    if isinstance(kernel, (_AndPred, _OrPred)):
        return _kernel_null_refs(kernel.left) | _kernel_null_refs(kernel.right)
    return frozenset()


def _null_outcomes(kernel: Any, j: int) -> Tuple[bool, bool]:
    """``(never_true, never_false)`` of the Kleene kernel on rows where
    column ``j`` is NULL."""
    if isinstance(kernel, _Const):
        return kernel.code != TRUE3, kernel.code != FALSE3
    if isinstance(kernel, _FixedNonNull):
        if j in kernel.js:
            return True, True  # forced UNKNOWN
        return kernel.code != TRUE3, kernel.code != FALSE3
    if isinstance(kernel, (_Truthy, _CmpColLit, _LikePred)):
        return (True, True) if kernel.j == j else (False, False)
    if isinstance(kernel, _CmpColCol):
        return (True, True) if j in (kernel.jl, kernel.jr) else (False, False)
    if isinstance(kernel, _IsNullPred):
        if kernel.j == j:
            # Definite: TRUE for IS NULL, FALSE for IS NOT NULL.
            return (True, False) if kernel.negated else (False, True)
        return False, False
    if isinstance(kernel, _NotPred):
        nt, nf = _null_outcomes(kernel.child, j)
        return nf, nt
    if isinstance(kernel, _AndPred):
        lnt, lnf = _null_outcomes(kernel.left, j)
        rnt, rnf = _null_outcomes(kernel.right, j)
        return lnt or rnt, lnf and rnf
    if isinstance(kernel, _OrPred):
        lnt, lnf = _null_outcomes(kernel.left, j)
        rnt, rnf = _null_outcomes(kernel.right, j)
        return lnt and rnt, lnf or rnf
    return False, False


def _to_bool_kernel(kernel: Any) -> Optional[Any]:
    """The two-valued equivalent of a Kleene kernel, or ``None``.

    The conversion is exact at every row where all of the kernel's
    ``_kernel_null_refs`` columns are non-NULL (and, for IS [NOT] NULL
    and definite constants, at every row outright).  A ``_Const`` that is
    UNKNOWN stays Kleene: two-valuing it would invert wrongly under NOT.
    """
    if isinstance(kernel, (_Const, _FixedNonNull)):
        if kernel.code == TRUE3:
            return _B2Const(True)
        if kernel.code == FALSE3:
            return _B2Const(False)
        return None
    if isinstance(kernel, _Truthy):
        return _B2Truthy(kernel.j)
    if isinstance(kernel, _IsNullPred):
        return _B2IsNullPred(kernel.j, kernel.negated)
    if isinstance(kernel, _CmpColLit):
        return _B2CmpColLit(kernel.j, kernel.op, kernel.rhs, kernel.domain)
    if isinstance(kernel, _CmpColCol):
        return _B2CmpColCol(kernel.jl, kernel.jr, kernel.op, kernel.domain)
    if isinstance(kernel, _LikePred):
        return _B2Like(kernel.j, kernel.pattern)
    if isinstance(kernel, _NotPred):
        child = _to_bool_kernel(kernel.child)
        return None if child is None else _B2Not(child)
    if isinstance(kernel, (_AndPred, _OrPred)):
        left = _to_bool_kernel(kernel.left)
        right = _to_bool_kernel(kernel.right)
        if left is None or right is None:
            return None
        cls = _B2And if isinstance(kernel, _AndPred) else _B2Or
        return cls(left, right)
    return None


def _two_valued_parts(
    kernels: Sequence[Any], store: ColumnStore, schema: Any
) -> Tuple[List[Any], int]:
    """Convert eligible conjunct kernels to two-valued; returns
    ``(parts, converted_count)``.

    A conjunct converts when every column in its ``_kernel_null_refs``
    either can never be NULL (``Column.nullable`` is False, or no NULL
    is present in the current store — the compile cache is keyed on
    ``data_version``, so the data claim cannot go stale) or has its NULL
    rows rejected outright by another conjunct that *remains Kleene*.
    Rejectors are pinned (never themselves converted): two conjuncts
    must not two-value each other on the strength of mutual rejection —
    with fill values in place both could go TRUE on a NULL row the
    Kleene pair would have rejected.  The one exception is ``IS NOT
    NULL``, whose conversion is exact at NULL rows too and therefore
    still rejects after converting.
    """
    n = len(kernels)
    refs = [_kernel_null_refs(k) for k in kernels]
    all_refs: set = set().union(*refs) if refs else set()
    never_null = {
        j
        for j in all_refs
        if not schema.columns[j].nullable or not bool(store.cols[j].null.any())
    }
    parts: List[Any] = list(kernels)
    pinned: set = set()
    converted: set = set()
    for i in range(n):
        if i in pinned:
            continue
        bool_kernel = _to_bool_kernel(kernels[i])
        if bool_kernel is None:
            continue
        unsafe = refs[i] - never_null
        helpers: set = set()
        ok = True
        for j in sorted(unsafe):
            helper = None
            needs_pin = False
            for k in range(n):
                if k == i:
                    continue
                if (
                    isinstance(kernels[k], _IsNullPred)
                    and kernels[k].negated
                    and kernels[k].j == j
                ):
                    helper, needs_pin = k, False
                    break
                if k in converted:
                    continue
                if _null_outcomes(kernels[k], j)[0]:
                    helper, needs_pin = k, True
                    break
            if helper is None:
                ok = False
                break
            if needs_pin:
                helpers.add(helper)
        if not ok:
            continue
        parts[i] = bool_kernel
        converted.add(i)
        pinned |= helpers
    return parts, len(converted)


def _scan_span_task(shared: Tuple[ColumnStore, Any], lo: int, hi: int) -> Any:
    """Partition-worker entry point: evaluate the compiled predicate over
    one ``[lo, hi)`` row span.  ``shared`` travels by fork inheritance
    (the arrays are never pickled); the returned int8 mask is small."""
    store, pred = shared
    return pred.eval(store, lo, hi)


# ---------------------------------------------------------------------------
# WHERE compiler
# ---------------------------------------------------------------------------

_MIRRORED_OP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_ORDER_OPS = ("<", "<=", ">", ">=")
_VALUE_KINDS = ("int", "float", "bool", "date", "text")


def _stmt_exprs(stmt: SelectStatement):
    """Every expression root of a single-block statement, in clause order."""
    for item in stmt.select_items:
        yield item.expr
    if stmt.where is not None:
        yield stmt.where
    for expr in stmt.group_by:
        yield expr
    if stmt.having is not None:
        yield stmt.having
    for order in stmt.order_by:
        yield order.expr


def _code3(value: Any) -> int:
    """The row path's ``_bool3`` as a truth code."""
    if value is None:
        return UNKNOWN3
    return TRUE3 if bool(value) else FALSE3


class _WhereCompiler:
    """Compiles a WHERE expression into a mask-kernel tree, or raises
    :class:`_Unsupported` naming the first operator outside the envelope."""

    def __init__(self, store: ColumnStore, schema: Any, binding: str):
        self.store = store
        self.schema = schema
        self.binding = binding

    def compile(self, expr: Expr) -> Any:
        return self._expr(expr)

    # -- resolution ---------------------------------------------------------

    def _col(self, ref: ColumnRef) -> int:
        if ref.table is not None and ref.table.lower() != self.binding:
            raise _Unsupported(f"column {ref.to_sql()!r} is outside the scanned table")
        if ref.column not in self.schema:
            # Could be a correlated outer reference (or an error); either
            # way the row path owns the resolution walk.
            raise _Unsupported(f"column {ref.to_sql()!r} does not resolve locally")
        return self.schema.column_index(ref.column)

    def _value_col(self, ref: ColumnRef) -> int:
        j = self._col(ref)
        if self.store.cols[j].kind not in _VALUE_KINDS:
            raise _Unsupported(f"column {ref.column!r} has no vectorizable storage")
        return j

    # -- expression dispatch ------------------------------------------------

    def _expr(self, expr: Expr) -> Any:
        if isinstance(expr, Literal):
            return _Const(_code3(expr.value))
        if isinstance(expr, ColumnRef):
            return _Truthy(self._value_col(expr))
        if isinstance(expr, UnaryOp):
            if expr.op.upper() == "NOT":
                return _NotPred(self._expr(expr.operand))
            raise _Unsupported("arithmetic in WHERE")
        if isinstance(expr, BinaryOp):
            op = expr.op
            if op == "AND":
                return _AndPred(self._expr(expr.left), self._expr(expr.right))
            if op == "OR":
                return _OrPred(self._expr(expr.left), self._expr(expr.right))
            if op in _CMP_FUNCS:
                return self._cmp(op, expr.left, expr.right)
            if op == "LIKE":
                return self._like(expr.left, expr.right)
            raise _Unsupported(f"operator {op!r} in WHERE")
        if isinstance(expr, IsNull):
            if isinstance(expr.operand, ColumnRef):
                return _IsNullPred(self._col(expr.operand), expr.negated)
            if isinstance(expr.operand, Literal):
                is_null = expr.operand.value is None
                verdict = (not is_null) if expr.negated else is_null
                return _Const(TRUE3 if verdict else FALSE3)
            raise _Unsupported("IS NULL over a computed expression")
        if isinstance(expr, Between):
            low = self._cmp_exprs(">=", expr.operand, expr.low)
            high = self._cmp_exprs("<=", expr.operand, expr.high)
            node: Any = _AndPred(low, high)
            return _NotPred(node) if expr.negated else node
        if isinstance(expr, InList):
            return self._in_list(expr)
        if isinstance(expr, CaseExpr):
            raise _Unsupported("CASE expression in WHERE")
        raise _Unsupported(f"{type(expr).__name__} in WHERE")

    def _cmp_exprs(self, op: str, left: Expr, right: Expr) -> Any:
        return self._cmp(op, left, right)

    def _cmp(self, op: str, left: Expr, right: Expr) -> Any:
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return self._col_lit(op, left, right.value)
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            return self._col_lit(_MIRRORED_OP[op], right, left.value)
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            return self._col_col(op, left, right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            return _Const(self._lit_lit(op, left.value, right.value))
        raise _Unsupported("comparison over computed expressions")

    def _lit_lit(self, op: str, lv: Any, rv: Any) -> int:
        # Mirrors Executor._eval_binary / _compare3 for two constants.
        if lv is None or rv is None:
            return UNKNOWN3
        if op == "=":
            return TRUE3 if values_equal(lv, rv) else FALSE3
        if op == "!=":
            return TRUE3 if not values_equal(lv, rv) else FALSE3
        cmp = values_compare(lv, rv)
        if cmp is None:
            return FALSE3
        verdict = {
            "<": cmp < 0,
            "<=": cmp <= 0,
            ">": cmp > 0,
            ">=": cmp >= 0,
        }[op]
        return TRUE3 if verdict else FALSE3

    def _col_lit(self, op: str, ref: ColumnRef, lit: Any) -> Any:
        j = self._value_col(ref)
        col = self.store.cols[j]
        kind = col.kind
        if lit is None:
            return _Const(UNKNOWN3)
        mismatch_code = TRUE3 if op == "!=" else FALSE3
        if isinstance(lit, bool):
            if kind == "bool":
                return _CmpColLit(j, op, lit, "bool")
            return _FixedNonNull((j,), mismatch_code)
        if isinstance(lit, (int, float)):
            if isinstance(lit, float) and math.isnan(lit):
                raise _Unsupported("NaN literal")
            if kind in ("int", "float"):
                if op in _ORDER_OPS and kind == "float" and col.has_nan:
                    # values_compare treats NaN as equal-to-everything
                    # (compares false both ways); NumPy says false. Only
                    # the row path reproduces the former.
                    raise _Unsupported(
                        f"ordering comparison on NaN-containing column {ref.column!r}"
                    )
                try:
                    rhs = float(lit)
                except OverflowError:
                    raise _Unsupported("integer literal beyond float range") from None
                return _CmpColLit(j, op, rhs, "num")
            return _FixedNonNull((j,), mismatch_code)
        if isinstance(lit, str):
            if kind == "text":
                if "\x00" in lit:
                    raise _Unsupported("NUL byte in text literal")
                return _CmpColLit(j, op, lit, "text")
            if kind == "date":
                coerced = iso_date_or_none(lit)
                if coerced is not None:
                    return _CmpColLit(j, op, coerced.toordinal(), "date")
                return _FixedNonNull((j,), mismatch_code)
            return _FixedNonNull((j,), mismatch_code)
        if isinstance(lit, datetime.date):
            if kind == "date":
                return _CmpColLit(j, op, lit.toordinal(), "date")
            if kind == "text":
                # values_equal would try to parse each string cell as a
                # date — per-row behaviour the kernels don't model.
                raise _Unsupported("DATE literal against TEXT column")
            return _FixedNonNull((j,), mismatch_code)
        raise _Unsupported(f"literal {lit!r} in comparison")

    def _col_col(self, op: str, left: ColumnRef, right: ColumnRef) -> Any:
        jl, jr = self._value_col(left), self._value_col(right)
        cl, cr = self.store.cols[jl], self.store.cols[jr]
        kl, kr = cl.kind, cr.kind
        numeric = ("int", "float")
        if kl in numeric and kr in numeric:
            if op in _ORDER_OPS and (cl.has_nan or cr.has_nan):
                raise _Unsupported("ordering comparison on NaN-containing column")
            return _CmpColCol(jl, jr, op, "num")
        if kl == kr and kl in ("bool", "text", "date"):
            return _CmpColCol(jl, jr, op, kl)
        if (kl, kr) in (("date", "text"), ("text", "date")):
            raise _Unsupported("DATE/TEXT column comparison needs per-row coercion")
        return _FixedNonNull((jl, jr), TRUE3 if op == "!=" else FALSE3)

    def _like(self, left: Expr, right: Expr) -> Any:
        if (
            isinstance(left, ColumnRef)
            and isinstance(right, Literal)
            and isinstance(right.value, str)
        ):
            j = self._col(left)
            if self.store.cols[j].kind == "text":
                return _LikePred(j, right.value)
            # Non-text columns raise LikeTypeError per row (but only for
            # rows actually reached) — row-path territory.
        raise _Unsupported("LIKE outside text-column-vs-pattern form")

    def _in_list(self, expr: InList) -> Any:
        if not isinstance(expr.operand, ColumnRef):
            raise _Unsupported("IN over a computed operand")
        for item in expr.items:
            if not isinstance(item, Literal):
                raise _Unsupported("non-literal IN list item")
        j = self._value_col(expr.operand)
        saw_null = any(item.value is None for item in expr.items)
        node: Any = None
        for item in expr.items:
            if item.value is None:
                continue
            eq = self._col_lit("=", expr.operand, item.value)
            node = eq if node is None else _OrPred(node, eq)
        if node is None:
            # No non-NULL items: never a hit, so the verdict is UNKNOWN
            # for a NULL probe (or when the list held a NULL), else FALSE.
            node = _FixedNonNull((j,), FALSE3)
        if saw_null:
            node = _OrPred(node, _Const(UNKNOWN3))
        return _NotPred(node) if expr.negated else node


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()

_NO_FAST = object()  # sentinel: no exact vectorized aggregate, use the list path


class _CompiledQuery:
    """One statement's vectorized execution recipe.

    ``group_js`` is ``None`` for a whole-table aggregate (one group) and
    a list of column positions for GROUP BY keys.  ``fast_items`` /
    ``fast_order`` hold gather instructions — ``("col", j)``,
    ``("lit", value)``, ``("star",)``, ``("star_skip",)`` — when every
    projection and ORDER BY expression is a plain column/literal;
    otherwise they are ``None`` and surviving rows are projected through
    the row path's evaluator (identical results, including errors).
    """

    __slots__ = (
        "table", "binding", "pred", "grouped", "group_js", "fast_items",
        "fast_order", "twoval", "nconj",
    )

    def __init__(
        self,
        table: Any,
        binding: str,
        pred: Any,
        grouped: bool,
        group_js: Any,
        fast_items: Any,
        fast_order: Any,
        twoval: int = 0,
        nconj: int = 0,
    ):
        self.table = table
        self.binding = binding
        self.pred = pred
        self.grouped = grouped
        self.group_js = group_js
        self.fast_items = fast_items
        self.fast_order = fast_order
        #: WHERE conjuncts compiled to two-valued kernels / total conjuncts
        self.twoval = twoval
        self.nconj = nconj


class _GroupCtx:
    """One group's row indices plus lazily built row-path scopes."""

    __slots__ = ("engine", "compiled", "store", "schema", "rows_list", "gidx", "parent",
                 "_idx_list", "_members", "_rep")

    def __init__(
        self,
        engine: "ColumnarEngine",
        compiled: _CompiledQuery,
        store: ColumnStore,
        schema: Any,
        rows_list: List[tuple],
        gidx: Any,
        parent: Any,
    ):
        self.engine = engine
        self.compiled = compiled
        self.store = store
        self.schema = schema
        self.rows_list = rows_list
        self.gidx = gidx
        self.parent = parent
        self._idx_list = None
        self._members = None
        self._rep = None

    def idx_list(self) -> List[int]:
        if self._idx_list is None:
            self._idx_list = self.gidx.tolist()
        return self._idx_list

    def rep_scope(self) -> Any:
        """The scope ``_eval_group`` evaluates bare columns on: the
        group's first member row (or an empty scope for the empty
        whole-table group)."""
        if self._rep is None:
            scope_cls = self.engine._scope_cls
            if self.gidx.size:
                row = self.rows_list[int(self.gidx[0])]
                self._rep = scope_cls(
                    [(self.compiled.binding, self.schema, row)], self.parent
                )
            else:
                self._rep = scope_cls([], self.parent)
        return self._rep

    def members(self) -> List[Any]:
        """Full per-member scopes, for aggregate arguments the fast
        kernels cannot handle (built at most once per group)."""
        if self._members is None:
            scope_cls = self.engine._scope_cls
            binding = self.compiled.binding
            schema = self.schema
            parent = self.parent
            rows = self.rows_list
            self._members = [
                scope_cls([(binding, schema, rows[i])], parent)
                for i in self.idx_list()
            ]
        return self._members


class ColumnarEngine:
    """Vectorized single-table execution behind the planning executor.

    Created lazily by :class:`~repro.sqldb.executor.Executor` when
    ``use_columnar`` is on; :meth:`try_execute` either claims a statement
    (returning projected rows byte-identical to the row path) or returns
    ``None``, in which case the executor proceeds down the row path.
    """

    def __init__(self, executor: Any, chunk_rows: Optional[int] = None, jobs: int = 0):
        if np is None:
            raise RuntimeError("numpy is required for the columnar engine")
        # The executor module is fully initialized by the time an
        # Executor instance exists, so this import cannot cycle.
        from . import executor as rowpath

        self._ex = executor
        self._scope_cls = rowpath._Scope
        self._bool3 = rowpath._bool3
        self._not3 = rowpath._not3
        self._and3 = rowpath._and3
        self._or3 = rowpath._or3
        self.chunk_rows = int(chunk_rows) if chunk_rows else DEFAULT_CHUNK_ROWS
        self.jobs = int(jobs or 0)
        #: below this row count a parallel scan is all fork overhead
        self.parallel_min_rows = 2 * self.chunk_rows
        #: why the last statement fell back (``None`` when it was claimed)
        self.last_fallback: Optional[str] = None
        self._cache: Dict[int, Tuple[Any, Any]] = {}
        self._cache_version = executor.database.data_version

    # -- public surface -----------------------------------------------------

    def try_execute(
        self, stmt: SelectStatement, plan: Any, parent: Any
    ) -> Optional[Tuple[List[tuple], List[tuple], List[str]]]:
        """Vectorized ``(rows, order_rows, columns)`` for ``stmt``, or
        ``None`` when the statement is outside the supported envelope."""
        compiled = self._compiled(stmt, plan)
        if isinstance(compiled, str):
            self.last_fallback = compiled
            return None
        self.last_fallback = None
        ex = self._ex
        table = ex.database.table(compiled.table)
        store = table.column_store()
        n = store.n_rows
        spans = chunk_spans(n, self.chunk_rows)
        with self._span("columnar-scan"):
            if compiled.pred is None:
                idx = np.arange(n, dtype=np.int64)
            else:
                masks = self._masks(store, compiled.pred, spans, n)
                mask = masks[0] if len(masks) == 1 else np.concatenate(masks)
                keep = mask if mask.dtype == np.bool_ else mask == TRUE3
                idx = np.flatnonzero(keep)
        stats = ex._stats
        stats.full_scans += 1
        stats.rows_scanned += n
        stats.partitions_scanned += len(spans)
        stats.vectorized += 1
        stats.twoval_kernels += compiled.twoval
        rows_list = table.rows
        if compiled.grouped:
            rows, order_rows = self._grouped(
                stmt, compiled, store, table.schema, rows_list, idx, parent
            )
        elif compiled.fast_items is not None:
            with self._span("columnar-project"):
                rows, order_rows = self._fast_gather(compiled, rows_list, idx)
        else:
            with self._span("columnar-project"):
                scopes = [
                    self._scope_cls(
                        [(compiled.binding, table.schema, rows_list[i])], parent
                    )
                    for i in idx.tolist()
                ]
                rows, order_rows = ex._project_rows(stmt, scopes)
        columns = ex._output_columns(stmt, [])
        return rows, order_rows, columns

    def describe(self, stmt: SelectStatement, plan: Any) -> str:
        """One EXPLAIN line: the vectorized shape, or the fallback reason."""
        compiled = self._compiled(stmt, plan)
        if isinstance(compiled, str):
            return f"columnar: row path ({compiled})"
        bits = ["scan"]
        if compiled.pred is not None:
            bits.append("filter")
        if compiled.grouped:
            bits.append("group" if compiled.group_js else "aggregate")
        elif compiled.fast_items is not None:
            bits.append("project")
        else:
            bits.append("project(row-eval)")
        detail = f"chunk_rows={self.chunk_rows}, jobs={self.jobs or 1}"
        if compiled.twoval:
            detail = f"2-valued filter {compiled.twoval}/{compiled.nconj}, {detail}"
        return f"columnar: vectorized {'+'.join(bits)} ({detail})"

    # -- compilation --------------------------------------------------------

    def _compiled(self, stmt: SelectStatement, plan: Any) -> Any:
        """Cached compile result: a :class:`_CompiledQuery`, or the
        fallback reason as a string."""
        db = self._ex.database
        if db.data_version != self._cache_version:
            # Data changes can flip data-dependent eligibility (NaN
            # presence, integer sum bounds, text widths).
            self._cache.clear()
            self._cache_version = db.data_version
        entry = self._cache.get(id(stmt))
        if entry is not None and entry[0] is stmt:
            return entry[1]
        try:
            result: Any = self._compile(stmt, plan)
        except _Unsupported as unsupported:
            result = unsupported.reason
        except Exception as exc:  # any surprise → canonical row path
            result = f"compile abandoned ({type(exc).__name__})"
        if len(self._cache) > 256:
            self._cache.clear()
        self._cache[id(stmt)] = (stmt, result)
        return result

    def _compile(self, stmt: SelectStatement, plan: Any) -> _CompiledQuery:
        if stmt.from_table is None:
            raise _Unsupported("no FROM clause")
        if stmt.joins:
            raise _Unsupported("join")
        if stmt.subqueries():
            raise _Unsupported("subquery")
        if plan.base is None:
            raise _Unsupported("no base scan")
        if plan.base.index_column is not None:
            # The planner found an index-answerable equality/IN; the
            # index lookup reads fewer rows than any full scan.
            raise _Unsupported("index scan preferred")
        for root in _stmt_exprs(stmt):
            for node in root.walk():
                if isinstance(node, WindowFunction):
                    # Windows need the full post-filter row set in order;
                    # the row path owns partition/frame evaluation.
                    raise _Unsupported("window function")
        ex = self._ex
        table = ex.database.table(stmt.from_table.table)
        store = table.column_store()
        schema = table.schema
        binding = stmt.from_table.binding.lower()
        # The planner's statically simplified WHERE (folded constants,
        # tautologies and implied ranges dropped).  When nothing was
        # rewritten, effective_where is the original object — so plans
        # built without inference behave exactly as before.
        where = plan.effective_where if plan.static_rewrites else stmt.where
        pred = None
        twoval = 0
        nconj = 0
        if where is not None:
            compiler = _WhereCompiler(store, schema, binding)
            if getattr(ex, "infer", True):
                # Compile per conjunct (same left-to-right order as the
                # AND tree, so fallback reasons are identical), then let
                # inference pick two-valued kernels where sound.
                kernels = [compiler.compile(c) for c in split_conjuncts(where)]
                nconj = len(kernels)
                parts, twoval = _two_valued_parts(kernels, store, schema)
                if twoval:
                    pred = _ConjunctivePred(parts)
                else:
                    # Nothing converted: keep the classic Kleene AND
                    # chain (min-combination is associative, so the
                    # left-assoc rebuild is mask-identical).
                    pred = kernels[0]
                    for kernel in kernels[1:]:
                        pred = _AndPred(pred, kernel)
            else:
                pred = compiler.compile(where)
        grouped = bool(stmt.group_by) or ex._projects_aggregate(stmt)
        if grouped and any(
            isinstance(node, CaseExpr)
            for root in _stmt_exprs(stmt)
            for node in root.walk()
        ):
            # CASE arms may mix aggregates with per-group scalars; the
            # row path's grouped evaluator handles that shape.
            raise _Unsupported("CASE in a grouped query")
        group_js = None
        fast_items = fast_order = None
        if grouped:
            if stmt.group_by:
                group_js = []
                for expr in stmt.group_by:
                    if not isinstance(expr, ColumnRef):
                        raise _Unsupported("computed GROUP BY key")
                    group_js.append(self._local_col(expr, schema, binding))
        else:
            fast_items, fast_order = self._fast_projection(stmt, schema, binding)
        return _CompiledQuery(
            table.name, binding, pred, grouped, group_js, fast_items, fast_order,
            twoval, nconj,
        )

    def _local_col(self, ref: ColumnRef, schema: Any, binding: str) -> int:
        if ref.table is not None and ref.table.lower() != binding:
            raise _Unsupported(f"column {ref.to_sql()!r} is outside the scanned table")
        if ref.column not in schema:
            raise _Unsupported(f"column {ref.to_sql()!r} does not resolve locally")
        return schema.column_index(ref.column)

    def _fast_projection(
        self, stmt: SelectStatement, schema: Any, binding: str
    ) -> Tuple[Optional[List[tuple]], Optional[List[tuple]]]:
        """Gather instructions when every output is a column/literal;
        ``(None, None)`` sends survivors through ``_project_rows``."""
        items: List[tuple] = []
        for item in stmt.select_items:
            expr = item.expr
            if isinstance(expr, Star):
                if expr.table is not None and expr.table.lower() != binding:
                    # Contributes no values; _output_columns later raises
                    # UnknownTableError exactly as the row path does.
                    items.append(("star_skip",))
                else:
                    items.append(("star",))
            elif isinstance(expr, ColumnRef):
                if (expr.table is not None and expr.table.lower() != binding) or (
                    expr.column not in schema
                ):
                    return None, None  # correlated or erroneous: row path
                items.append(("col", schema.column_index(expr.column)))
            elif isinstance(expr, Literal):
                items.append(("lit", expr.value))
            else:
                return None, None
        order_items: List[tuple] = []
        alias_map = self._ex._alias_exprs(stmt)
        for order in stmt.order_by:
            expr = self._ex._substitute_alias(order.expr, alias_map)
            if isinstance(expr, ColumnRef):
                if (expr.table is not None and expr.table.lower() != binding) or (
                    expr.column not in schema
                ):
                    return None, None
                order_items.append(("col", schema.column_index(expr.column)))
            elif isinstance(expr, Literal):
                order_items.append(("lit", expr.value))
            else:
                return None, None
        return items, order_items

    # -- scanning -----------------------------------------------------------

    def _span(self, name: str) -> Any:
        # Direct profiler spans (not profile_stage): stage hooks are the
        # serving layer's fault-injection seam and must not fire for
        # engine-internal kernels.
        profiler = active_profiler()
        if profiler is None:
            return _NOOP_SPAN
        return profiler.span(name)

    def _masks(
        self, store: ColumnStore, pred: Any, spans: List[Tuple[int, int]], n: int
    ) -> List[Any]:
        if self.jobs > 1 and len(spans) > 1 and n >= self.parallel_min_rows:
            return run_partitioned(_scan_span_task, (store, pred), spans, self.jobs)
        return [pred.eval(store, lo, hi) for lo, hi in spans]

    # -- projection ---------------------------------------------------------

    def _fast_gather(
        self, compiled: _CompiledQuery, rows_list: List[tuple], idx: Any
    ) -> Tuple[List[tuple], List[tuple]]:
        items = compiled.fast_items
        order_items = compiled.fast_order
        idx_list = idx.tolist()
        if not order_items:
            # The hot shapes: SELECT * and SELECT col, ...
            if len(items) == 1 and items[0][0] == "star":
                rows = [rows_list[i] for i in idx_list]
                return rows, [()] * len(rows)
            if items and all(tag[0] == "col" for tag in items):
                if len(items) == 1:
                    j = items[0][1]
                    rows = [(rows_list[i][j],) for i in idx_list]
                else:
                    js = [tag[1] for tag in items]
                    rows = [tuple(rows_list[i][j] for j in js) for i in idx_list]
                return rows, [()] * len(rows)
        rows = []
        order_rows = []
        for i in idx_list:
            row = rows_list[i]
            out: List[Any] = []
            for tag in items:
                kind = tag[0]
                if kind == "col":
                    out.append(row[tag[1]])
                elif kind == "star":
                    out.extend(row)
                elif kind == "lit":
                    out.append(tag[1])
                # "star_skip" contributes nothing
            rows.append(tuple(out))
            order_rows.append(
                tuple(
                    row[tag[1]] if tag[0] == "col" else tag[1] for tag in order_items
                )
            )
        return rows, order_rows

    # -- grouped execution --------------------------------------------------

    def _grouped(
        self,
        stmt: SelectStatement,
        compiled: _CompiledQuery,
        store: ColumnStore,
        schema: Any,
        rows_list: List[tuple],
        idx: Any,
        parent: Any,
    ) -> Tuple[List[tuple], List[tuple]]:
        ex = self._ex
        with self._span("columnar-group"):
            group_arrays = self._group_indices(compiled, store, idx)
            ctxs = [
                _GroupCtx(self, compiled, store, schema, rows_list, gidx, parent)
                for gidx in group_arrays
            ]
        with self._span("columnar-aggregate"):
            alias_map = ex._alias_exprs(stmt)
            rows: List[tuple] = []
            order_rows: List[tuple] = []
            for group in ctxs:
                if stmt.having is not None and not ex._truthy(
                    self._group_eval(stmt.having, group)
                ):
                    continue
                out: List[Any] = []
                for item in stmt.select_items:
                    if isinstance(item.expr, Star):
                        raise GroupedStarError(
                            "SELECT * is not valid in a grouped query"
                        )
                    out.append(self._group_eval(item.expr, group))
                rows.append(tuple(out))
                order_rows.append(
                    tuple(
                        self._group_eval(
                            ex._substitute_alias(order.expr, alias_map), group
                        )
                        for order in stmt.order_by
                    )
                )
        return rows, order_rows

    def _group_indices(
        self, compiled: _CompiledQuery, store: ColumnStore, idx: Any
    ) -> List[Any]:
        """Partition surviving row indices into groups, each an ascending
        int64 array, in first-occurrence order — exactly the insertion
        order of the row path's group dict."""
        js = compiled.group_js
        if js is None:
            return [idx]
        if len(js) == 1:
            col = store.cols[js[0]]
            if col.kind in ("int", "bool", "date", "text") or (
                col.kind == "float" and not col.has_nan
            ):
                return self._group_single_fast(col, idx)
        # Dict path over the original Python values: key equality/hashing
        # is then *identical* to the row path (including NaN's
        # never-equal-to-itself identity buckets).
        pylists = [store.cols[j].pylist for j in js]
        groups: Dict[tuple, List[int]] = {}
        order: List[tuple] = []
        if len(pylists) == 1:
            values = pylists[0]
            for i in idx.tolist():
                key = (values[i],)
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = bucket = []
                    order.append(key)
                bucket.append(i)
        else:
            for i in idx.tolist():
                key = tuple(values[i] for values in pylists)
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = bucket = []
                    order.append(key)
                bucket.append(i)
        return [
            np.fromiter(groups[key], dtype=np.int64, count=len(groups[key]))
            for key in order
        ]

    def _group_single_fast(self, col: ColumnData, idx: Any) -> List[Any]:
        """Single-key grouping via ``np.unique`` on the key array; NULLs
        form their own group.  Groups come back ordered by first
        occurrence and members stay in ascending row order, matching the
        dict path bit for bit."""
        null_sel = col.null[idx]
        nn_idx = idx[~null_sel]
        entries: List[Tuple[int, Any]] = []
        if nn_idx.size:
            vals = col.values[nn_idx]
            uniq, first, inverse = np.unique(
                vals, return_index=True, return_inverse=True
            )
            order_sort = np.argsort(inverse, kind="stable")
            counts = np.bincount(inverse, minlength=len(uniq))
            bounds = np.concatenate(([0], np.cumsum(counts)))
            sorted_idx = nn_idx[order_sort]
            for g in range(len(uniq)):
                member_idx = sorted_idx[bounds[g] : bounds[g + 1]]
                entries.append((int(nn_idx[first[g]]), member_idx))
        null_idx = idx[null_sel]
        if null_idx.size:
            entries.append((int(null_idx[0]), null_idx))
        entries.sort(key=lambda entry: entry[0])
        return [member_idx for _, member_idx in entries]

    # -- grouped expression evaluation (mirrors Executor._eval_group) -------

    def _group_eval(self, expr: Expr, group: _GroupCtx) -> Any:
        ex = self._ex
        if isinstance(expr, FuncCall) and expr.is_aggregate:
            return self._group_aggregate(expr, group)
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, BinaryOp):
            if expr.op in ("AND", "OR"):
                left = self._bool3(self._group_eval(expr.left, group))
                if expr.op == "AND" and left is False:
                    return False
                if expr.op == "OR" and left is True:
                    return True
                right = self._bool3(self._group_eval(expr.right, group))
                if expr.op == "AND":
                    return self._and3(left, right)
                return self._or3(left, right)
            left = self._group_eval(expr.left, group)
            right = self._group_eval(expr.right, group)
            return ex._eval_binary(
                BinaryOp(expr.op, Literal(left), Literal(right)), group.rep_scope()
            )
        if isinstance(expr, UnaryOp):
            inner = self._group_eval(expr.operand, group)
            if expr.op.upper() == "NOT":
                return self._not3(self._bool3(inner))
            if inner is None:
                return None
            if isinstance(inner, bool) or not isinstance(inner, (int, float)):
                raise ArithmeticTypeError(f"unary '-' needs a number, got {inner!r}")
            return -inner
        if isinstance(expr, FuncCall):
            args = [self._group_eval(arg, group) for arg in expr.args]
            return call_scalar(expr.name, args)
        # Bare columns / other expressions: representative-row semantics,
        # NULL for the empty whole-table group — as the row path.
        if group.gidx.size == 0:
            return None
        return ex._eval(expr, group.rep_scope())

    def _group_aggregate(self, call: FuncCall, group: _GroupCtx) -> Any:
        func = AGGREGATE_FUNCTIONS.get(call.name.lower())
        if func is None:  # pragma: no cover - guarded by is_aggregate
            raise UnknownFunctionError(f"unknown aggregate {call.name!r}")
        name = call.name.lower()
        if name == "count" and len(call.args) == 1 and isinstance(call.args[0], Star):
            # agg_count(..., star=True) is len(values); skip building the
            # [None] * n list the row path allocates.
            return int(group.gidx.size)
        if not call.args:
            raise AggregateArityError(f"{call.name.upper()} requires an argument")
        if len(call.args) != 1:
            raise AggregateArityError(f"{call.name.upper()} takes exactly one argument")
        if isinstance(call.args[0], Star):
            raise AggregateArityError(f"{call.name.upper()}(*) is not supported")
        for node in call.args[0].walk():
            if isinstance(node, FuncCall) and node.is_aggregate:
                raise NestedAggregateError(
                    f"aggregate {node.name.upper()} nested inside "
                    f"{call.name.upper()}"
                )
        arg = call.args[0]
        j = self._aggregate_col(arg, group)
        if j is not None:
            result = self._fast_aggregate(name, call.distinct, j, group)
            if result is not _NO_FAST:
                return result
            col = group.store.cols[j]
            values = [col.pylist[i] for i in group.idx_list()]
        else:
            values = [self._ex._eval(arg, scope) for scope in group.members()]
        return func(values, distinct=call.distinct)

    def _aggregate_col(self, arg: Expr, group: _GroupCtx) -> Optional[int]:
        """Column position when the aggregate argument is a locally
        resolvable column reference, else ``None`` (scope-path eval)."""
        if not isinstance(arg, ColumnRef):
            return None
        if arg.table is not None and arg.table.lower() != group.compiled.binding:
            return None
        if arg.column not in group.schema:
            return None
        return group.schema.column_index(arg.column)

    def _fast_aggregate(self, name: str, distinct: bool, j: int, group: _GroupCtx) -> Any:
        """Vectorized aggregate when provably exact, else ``_NO_FAST``.

        Float SUM/AVG always take the list path: ``np.sum`` uses pairwise
        summation whose rounding differs from the row path's sequential
        ``sum()`` in the last bits.
        """
        col = group.store.cols[j]
        gidx = group.gidx
        if name == "count" and not distinct:
            if gidx.size == 0:
                return 0
            return int(gidx.size) - int(np.count_nonzero(col.null[gidx]))
        if distinct:
            return _NO_FAST
        if name in ("sum", "avg"):
            if col.kind != "int" or not col.int_sum_safe:
                return _NO_FAST
            if gidx.size == 0:
                return None
            present = int(gidx.size) - int(np.count_nonzero(col.null[gidx]))
            if present == 0:
                return None
            # NULL slots hold 0, so the slice sum equals the non-NULL sum;
            # int_sum_safe bounds |subset sum| within int64.
            total = int(col.values[gidx].sum())
            if name == "sum":
                return total
            return total / present
        if name in ("min", "max"):
            if col.kind in ("int", "bool", "date", "text") or (
                col.kind == "float" and not col.has_nan
            ):
                nn_idx = gidx[~col.null[gidx]] if gidx.size else gidx
                if nn_idx.size == 0:
                    return None
                sub = col.values[nn_idx]
                pos = int(np.argmin(sub) if name == "min" else np.argmax(sub))
                # argmin/argmax return the first extreme position, same as
                # Python's min/max; the original object is returned.
                return col.pylist[int(nn_idx[pos])]
            return _NO_FAST
        return _NO_FAST
