"""Aggregate and scalar function implementations.

Aggregates follow SQL semantics: NULL inputs are skipped; ``SUM``/``AVG``
over an empty (or all-NULL) input yield NULL, while ``COUNT`` yields 0.
``COUNT(*)`` counts rows including NULLs.
"""

from __future__ import annotations

import datetime
from typing import Any, Callable, Dict, List, Optional, Sequence

from .errors import (
    FunctionArityError,
    FunctionTypeError,
    TypeMismatchError,
    UnknownFunctionError,
)


def _non_null(values: Sequence[Any]) -> List[Any]:
    return [v for v in values if v is not None]


def _require_numeric(values: Sequence[Any], func: str) -> List[float]:
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise FunctionTypeError(f"{func.upper()} requires numeric input, got {v!r}")
        out.append(v)
    return out


def agg_count(values: Sequence[Any], distinct: bool = False, star: bool = False) -> int:
    """``COUNT(expr)`` / ``COUNT(DISTINCT expr)`` / ``COUNT(*)``."""
    if star:
        return len(values)
    present = _non_null(values)
    if distinct:
        return len(set(present))
    return len(present)


def agg_sum(values: Sequence[Any], distinct: bool = False) -> Optional[float]:
    """``SUM(expr)``; NULL on empty input."""
    present = _require_numeric(_non_null(values), "sum")
    if distinct:
        present = list(set(present))
    if not present:
        return None
    total = sum(present)
    return total


def agg_avg(values: Sequence[Any], distinct: bool = False) -> Optional[float]:
    """``AVG(expr)``; NULL on empty input."""
    present = _require_numeric(_non_null(values), "avg")
    if distinct:
        present = list(set(present))
    if not present:
        return None
    return sum(present) / len(present)


def agg_min(values: Sequence[Any], distinct: bool = False) -> Any:
    """``MIN(expr)``; NULL on empty input.  Works on any ordered type."""
    present = _non_null(values)
    if not present:
        return None
    try:
        return min(present)
    except TypeError as exc:
        raise TypeMismatchError(f"MIN over mixed types: {exc}") from exc


def agg_max(values: Sequence[Any], distinct: bool = False) -> Any:
    """``MAX(expr)``; NULL on empty input.  Works on any ordered type."""
    present = _non_null(values)
    if not present:
        return None
    try:
        return max(present)
    except TypeError as exc:
        raise TypeMismatchError(f"MAX over mixed types: {exc}") from exc


AGGREGATE_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "count": agg_count,
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
}


# --------------------------------------------------------------------------
# Scalar functions
# --------------------------------------------------------------------------


def _scalar_abs(value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FunctionTypeError(f"ABS requires a number, got {value!r}")
    return abs(value)


def _scalar_round(value: Any, digits: Any = 0) -> Any:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FunctionTypeError(f"ROUND requires a number, got {value!r}")
    if not isinstance(digits, int):
        raise FunctionTypeError("ROUND digits must be an integer")
    return round(float(value), digits)


def _scalar_lower(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, str):
        raise FunctionTypeError(f"LOWER requires text, got {value!r}")
    return value.lower()


def _scalar_upper(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, str):
        raise FunctionTypeError(f"UPPER requires text, got {value!r}")
    return value.upper()


def _scalar_length(value: Any) -> Any:
    if value is None:
        return None
    if not isinstance(value, str):
        raise FunctionTypeError(f"LENGTH requires text, got {value!r}")
    return len(value)


def _require_date(value: Any, func: str) -> datetime.date:
    if not isinstance(value, datetime.date):
        raise FunctionTypeError(f"{func} requires a date, got {value!r}")
    return value


def _scalar_year(value: Any) -> Any:
    if value is None:
        return None
    return _require_date(value, "YEAR").year


def _scalar_month(value: Any) -> Any:
    if value is None:
        return None
    return _require_date(value, "MONTH").month


def _scalar_day(value: Any) -> Any:
    if value is None:
        return None
    return _require_date(value, "DAY").day


SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": _scalar_abs,
    "round": _scalar_round,
    "lower": _scalar_lower,
    "upper": _scalar_upper,
    "length": _scalar_length,
    "year": _scalar_year,
    "month": _scalar_month,
    "day": _scalar_day,
}


def call_scalar(name: str, args: Sequence[Any]) -> Any:
    """Dispatch a scalar function by (case-insensitive) name."""
    func = SCALAR_FUNCTIONS.get(name.lower())
    if func is None:
        raise UnknownFunctionError(f"unknown function {name!r}")
    try:
        return func(*args)
    except TypeError as exc:
        raise FunctionArityError(f"bad arguments for {name.upper()}: {exc}") from exc
